"""Tests for the reference cycle simulator and buffer models."""

import numpy as np
import pytest

from repro.automata.glushkov import compile_regex_set, glushkov_nfa
from repro.automata.nfa import Automaton, StartKind
from repro.errors import SimulationError
from repro.sim.buffers import buffer_activity, input_interrupts, output_interrupts
from repro.sim.engine import Engine
from repro.sim.reports import Report, report_codes_at, report_positions
from repro.sim.trace import PartitionAssignment


class TestBasicRuns:
    def test_single_literal(self):
        engine = Engine(glushkov_nfa("abc"))
        result = engine.run(b"zabcz")
        assert [r.cycle for r in result.reports] == [3]

    def test_overlapping_matches(self):
        engine = Engine(glushkov_nfa("aa"))
        result = engine.run(b"aaaa")
        assert [r.cycle for r in result.reports] == [1, 2, 3]

    def test_all_input_start_restarts(self):
        engine = Engine(glushkov_nfa("ab"))
        assert [r.cycle for r in engine.run(b"abab").reports] == [1, 3]

    def test_start_of_data_fires_once(self):
        engine = Engine(glushkov_nfa("ab", anchored=True))
        assert engine.run(b"abab").num_reports == 1

    def test_kleene_star_cycle(self):
        engine = Engine(glushkov_nfa("ab*c"))
        assert engine.run(b"abbbc").num_reports == 1
        assert engine.run(b"ac").num_reports == 1

    def test_no_match(self):
        engine = Engine(glushkov_nfa("xyz"))
        assert engine.run(b"aaaa").num_reports == 0

    def test_empty_input(self):
        engine = Engine(glushkov_nfa("a"))
        result = engine.run(b"")
        assert result.num_reports == 0
        assert result.stats.num_cycles == 0

    def test_invalid_automaton_rejected(self):
        with pytest.raises(Exception):
            Engine(Automaton())


class TestRunChunk:
    def test_resume_matches_one_shot(self):
        engine = Engine(glushkov_nfa("abc"))
        one_shot = engine.run(b"zabczabc")
        state = engine.initial_state()
        reports = []
        for chunk in (b"zab", b"cz", b"", b"abc"):
            reports.extend(engine.run_chunk(chunk, state).reports)
        assert reports == one_shot.reports
        assert state.position == 8

    def test_start_of_data_only_at_stream_start(self):
        engine = Engine(glushkov_nfa("ab", anchored=True))
        state = engine.initial_state()
        first = engine.run_chunk(b"ab", state)
        second = engine.run_chunk(b"ab", state)
        assert first.num_reports == 1
        assert second.num_reports == 0

    def test_max_reports_budget_is_per_chunk_call(self):
        engine = Engine(glushkov_nfa("a"))
        state = engine.initial_state()
        result = engine.run_chunk(b"a" * 10, state, max_reports=3)
        assert len(result.reports) == 3
        assert result.stats.num_reports == 10

    def test_max_reports_is_exact_with_simultaneous_firings(self):
        # two states report on the same cycle: the cap must not overshoot
        engine = Engine(compile_regex_set({"r1": "a", "r2": "a"}))
        result = engine.run(b"aaa", max_reports=1)
        assert len(result.reports) == 1
        assert result.stats.num_reports == 6


class TestReports:
    def test_report_codes(self):
        engine = Engine(compile_regex_set({"r1": "ab", "r2": "b"}))
        result = engine.run(b"ab")
        assert report_codes_at(result.reports) == {(1, "r1"), (1, "r2")}

    def test_report_positions_dedupe(self):
        reports = [Report(1, 2), Report(1, 2), Report(3, 4)]
        assert report_positions(reports) == {(1, 2), (3, 4)}

    def test_max_reports_caps_recording_not_counting(self):
        engine = Engine(glushkov_nfa("a"))
        result = engine.run(b"a" * 100, max_reports=10)
        assert len(result.reports) == 10
        assert result.num_reports == 100


class TestStats:
    def test_cycle_count(self):
        engine = Engine(glushkov_nfa("ab"))
        assert engine.run(b"abcde").stats.num_cycles == 5

    def test_active_le_enabled(self):
        engine = Engine(glushkov_nfa("(a|b)e*cd+"))
        stats = engine.run(b"aecdaecd" * 4, keep_per_cycle=True).stats
        for active, enabled in zip(
            stats.active_per_cycle, stats.enabled_per_cycle
        ):
            assert active <= enabled

    def test_averages(self):
        engine = Engine(glushkov_nfa("a"))
        stats = engine.run(b"aa").stats
        # state 0 is enabled every cycle (all-input) and matches both a's
        assert stats.avg_enabled_states() == 1.0
        assert stats.avg_active_states() == 1.0
        assert stats.report_rate() == 1.0

    def test_per_cycle_disabled_by_default(self):
        engine = Engine(glushkov_nfa("a"))
        assert engine.run(b"aaa").stats.active_per_cycle == []


class TestPartitionStats:
    def make_two_partition_run(self):
        # two separate patterns; place each component in its own partition
        nfa = compile_regex_set(["ab", "cd"])
        placement = PartitionAssignment(
            partition_of=np.array([0, 0, 1, 1]), num_partitions=2
        )
        engine = Engine(nfa)
        return engine.run(b"abcdabcd", placement=placement).stats

    def test_partition_enabled_cycles(self):
        stats = self.make_two_partition_run()
        # start states are all-input: both partitions enabled every cycle
        assert list(stats.partition_enabled_cycles) == [8, 8]

    def test_partition_sums_consistent(self):
        stats = self.make_two_partition_run()
        assert stats.partition_enabled_states_sum.sum() == stats.enabled_states_sum
        assert stats.partition_active_states_sum.sum() == stats.active_states_sum

    def test_no_cross_partition_traffic_between_components(self):
        stats = self.make_two_partition_run()
        assert stats.global_source_partitions_sum == 0

    def test_cross_partition_traffic_counted(self):
        nfa = glushkov_nfa("abcd")
        placement = PartitionAssignment(
            partition_of=np.array([0, 0, 1, 1]), num_partitions=2
        )
        stats = Engine(nfa).run(b"abcd", placement=placement).stats
        # state 1 (b) crosses to state 2 (c): one active crossing state
        assert stats.global_crossing_states_sum == 1
        assert stats.global_source_partitions_sum == 1

    def test_wrong_placement_size_rejected(self):
        nfa = glushkov_nfa("ab")
        placement = PartitionAssignment(
            partition_of=np.array([0]), num_partitions=1
        )
        with pytest.raises(SimulationError):
            Engine(nfa).run(b"ab", placement=placement)

    def test_selective_precharge_factor(self):
        stats = self.make_two_partition_run()
        assert stats.avg_enabled_states_per_enabled_partition() == pytest.approx(
            stats.enabled_states_sum / 16
        )


class TestBuffers:
    def test_input_interrupts_ceil(self):
        assert input_interrupts(128) == 1
        assert input_interrupts(129) == 2
        assert input_interrupts(0) == 0

    def test_output_interrupts(self):
        reports = [Report(i, 0) for i in range(130)]
        assert output_interrupts(reports) == 2

    def test_output_hidden_at_low_report_rate(self):
        # 0.4 reports/cycle (< 0.5): output interrupts stay behind input's
        reports = [Report(i, 0) for i in range(400)]
        activity = buffer_activity(1000, reports)
        assert activity.output_hidden

    def test_output_not_hidden_at_high_report_rate(self):
        reports = [Report(i, 0) for i in range(0, 3000)]
        activity = buffer_activity(1000, reports)
        assert not activity.output_hidden

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            input_interrupts(5, capacity=0)
        with pytest.raises(SimulationError):
            output_interrupts([], capacity=-1)
