"""Oracle-differential tests for batched multi-stream execution.

Every batched path — kernel ``step_batch``, ``Dispatcher.run_chunk_
batch``, ``MatchingService.scan_many``, the server's feed scheduler —
must produce results byte-identical to per-stream sequential stepping,
under adversarial interleavings: 1-byte chunks, report patterns split
across chunk boundaries, streams joining and leaving the batch between
ticks, and shrinking kept-reports budgets.
"""

import asyncio
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api.config import ScanConfig
from repro.automata.glushkov import compile_regex_set
from repro.errors import ConfigError, SimulationError
from repro.service import Dispatcher, MatchingService
from repro.service.batching import BatchScheduler, feed_session_batch
from repro.sim.backends import STATE_FORMAT_VERSION, BatchEngineState
from repro.sim.backends.base import EngineState
from repro.sim.engine import Engine

BACKENDS = ["sparse", "bitparallel", "native", "auto"]

#: overlapping rules with multi-byte matches, so chunk splits land
#: mid-pattern and several states report on the same cycle
RULES = {
    "r0": "abc[a-f]{2}x",
    "r1": "foo(bar|baz)+",
    "r2": "[0-9]{3}z",
    "r3": "q.*nd",
    "r4": "(a|b)c*d",
}

ALPHABET = b"abcdfoobarbaz0123qndxz \n"


def _automaton():
    return compile_regex_set(RULES, name="batch-tests")


def _random_streams(rng, count, max_len=240):
    streams = [
        bytes(rng.choice(ALPHABET) for _ in range(rng.randrange(0, max_len)))
        for _ in range(count)
    ]
    streams[0] = b""  # always include an empty stream
    return streams


def _keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def _active(state):
    return sorted(int(s) for s in state.active)


def _tick_chunks(rng, data, one_byte=False):
    """Split ``data`` into adversarial tick-sized chunks."""
    chunks, start = [], 0
    while start < len(data):
        size = 1 if one_byte else rng.randrange(1, 6)
        chunks.append(data[start : start + size])
        start += size
    return chunks


# -- kernel level ----------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("one_byte", [False, True], ids=["ragged", "1byte"])
def test_engine_step_batch_matches_per_stream(backend, one_byte):
    """Batched stepping == sequential run_chunk under interleavings."""
    rng = random.Random(11)
    automaton = _automaton()
    engine = Engine(automaton, backend=backend)
    streams = _random_streams(rng, 9)
    plans = [_tick_chunks(rng, data, one_byte=one_byte) for data in streams]

    # oracle: each stream stepped alone through the same chunk sequence
    oracle_states = [engine.initial_state() for _ in streams]
    oracle = [[] for _ in streams]
    for row, plan in enumerate(plans):
        for chunk in plan:
            result = engine.run_chunk(chunk, oracle_states[row])
            oracle[row].extend(result.reports)

    # batched: one step_batch per tick; dry rows feed empty chunks
    # (streams "leave" the batch as their plans run out)
    states = [engine.initial_state() for _ in streams]
    got = [[] for _ in streams]
    for tick in range(max(len(plan) for plan in plans)):
        chunks = [
            plan[tick] if tick < len(plan) else b"" for plan in plans
        ]
        for row, result in enumerate(engine.step_batch(chunks, states)):
            got[row].extend(result.reports)

    for row in range(len(streams)):
        assert _keys(got[row]) == _keys(oracle[row]), f"row {row}"
        assert _active(states[row]) == _active(oracle_states[row])
        assert states[row].position == oracle_states[row].position


@pytest.mark.parametrize("backend", BACKENDS)
def test_engine_step_batch_join_leave(backend):
    """Streams joining/leaving the batch mid-run change nothing."""
    rng = random.Random(23)
    automaton = _automaton()
    engine = Engine(automaton, backend=backend)
    streams = _random_streams(rng, 7)
    plans = [_tick_chunks(rng, data) for data in streams]

    oracle_states = [engine.initial_state() for _ in streams]
    oracle = [[] for _ in streams]
    for row, plan in enumerate(plans):
        for chunk in plan:
            oracle[row].extend(
                engine.run_chunk(chunk, oracle_states[row]).reports
            )

    states = [engine.initial_state() for _ in streams]
    got = [[] for _ in streams]
    cursors = [0] * len(streams)
    while any(cursors[r] < len(plans[r]) for r in range(len(streams))):
        pending = [r for r in range(len(streams)) if cursors[r] < len(plans[r])]
        members = [r for r in pending if rng.random() < 0.7] or pending
        chunks = [plans[r][cursors[r]] for r in members]
        results = engine.step_batch(chunks, [states[r] for r in members])
        for r, result in zip(members, results):
            got[r].extend(result.reports)
            cursors[r] += 1

    for row in range(len(streams)):
        assert _keys(got[row]) == _keys(oracle[row]), f"row {row}"
        assert _active(states[row]) == _active(oracle_states[row])


@pytest.mark.parametrize("backend", BACKENDS)
def test_engine_step_batch_per_row_caps(backend):
    """Per-row kept-reports budgets truncate exactly like solo runs."""
    rng = random.Random(5)
    automaton = _automaton()
    engine = Engine(automaton, backend=backend)
    streams = [
        bytes(rng.choice(b"abcd0123z") for _ in range(300)) for _ in range(4)
    ]
    caps = [0, 2, 5, 10_000]

    solo = []
    for data, cap in zip(streams, caps):
        state = engine.initial_state()
        solo.append(engine.run_chunk(data, state, max_reports=cap))

    states = [engine.initial_state() for _ in streams]
    batched = engine.step_batch(streams, states, max_reports=caps)
    for row in range(len(streams)):
        assert _keys(batched[row].reports) == _keys(solo[row].reports)
        assert batched[row].truncated == solo[row].truncated
        assert len(batched[row].reports) <= caps[row]


@pytest.mark.parametrize("backend", BACKENDS)
def test_engine_step_batch_stats_match(backend):
    """Per-row stats equal the sequential per-stream stats."""
    rng = random.Random(31)
    automaton = _automaton()
    engine = Engine(automaton, backend=backend)
    streams = _random_streams(rng, 5)

    for row, data in enumerate(streams):
        state = engine.initial_state()
        solo = engine.run_chunk(data, state)
        states = [engine.initial_state() for _ in streams]
        batched = engine.step_batch(streams, states)[row]
        assert batched.stats.num_cycles == solo.stats.num_cycles
        assert batched.stats.num_reports == solo.stats.num_reports
        assert batched.stats.enabled_states_sum == solo.stats.enabled_states_sum
        assert batched.stats.active_states_sum == solo.stats.active_states_sum


def test_engine_step_batch_validates_lengths():
    engine = Engine(_automaton(), backend="sparse")
    with pytest.raises(SimulationError):
        engine.step_batch([b"ab"], [])


# -- struct-of-arrays state ------------------------------------------------


def test_batch_engine_state_round_trip():
    """attach -> detach is lossless for arbitrary active sets."""
    n = 131  # forces multi-word rows with a ragged top word
    states = [
        EngineState(active=[0, 63, 64, 65, 130], position=7),
        EngineState(active=[], position=0),
        EngineState(active=list(range(0, n, 3)), position=12345),
    ]
    batch = BatchEngineState.attach(states, n)
    assert batch.num_rows == 3
    out = batch.detach()
    for before, after in zip(states, out):
        assert _active(after) == sorted(before.active)
        assert after.position == before.position
    # detach_into writes the originals in place
    batch.positions += 5
    batch.detach_into(states)
    assert [s.position for s in states] == [12, 5, 12350]
    with pytest.raises(SimulationError):
        batch.detach_into(states[:2])


def test_engine_state_serialization_round_trip():
    state = EngineState(active=[3, 1, 9], position=42)
    snapshot = state.to_dict()
    assert snapshot["format_version"] == STATE_FORMAT_VERSION
    back = EngineState.from_dict(snapshot)
    assert _active(back) == sorted(state.active)
    assert back.position == 42


def test_engine_state_version_skew_rejected():
    snapshot = EngineState(active=[1], position=1).to_dict()
    snapshot["format_version"] = STATE_FORMAT_VERSION + 1
    with pytest.raises(SimulationError, match="format version"):
        EngineState.from_dict(snapshot)


# -- dispatcher level ------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_dispatcher_run_chunk_batch_matches(backend):
    rng = random.Random(47)
    automaton = _automaton()
    config = ScanConfig(backend=backend, num_shards=3)
    dispatcher = Dispatcher(automaton, config)
    streams = _random_streams(rng, 6)
    plans = [_tick_chunks(rng, data) for data in streams]

    solo_states = [dispatcher.initial_states() for _ in streams]
    oracle = [[] for _ in streams]
    for row, plan in enumerate(plans):
        for chunk in plan:
            oracle[row].extend(
                dispatcher.run_chunk(chunk, solo_states[row]).reports
            )

    states = [dispatcher.initial_states() for _ in streams]
    got = [[] for _ in streams]
    for tick in range(max(len(plan) for plan in plans)):
        chunks = [plan[tick] if tick < len(plan) else b"" for plan in plans]
        for row, result in enumerate(
            dispatcher.run_chunk_batch(chunks, states)
        ):
            got[row].extend(result.reports)

    for row in range(len(streams)):
        assert _keys(got[row]) == _keys(oracle[row]), f"row {row}"


def test_dispatcher_run_chunk_batch_validates():
    dispatcher = Dispatcher(_automaton(), ScanConfig(num_shards=2))
    states = dispatcher.initial_states()
    with pytest.raises(SimulationError):
        dispatcher.run_chunk_batch([b"x"], [])
    with pytest.raises(SimulationError):
        dispatcher.run_chunk_batch([b"x"], [states[:1]])


# -- service level ---------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_scan_many_batched_matches_sequential(backend):
    rng = random.Random(61)
    automaton = _automaton()
    streams = {
        f"s{i}": data for i, data in enumerate(_random_streams(rng, 7, 500))
    }
    with MatchingService(
        ScanConfig(backend=backend, batch_max_rows=1)
    ) as sequential, MatchingService(
        ScanConfig(backend=backend, batch_max_rows=3, chunk_size=64)
    ) as batched:
        seq = sequential.scan_many(automaton, streams, chunk_size=64)
        bat = batched.scan_many(automaton, streams, chunk_size=64)
        for name in streams:
            assert _keys(bat[name].reports) == _keys(seq[name].reports), name
            assert bat[name].stats.num_cycles == seq[name].stats.num_cycles
            assert bat[name].stats.num_reports == seq[name].stats.num_reports
            assert bat[name].truncated == seq[name].truncated
        # shrinking budgets: the global cap trims identically
        seq = sequential.scan_many(
            automaton, streams, chunk_size=64, max_reports=3
        )
        bat = batched.scan_many(
            automaton, streams, chunk_size=64, max_reports=3
        )
        for name in streams:
            assert _keys(bat[name].reports) == _keys(seq[name].reports), name
            assert bat[name].truncated == seq[name].truncated


# -- scheduler / server level ---------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_feed_session_batch_matches_solo_feeds(backend):
    rng = random.Random(83)
    automaton = _automaton()
    streams = _random_streams(rng, 5, 400)
    with MatchingService(ScanConfig(backend=backend)) as solo_svc:
        solo = [
            solo_svc.open_session(automaton, f"solo{i}")
            for i in range(len(streams))
        ]
        with MatchingService(ScanConfig(backend=backend)) as batch_svc:
            batched = [
                batch_svc.open_session(automaton, f"batch{i}")
                for i in range(len(streams))
            ]
            dispatcher = batched[0].dispatcher
            cursors = [0] * len(streams)
            while any(c < len(s) for c, s in zip(cursors, streams)):
                entries, expect = [], []
                for i, session in enumerate(batched):
                    if cursors[i] >= len(streams[i]):
                        continue
                    size = rng.randrange(1, 40)
                    chunk = streams[i][cursors[i] : cursors[i] + size]
                    cursors[i] += len(chunk)
                    entries.append((session, chunk))
                    expect.append(solo[i].feed(chunk))
                outcomes = feed_session_batch(dispatcher, entries)
                for (reports, exc), solo_reports in zip(outcomes, expect):
                    assert exc is None
                    assert _keys(reports) == _keys(solo_reports)
            for a, b in zip(solo, batched):
                assert _keys(a.reports) == _keys(b.reports)
                assert a.position == b.position


def test_session_absorb_rejects_closed_session():
    """absorb() enforces the same closed check feed() does — the
    batched path must not sneak results into a closed stream."""
    automaton = _automaton()
    with MatchingService(ScanConfig()) as service:
        session = service.open_session(automaton, "s")
        dispatcher = session.dispatcher
        result = dispatcher.run_chunk(b"abcddx", dispatcher.initial_states())
        session.close()
        before = len(session.reports)
        with pytest.raises(SimulationError, match="closed"):
            session.absorb(b"abcddx", result)
        assert len(session.reports) == before


def test_feed_session_batch_skips_closed_sessions():
    """A closed session in a batch gets the solo-feed error and its
    shard states stay untouched; live rows are unaffected."""
    automaton = _automaton()
    chunk = b"abcddx123zfoobar"
    with MatchingService(ScanConfig()) as svc:
        expected = _keys(svc.open_session(automaton, "ref").feed(chunk))
    with MatchingService(ScanConfig()) as svc:
        live = svc.open_session(automaton, "live")
        dead = svc.open_session(automaton, "dead")
        dead.feed(b"abcd")
        dead.close()
        position = dead.position
        frozen = [_active(state) for state in dead.shard_states]
        outcomes = feed_session_batch(
            live.dispatcher, [(dead, chunk), (live, chunk)]
        )
        dead_reports, dead_exc = outcomes[0]
        assert dead_reports == []
        assert isinstance(dead_exc, SimulationError)
        assert "closed" in str(dead_exc)
        live_reports, live_exc = outcomes[1]
        assert live_exc is None
        assert _keys(live_reports) == expected
        assert dead.position == position
        assert [_active(state) for state in dead.shard_states] == frozen


def test_batch_scheduler_propagates_closed_session_error():
    """Submitting a closed session's feed resolves with the solo-feed
    SimulationError instead of corrupting the batch."""
    automaton = _automaton()
    chunk = b"abcddx123z"
    with MatchingService(ScanConfig()) as svc:
        expected = _keys(svc.open_session(automaton, "ref").feed(chunk))

    async def drive():
        with ThreadPoolExecutor(max_workers=1) as executor:
            scheduler = BatchScheduler(executor, max_rows=2, max_delay_s=0.05)
            with MatchingService(ScanConfig()) as service:
                live = service.open_session(automaton, "live")
                dead = service.open_session(automaton, "dead")
                dead.close()
                dispatcher = live.dispatcher
                return await asyncio.gather(
                    scheduler.submit(dispatcher, dead, chunk),
                    scheduler.submit(dispatcher, live, chunk),
                    return_exceptions=True,
                )

    dead_result, live_result = asyncio.run(drive())
    assert isinstance(dead_result, SimulationError)
    assert "closed" in str(dead_result)
    assert _keys(live_result) == expected


def test_batch_scheduler_zero_delay_counts_immediate():
    """max_delay_s == 0 flushes are 'immediate', not 'max_delay' — no
    timer ever fired."""
    automaton = _automaton()
    chunk = b"abcddx123z"
    with MatchingService(ScanConfig()) as svc:
        expected = _keys(svc.open_session(automaton, "ref").feed(chunk))

    async def drive():
        with ThreadPoolExecutor(max_workers=1) as executor:
            scheduler = BatchScheduler(executor, max_rows=64, max_delay_s=0.0)
            with MatchingService(ScanConfig()) as service:
                session = service.open_session(automaton, "s")
                reports = await scheduler.submit(
                    session.dispatcher, session, chunk
                )
                return _keys(reports), scheduler.stats()

    got, stats = asyncio.run(drive())
    assert got == expected
    assert stats["flush_reasons"]["immediate"] == 1
    assert stats["flush_reasons"]["max_delay"] == 0
    assert stats["batches"] == 1
    assert sum(stats["flush_reasons"].values()) == stats["batches"]


def test_batch_scheduler_post_drain_submits_flush_immediately():
    """Feeds racing in behind close() flush at once instead of parking
    behind a max_delay timer that may never be serviced again."""
    automaton = _automaton()
    data = b"abcddx123zfoobar" * 3
    with MatchingService(ScanConfig()) as svc:
        expected = _keys(svc.open_session(automaton, "ref").feed(data))

    async def drive():
        with ThreadPoolExecutor(max_workers=1) as executor:
            scheduler = BatchScheduler(
                executor, max_rows=64, max_delay_s=30.0
            )
            with MatchingService(ScanConfig()) as service:
                early = service.open_session(automaton, "early")
                late = service.open_session(automaton, "late")
                dispatcher = early.dispatcher
                parked = asyncio.ensure_future(
                    scheduler.submit(dispatcher, early, data)
                )
                await asyncio.sleep(0)  # park behind the 30 s timer
                assert not parked.done()
                scheduler.close()
                early_reports = await asyncio.wait_for(parked, timeout=5)
                late_reports = await asyncio.wait_for(
                    scheduler.submit(dispatcher, late, data), timeout=5
                )
                return (
                    _keys(early_reports),
                    _keys(late_reports),
                    scheduler.stats(),
                )

    early, late, stats = asyncio.run(drive())
    assert early == expected
    assert late == expected
    assert stats["flush_reasons"]["drain"] == 1
    assert stats["flush_reasons"]["immediate"] == 1
    assert stats["flush_reasons"]["max_delay"] == 0
    assert sum(stats["flush_reasons"].values()) == stats["batches"]


def test_server_drain_releases_parked_batched_feed():
    """End-to-end drain race: a feed parked behind a huge batch delay
    window resolves correctly when another client triggers shutdown."""
    import threading
    import time

    from repro.service import BackgroundServer, MatchingClient

    automaton = _automaton()
    data = b"abcddx123zfoobarbaz" * 4
    with MatchingService(ScanConfig()) as svc:
        expected = _keys(svc.open_session(automaton, "ref").feed(data))

    config = ScanConfig(batch_max_rows=64, batch_max_delay_ms=60_000.0)
    got, errors = [], []
    with BackgroundServer(config=config, executor_workers=2) as bg:
        opened = threading.Event()

        def worker():
            try:
                with MatchingClient(port=bg.port) as client:
                    handle = client.register(RULES)
                    session = client.open_session(handle, "parked")
                    opened.set()
                    got.extend(_keys(session.feed(data)))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=worker)
        thread.start()
        assert opened.wait(30)
        time.sleep(0.3)  # let the feed frame park in the scheduler
        with MatchingClient(port=bg.port) as client:
            client.shutdown()
        thread.join(30)
        assert not thread.is_alive()
    assert not errors, errors
    assert got == expected


def test_batch_scheduler_coalesces_and_matches():
    """Concurrent submits resolve with the same reports as solo feeds."""
    automaton = _automaton()
    rng = random.Random(97)
    streams = _random_streams(rng, 6, 300)
    with MatchingService(ScanConfig()) as solo_svc:
        expected = []
        for i, data in enumerate(streams):
            session = solo_svc.open_session(automaton, f"s{i}")
            expected.append(_keys(session.feed(data)))

    async def drive():
        with ThreadPoolExecutor(max_workers=2) as executor:
            scheduler = BatchScheduler(
                executor, max_rows=4, max_delay_s=0.05
            )
            with MatchingService(ScanConfig()) as service:
                sessions = [
                    service.open_session(automaton, f"s{i}")
                    for i in range(len(streams))
                ]
                dispatcher = sessions[0].dispatcher
                jobs = [
                    scheduler.submit(dispatcher, session, data)
                    for session, data in zip(sessions, streams)
                ]
                reports = await asyncio.gather(*jobs)
                return [_keys(r) for r in reports], scheduler.stats()

    got, stats = asyncio.run(drive())
    assert got == expected
    assert stats["enabled"] is True
    assert stats["rows"] == len(streams)
    assert stats["batches"] < len(streams)  # something actually coalesced
    assert stats["flush_reasons"]["rows_full"] >= 1
    assert sum(stats["flush_reasons"].values()) == stats["batches"]


def test_server_batched_feeds_match_unbatched():
    """The full wire path: batched server == batching-disabled server."""
    from repro.service import BackgroundServer, MatchingClient

    rng = random.Random(3)
    streams = {
        f"c{i}": bytes(rng.choice(ALPHABET) for _ in range(240))
        for i in range(4)
    }

    def run(batch_rows):
        import threading

        config = ScanConfig(
            batch_max_rows=batch_rows, batch_max_delay_ms=2.0
        )
        out, errors = {}, []
        with BackgroundServer(config=config, executor_workers=4) as bg:
            def worker(name, data):
                try:
                    with MatchingClient(port=bg.port) as client:
                        handle = client.register(RULES)
                        session = client.open_session(handle, name)
                        collected = []
                        for start in range(0, len(data), 48):
                            collected.extend(
                                session.feed(data[start : start + 48])
                            )
                        session.close()
                        out[name] = _keys(collected)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=item)
                for item in streams.items()
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            with MatchingClient(port=bg.port) as client:
                stats = client.stats()
        assert not errors, errors
        return out, stats

    batched, batched_stats = run(8)
    solo, solo_stats = run(1)
    assert batched == solo
    assert batched_stats["batching"]["enabled"] is True
    assert batched_stats["batching"]["rows"] >= len(streams)
    assert solo_stats["batching"] == {"enabled": False}


# -- config syntax ---------------------------------------------------------


def test_scan_config_batch_fields_validate():
    assert ScanConfig().batch_max_rows == 64
    assert ScanConfig().batch_max_delay_ms == 2.0
    ScanConfig(batch_max_rows=1, batch_max_delay_ms=0.0)  # legal bounds
    with pytest.raises(ConfigError):
        ScanConfig(batch_max_rows=0)
    with pytest.raises(ConfigError):
        ScanConfig(batch_max_rows=True)
    with pytest.raises(ConfigError):
        ScanConfig(batch_max_delay_ms=-1.0)
    with pytest.raises(ConfigError):
        ScanConfig(batch_max_delay_ms=True)
    # round-trips through the serialized forms like any other field
    cfg = ScanConfig(batch_max_rows=8, batch_max_delay_ms=1.5)
    back = ScanConfig.from_dict(cfg.to_dict())
    assert back.batch_max_rows == 8
    assert back.batch_max_delay_ms == 1.5
