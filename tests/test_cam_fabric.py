"""Tests for the CAM array and RRCB structural models."""

import numpy as np
import pytest

from repro.core.cam import CamArray
from repro.core.rrcb import (
    CAMA_KDIA,
    EAP_KDIA,
    LocalSwitch,
    rcb_band_feasible,
)
from repro.errors import MappingError


class TestCamArray:
    def test_program_sequential_columns(self):
        cam = CamArray(rows=4, columns=8)
        assert cam.program(0b0111, state_id=0) == 0
        assert cam.program(0b1011, state_id=1) == 1
        assert cam.used_columns == 2
        assert cam.free_columns == 6

    def test_full_array_rejected(self):
        cam = CamArray(rows=4, columns=1)
        cam.program(0b0111, 0)
        with pytest.raises(MappingError, match="full"):
            cam.program(0b1011, 1)

    def test_zero_pattern_rejected(self):
        cam = CamArray(rows=4, columns=2)
        with pytest.raises(MappingError, match="don't-care"):
            cam.program(0, 0)

    def test_oversized_pattern_rejected(self):
        cam = CamArray(rows=4, columns=2)
        with pytest.raises(MappingError):
            cam.program(1 << 4, 0)

    def test_search_exact_match(self):
        cam = CamArray(rows=4, columns=4)
        cam.program(0b0111, 0)
        cam.program(0b1011, 1)
        match = cam.search(0b0111, input_valid=True)
        assert list(match[:2]) == [True, False]

    def test_search_dont_care(self):
        cam = CamArray(rows=4, columns=4)
        cam.program(0b0011, 0)  # zeros in high bits = don't care
        assert cam.search(0b0111, True)[0]
        assert cam.search(0b1011, True)[0]
        assert not cam.search(0b0101, True)[0]

    def test_invalid_input_matches_nothing(self):
        cam = CamArray(rows=4, columns=4)
        cam.program(0b0111, 0)
        cam.program(0b1011, 1, invert=True)
        match = cam.search(0, input_valid=False)
        assert not match.any()

    def test_inverted_entry(self):
        cam = CamArray(rows=4, columns=4)
        cam.program(0b0111, 0, invert=True)
        assert not cam.search(0b0111, True)[0]  # raw hit -> inverted miss
        assert cam.search(0b1011, True)[0]  # raw miss -> inverted hit

    def test_enable_mask_gates_matches(self):
        cam = CamArray(rows=4, columns=4)
        cam.program(0b0111, 0)
        enable = np.zeros(4, dtype=bool)
        assert not cam.search(0b0111, True, enable=enable).any()
        enable[0] = True
        assert cam.search(0b0111, True, enable=enable)[0]

    def test_enabled_column_count(self):
        cam = CamArray(rows=4, columns=4)
        cam.program(0b0111, 0)
        cam.program(0b1011, 1)
        enable = np.array([True, True, True, False])
        assert cam.enabled_column_count(enable) == 2  # only programmed cols

    def test_entries_snapshot(self):
        cam = CamArray(rows=4, columns=4)
        cam.program(0b0111, 7, invert=True)
        (entry,) = cam.entries()
        assert entry.state_id == 7
        assert entry.invert
        assert entry.pattern == 0b0111

    def test_bad_geometry_rejected(self):
        with pytest.raises(MappingError):
            CamArray(rows=0)


class TestLocalSwitch:
    def test_rcb_band_routability(self):
        switch = LocalSwitch("rcb")
        assert switch.routable(0, CAMA_KDIA)
        assert not switch.routable(0, CAMA_KDIA + 1)
        assert switch.routable(100, 60)

    def test_rcb_positions_256(self):
        assert LocalSwitch("rcb").positions == 256

    def test_fcb_positions_128(self):
        assert LocalSwitch("fcb").positions == 128

    def test_fcb_routes_anything_in_domain(self):
        switch = LocalSwitch("fcb")
        assert switch.routable(0, 127)
        assert not switch.routable(0, 128)

    def test_program_and_route(self):
        switch = LocalSwitch("rcb")
        switch.program(0, 1)
        switch.program(1, 2)
        active = np.zeros(256, dtype=bool)
        active[0] = True
        enabled = switch.route(active)
        assert enabled[1] and not enabled[2]

    def test_route_empty(self):
        switch = LocalSwitch("fcb")
        assert not switch.route(np.zeros(128, dtype=bool)).any()

    def test_unroutable_program_rejected(self):
        switch = LocalSwitch("rcb")
        with pytest.raises(MappingError):
            switch.program(0, 200)

    def test_wrong_vector_size_rejected(self):
        switch = LocalSwitch("rcb")
        with pytest.raises(MappingError):
            switch.route(np.zeros(128, dtype=bool))

    def test_unknown_mode_rejected(self):
        with pytest.raises(MappingError):
            LocalSwitch("mesh")

    def test_eap_band_narrower(self):
        switch = LocalSwitch("rcb", kdia=EAP_KDIA)
        assert switch.routable(0, 21)
        assert not switch.routable(0, 22)


class TestBandFeasibility:
    def test_chain_feasible(self):
        edges = [(i, i + 1) for i in range(10)]
        positions = {i: i for i in range(11)}
        assert rcb_band_feasible(edges, positions)

    def test_long_edge_infeasible(self):
        edges = [(0, 1), (0, 100)]
        positions = {0: 0, 1: 1, 100: 100}
        assert not rcb_band_feasible(edges, positions)

    def test_band_boundary_inclusive(self):
        edges = [(0, 43)]
        positions = {0: 0, 43: 43}
        assert rcb_band_feasible(edges, positions, kdia=43)
        assert not rcb_band_feasible(edges, positions, kdia=42)
