"""Structural invariants of CAMA mappings, checked across benchmarks.

These tie the mapper to the physical fabric models: every placement the
compiler emits must be realizable on the actual switch/CAM structures
(positions within capacity, RCB band respected, intra-switch edges
programmable on a LocalSwitch, CAM entry budgets met).
"""

import numpy as np
import pytest

from repro.core.rrcb import CAMA_KDIA, LocalSwitch
from repro.workloads import get_benchmark

SCALE = 1.0 / 64.0
NAMES = ("Brill", "TCP", "Snort", "RandomForest", "EntityResolution", "SPM")


@pytest.fixture(scope="module", params=NAMES)
def compiled(request):
    from repro.core.compiler import compile_automaton

    benchmark = get_benchmark(request.param, scale=SCALE)
    return benchmark.automaton, compile_automaton(benchmark.automaton)


class TestPlacementInvariants:
    def test_every_state_placed(self, compiled):
        _, program = compiled
        assert (program.mapping.state_switch >= 0).all()
        assert (program.mapping.state_position >= 0).all()

    def test_positions_unique_within_switch(self, compiled):
        _, program = compiled
        mapping = program.mapping
        seen = set()
        for state in range(len(program.automaton)):
            key = (int(mapping.state_switch[state]), int(mapping.state_position[state]))
            assert key not in seen
            seen.add(key)

    def test_switch_capacities_respected(self, compiled):
        _, program = compiled
        for switch in program.mapping.switches:
            assert switch.used_states <= switch.capacity_states
            assert switch.entry_count <= switch.capacity_entries

    def test_entry_counts_consistent(self, compiled):
        _, program = compiled
        mapping = program.mapping
        per_switch = np.zeros(len(mapping.switches), dtype=np.int64)
        for state in range(len(program.automaton)):
            per_switch[mapping.state_switch[state]] += mapping.state_entries[state]
        for switch in mapping.switches:
            assert per_switch[switch.index] == switch.entry_count

    def test_rcb_band_respected(self, compiled):
        automaton, program = compiled
        mapping = program.mapping
        modes = {s.index: s.mode for s in mapping.switches}
        for u, v in automaton.transitions():
            su, sv = mapping.state_switch[u], mapping.state_switch[v]
            if su != sv:
                continue  # global-routed
            if modes[int(su)] != "rcb":
                continue
            delta = abs(
                int(mapping.state_position[u]) - int(mapping.state_position[v])
            )
            assert delta <= CAMA_KDIA, (u, v)

    def test_intra_switch_edges_programmable(self, compiled):
        automaton, program = compiled
        mapping = program.mapping
        switches = {
            plan.index: LocalSwitch(plan.mode) for plan in mapping.switches
        }
        for u, v in automaton.transitions():
            su, sv = int(mapping.state_switch[u]), int(mapping.state_switch[v])
            if su != sv:
                continue
            switches[su].program(
                int(mapping.state_position[u]), int(mapping.state_position[v])
            )

    def test_cross_edges_plus_local_edges_cover_all(self, compiled):
        automaton, program = compiled
        mapping = program.mapping
        cross = set(mapping.cross_edges)
        for u, v in automaton.transitions():
            local = mapping.state_switch[u] == mapping.state_switch[v]
            assert local != ((u, v) in cross)

    def test_tiles_are_mode_homogeneous(self, compiled):
        _, program = compiled
        mapping = program.mapping
        for tile in mapping.tiles:
            modes = {mapping.switches[i].mode for i in tile.switch_indices}
            assert len(modes) == 1

    def test_cam_units_cover_all_switches(self, compiled):
        _, program = compiled
        unit_of_switch, unit_modes = program.mapping.cam_units()
        assert set(unit_of_switch) == {
            s.index for s in program.mapping.switches
        }
        assert set(unit_of_switch.values()) == set(range(len(unit_modes)))

    def test_mode32_iff_long_code(self, compiled):
        _, program = compiled
        has_mode32 = any(t.mode == "mode32" for t in program.mapping.tiles)
        assert has_mode32 == (program.code_length > 16)
