"""Tests for the unified public API: typed configs + the repro.api facade.

Covers the acceptance surface of the API redesign:

* ``CompileConfig`` / ``ScanConfig`` round-trip through
  ``to_dict``/``from_dict``/``digest`` (the wire-protocol and
  artifact-manifest form) and reject invalid values with
  ``ConfigError``;
* the deprecation shims — old loose-kwarg signatures still work, emit
  ``DeprecationWarning``, and produce byte-identical ``ServiceResult``s
  against the oracle corpus;
* the ``Ruleset`` facade end to end: regex -> compile -> save -> load
  -> scan, streams, batch scans, and serving;
* config objects travelling the wire: the server validates them through
  the same ``ScanConfig`` and echoes their digest unchanged.
"""

import warnings

import pytest

from oracle import oracle_run
from repro.api import CompileConfig, ConfigError, Ruleset, ScanConfig
from repro.automata import compile_regex_set, glushkov_nfa
from repro.compile import PipelineOptions, ruleset_fingerprint
from repro.compile.store import ArtifactStore
from repro.service import (
    BackgroundServer,
    Dispatcher,
    MatchingClient,
    MatchingService,
    RemoteError,
    Session,
)
from repro.service.server import MatchingServer
from repro.sim import Engine

RULES = {"r1": "(a|b)e*cd+", "r2": "abc", "r3": "x+y"}
STREAM = b"aecdabcxxy" * 40

#: the oracle corpus for shim-equivalence: (ruleset, input) pairs with
#: different structure (multi-component, single pattern, dense repeats)
CORPUS = [
    (compile_regex_set(RULES, name="api-corpus"), STREAM),
    (glushkov_nfa("(a|b)e*cd+", report_code="m"), b"aecd" * 25 + b"becdd"),
    (compile_regex_set(["ab", "a+b", "ba*b"], name="dense"), b"ab" * 60),
]


def report_keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def assert_same_service_result(a, b):
    """Byte-identical modulo wall-clock: reports, stats, shard/backends."""
    assert report_keys(a.reports) == report_keys(b.reports)
    assert a.num_reports == b.num_reports
    assert a.stats.num_cycles == b.stats.num_cycles
    assert a.num_shards == b.num_shards
    assert a.backends == b.backends
    assert a.truncated == b.truncated
    assert a.bytes_scanned == b.bytes_scanned


class TestCompileConfig:
    def test_pipeline_options_is_the_same_class(self):
        # the alias keeps every pre-facade import working unchanged
        assert PipelineOptions is CompileConfig

    def test_round_trip_dict_and_digest(self):
        cfg = CompileConfig(optimize=True, stride=2, backend="bitparallel")
        back = CompileConfig.from_dict(cfg.to_dict())
        assert back == cfg
        assert back.digest() == cfg.digest()
        assert CompileConfig().digest() != cfg.digest()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown pipeline options"):
            CompileConfig.from_dict({"voltage": 1.2})

    def test_invalid_values_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="unsupported stride"):
            CompileConfig(stride=4)
        with pytest.raises(ConfigError, match="unknown execution backend"):
            CompileConfig(backend="gpu")

    def test_digest_feeds_artifact_keys(self):
        nfa = compile_regex_set(RULES)
        base = ruleset_fingerprint(nfa)
        sparse = ruleset_fingerprint(nfa, CompileConfig(backend="sparse"))
        strided = ruleset_fingerprint(nfa, CompileConfig(stride=2))
        assert len({base, sparse, strided}) == 3
        # config identity == key identity: same digest, same key
        assert sparse == ruleset_fingerprint(
            nfa, CompileConfig.from_dict(CompileConfig(backend="sparse").to_dict())
        )


class TestScanConfig:
    def test_round_trip_dict_and_digest(self, tmp_path):
        cfg = ScanConfig(
            backend="sparse",
            num_shards=4,
            workers=2,
            chunk_size=4096,
            cache_capacity=8,
            max_reports=123,
            on_truncation="error",
            artifact_store=str(tmp_path),
            mp_start_method="spawn",
        )
        back = ScanConfig.from_dict(cfg.to_dict())
        assert back == cfg
        assert back.digest() == cfg.digest()

    def test_store_instances_serialize_as_their_root(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cfg = ScanConfig(artifact_store=store)
        assert cfg.to_dict()["artifact_store"] == str(store.root)
        # digest is stable whether the store rides as instance or path
        assert cfg.digest() == ScanConfig(artifact_store=str(tmp_path)).digest()

    def test_backend_instances_are_not_serializable(self):
        from repro.sim.backends import SparseBackend

        cfg = ScanConfig(backend=SparseBackend())
        with pytest.raises(ConfigError, match="cannot be serialized"):
            cfg.to_dict()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_size": 0},
            {"chunk_size": True},
            {"chunk_size": "64k"},
            {"num_shards": 0},
            {"workers": 0},
            {"cache_capacity": 0},
            {"max_reports": -1},
            {"on_truncation": "explode"},
            {"backend": "gpu"},
            {"backend": 7},
            {"mp_start_method": "teleport"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ScanConfig(**kwargs)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown scan options"):
            ScanConfig.from_dict({"shards": 2})

    def test_merged_ignores_none(self):
        cfg = ScanConfig(num_shards=3, chunk_size=128)
        merged = cfg.merged(chunk_size=None, max_reports=9)
        assert merged.chunk_size == 128
        assert merged.max_reports == 9
        assert merged.num_shards == 3
        assert cfg.merged() is cfg

    def test_engine_backend_resolves_auto_once(self):
        # the one place the "auto" -> defer-to-artifact rewrite lives
        assert ScanConfig(backend="auto").engine_backend is None
        assert ScanConfig(backend="sparse").engine_backend == "sparse"
        assert ScanConfig(backend="bitparallel").engine_backend == "bitparallel"


class TestDeprecationShims:
    def test_service_kwargs_warn_and_match_config(self):
        for nfa, data in CORPUS:
            with pytest.warns(DeprecationWarning, match="deprecated"):
                legacy = MatchingService(num_shards=2, chunk_size=37)
            with legacy:
                old = legacy.scan(nfa, data)
            with MatchingService(
                ScanConfig(num_shards=2, chunk_size=37)
            ) as service:
                new = service.scan(nfa, data)
            assert_same_service_result(old, new)
            # both must agree with the naive oracle, not just each other
            assert [
                (r.cycle, r.state_id) for r in new.reports
            ] == [(r.cycle, r.state_id) for r in oracle_run(nfa, data).reports]

    def test_default_max_reports_maps_to_max_reports(self):
        with pytest.warns(DeprecationWarning):
            service = MatchingService(default_max_reports=5)
        assert service.config.max_reports == 5
        assert service.default_max_reports == 5

    def test_dispatcher_kwargs_warn_and_match_config(self):
        nfa, data = CORPUS[0]
        with pytest.warns(DeprecationWarning):
            with Dispatcher(nfa, num_shards=3, workers=2) as old_d:
                old = old_d.scan(data)
        with Dispatcher(nfa, ScanConfig(num_shards=3, workers=2)) as new_d:
            new = new_d.scan(data)
        assert report_keys(old.reports) == report_keys(new.reports)
        assert old.stats.num_reports == new.stats.num_reports

    def test_session_kwargs_warn(self):
        nfa, data = CORPUS[1]
        dispatcher = Dispatcher(nfa, ScanConfig())
        with pytest.warns(DeprecationWarning):
            session = Session("legacy", dispatcher, max_reports=3)
        assert session.max_reports == 3
        session.close()

    def test_server_kwargs_warn(self):
        with pytest.warns(DeprecationWarning):
            server = MatchingServer(num_shards=2)
        assert server.service.config.num_shards == 2
        server.service.close()

    def test_config_and_kwargs_are_mutually_exclusive(self):
        with pytest.raises(ConfigError, match="not both"):
            MatchingService(ScanConfig(), num_shards=2)
        with pytest.raises(ConfigError, match="not both"):
            Dispatcher(CORPUS[0][0], ScanConfig(), num_shards=2)

    def test_shim_warning_attributes_to_the_caller(self):
        # the CI deprecation gate relies on this: internal repro modules
        # never hit a shim, so a warning's attributed module (set via
        # stacklevel) is the *caller's*, i.e. this test file
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MatchingService(num_shards=2).close()
        assert any(
            issubclass(w.category, DeprecationWarning)
            and w.filename == __file__
            for w in caught
        )

    def test_background_server_shim_attributes_to_the_caller(self):
        # BackgroundServer forwards **kwargs from inside repro.service;
        # it must resolve legacy kwargs itself so the warning points
        # here, not at the library's forwarding frame
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            background = BackgroundServer(num_shards=2)
        background.server.service.close()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations
        assert all(w.filename == __file__ for w in deprecations)
        assert background.server.service.config.num_shards == 2


class TestRulesetFacade:
    def test_end_to_end_compile_save_load_scan(self, tmp_path):
        nfa, data = CORPUS[0]
        expected = Engine(compile_regex_set(RULES, name="api-corpus")).run(
            data
        )
        with Ruleset.from_regexes(RULES, name="api-corpus").compile(
            scan=ScanConfig(num_shards=2, chunk_size=53)
        ) as handle:
            first = handle.scan(data)
            assert report_keys(first.reports) == report_keys(expected.reports)
            path = handle.save(tmp_path / "rules.npz")
            fingerprint = handle.fingerprint
        # a fresh process shape: load the artifact, scan, byte-identical
        with Ruleset.from_artifact(path).compile() as warm:
            assert warm.fingerprint == fingerprint
            again = warm.scan(data)
        assert report_keys(again.reports) == report_keys(expected.reports)

    def test_artifact_adoption_skips_recompilation(self, tmp_path):
        path = (
            Ruleset.from_regexes(RULES)
            .compile(CompileConfig(backend="sparse"))
            .save(tmp_path / "r.npz")
        )
        with Ruleset.from_artifact(path).compile(
            scan=ScanConfig(backend="sparse")
        ) as handle:
            handle.scan(STREAM)
            stats = handle.service.cache_stats
            # the adopted artifact seeded the engine cache: no misses
            assert stats.hits >= 1 and stats.misses == 0

    def test_stream_inherits_config_truncation_policy(self):
        from repro.errors import SimulationError

        with Ruleset.from_regexes(RULES).compile(
            scan=ScanConfig(max_reports=1, on_truncation="error")
        ) as handle:
            session = handle.stream("strict")
            with pytest.raises(SimulationError, match="kept-reports cap"):
                session.feed(STREAM)
            session.close()
            # per-stream override still wins over the config
            with warnings.catch_warnings():
                warnings.simplefilter("error", category=UserWarning)
                lenient = handle.stream("lenient", on_truncation="ignore")
                lenient.feed(STREAM)
                lenient.close()

    def test_stream_sessions(self):
        with Ruleset.from_regexes(RULES).compile() as handle:
            with handle.stream("tenant-a") as session:
                session.feed(STREAM[:7])
                session.feed(STREAM[7:])
            assert session.closed
            expected = Engine(handle.automaton).run(STREAM)
            assert report_keys(session.reports) == report_keys(
                expected.reports
            )

    def test_scan_many(self):
        streams = {"a": STREAM, "b": STREAM[:13], "c": b""}
        with Ruleset.from_regexes(RULES).compile() as handle:
            results = handle.scan_many(streams)
        assert set(results) == set(streams)
        for name, data in streams.items():
            expected = Engine(handle.automaton).run(data)
            assert report_keys(results[name].reports) == report_keys(
                expected.reports
            )

    def test_from_automaton_and_invalid_sources(self):
        nfa = glushkov_nfa("abc", report_code="m")
        handle = Ruleset.from_automaton(nfa).compile()
        assert handle.scan(b"abcabc").num_reports == 2
        handle.close()
        with pytest.raises(ConfigError, match="empty regex rule set"):
            Ruleset.from_regexes({})
        with pytest.raises(ConfigError, match="as an artifact"):
            Ruleset.from_artifact(42)

    def test_key_covers_compile_config(self):
        rules = Ruleset.from_regexes(RULES)
        sparse = rules.compile(CompileConfig(backend="sparse"))
        auto = rules.compile(CompileConfig(backend="auto"))
        assert sparse.fingerprint == auto.fingerprint
        assert sparse.key != auto.key

    def test_serve_preloads_the_ruleset(self):
        handle = Ruleset.from_regexes(RULES).compile(
            scan=ScanConfig(num_shards=2)
        )
        background = handle.serve(port=0, background=True)
        try:
            with MatchingClient(port=background.port) as client:
                # no register: the serve() preload made the handle known
                result = client.scan(handle.fingerprint, STREAM)
                offline = Engine(handle.automaton).run(STREAM)
                assert report_keys(result.reports) == report_keys(
                    offline.reports
                )
        finally:
            background.stop()


class TestWireConfig:
    def test_config_digest_round_trips_the_wire(self):
        cfg = ScanConfig(chunk_size=64, max_reports=7, on_truncation="ignore")
        with BackgroundServer(config=ScanConfig(num_shards=2)) as bg:
            with MatchingClient(port=bg.port) as client:
                handle = client.register(RULES)
                result = client.scan(handle, STREAM, config=cfg)
                # the server parsed the config through ScanConfig and
                # echoes the digest of what it saw: unchanged
                assert result.config_digest == cfg.digest()
                assert len(result.reports) == 7
                # explicit config caps are intentional: no warnings
                assert result.truncated and not result.warnings
                many = client.scan_many(
                    handle, {"a": STREAM}, config=cfg
                )
                assert len(many["a"].reports) == 7

    def test_wire_config_defaults_do_not_override_server_policy(self):
        # a config that only sets chunk_size must not smuggle in the
        # client-side default max_reports/on_truncation: the server's
        # deployment cap (3) still applies and still warns
        from repro.sim.backends import ReportTruncationWarning

        with BackgroundServer(config=ScanConfig(max_reports=3)) as bg:
            with MatchingClient(port=bg.port) as client:
                handle = client.register(RULES)
                with pytest.warns(ReportTruncationWarning):
                    result = client.scan(
                        handle, STREAM, config=ScanConfig(chunk_size=16)
                    )
                assert len(result.reports) == 3
                assert result.truncated and result.warnings
                assert result.config_digest == ScanConfig(
                    chunk_size=16
                ).digest()

    def test_invalid_wire_config_is_bad_request(self):
        with BackgroundServer(config=ScanConfig()) as bg:
            with MatchingClient(port=bg.port) as client:
                handle = client.register(RULES)
                frame_cfg = ScanConfig().to_dict()
                frame_cfg["chunk_size"] = 0
                with pytest.raises(RemoteError) as excinfo:
                    client._request(
                        {
                            "op": "scan",
                            "handle": handle,
                            "data": "",
                            "config": frame_cfg,
                        }
                    )
                assert excinfo.value.code == "bad-request"

    def test_loose_fields_win_over_config(self):
        with BackgroundServer(config=ScanConfig()) as bg:
            with MatchingClient(port=bg.port) as client:
                handle = client.register(RULES)
                result = client.scan(
                    handle,
                    STREAM,
                    config=ScanConfig(max_reports=3),
                    max_reports=5,
                )
                assert len(result.reports) == 5

    def test_session_open_accepts_config(self):
        cfg = ScanConfig(max_reports=2, on_truncation="ignore")
        with BackgroundServer(config=ScanConfig()) as bg:
            with MatchingClient(port=bg.port) as client:
                handle = client.register(RULES)
                session = client.open_session(handle, "cfg", config=cfg)
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    session.feed(STREAM)
                assert session.truncated
                summary = session.close()
                assert summary["num_reports"] > 2
