"""Tests for the per-design architecture builds and energy accounting."""

import pytest

from repro.arch.baselines import map_baseline
from repro.arch.circuits import CircuitLibrary
from repro.arch.designs import (
    ALL_DESIGNS,
    build_ca,
    build_cama,
    build_design,
    build_eap,
    build_impala,
)
from repro.arch.stride_models import multistride_energy
from repro.automata.glushkov import compile_regex_set
from repro.automata.nfa import Automaton, StartKind
from repro.errors import ConfigError, ModelError
from repro.sim.engine import Engine


@pytest.fixture(scope="module")
def lib():
    return CircuitLibrary()


@pytest.fixture(scope="module")
def nfa():
    return compile_regex_set(
        [f"rule{i}[ab]+c" for i in range(30)] + ["x.{2,5}y", "[^q]{3}z"],
        name="mixed",
    )


@pytest.fixture(scope="module")
def data():
    import random

    rng = random.Random(11)
    return bytes(
        rng.choice(b"abcrule0123456789xyzq") for _ in range(4000)
    )


def run_stats(nfa, build, data):
    return Engine(nfa).run(data, placement=build.placement).stats


class TestBaselineMapping:
    def test_partitions_cover_all_states(self, nfa):
        mapping = map_baseline(nfa)
        assert (mapping.state_partition >= 0).all()

    def test_capacity_respected(self, nfa):
        mapping = map_baseline(nfa)
        for partition in mapping.partitions:
            assert len(partition.states) <= 256

    def test_dense_component_flagged_fcb(self):
        nfa = Automaton(name="dense")
        for i in range(50):
            nfa.add_state(
                "[ab]",
                start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
                reporting=i == 49,
            )
        for i in range(50):
            for j in range(50):
                if i != j:
                    nfa.add_transition(i, j)
        mapping = map_baseline(nfa)
        assert mapping.num_fcb_partitions >= 1

    def test_chain_not_flagged(self, nfa):
        mapping = map_baseline(nfa)
        # the regex chains have tiny bandwidth: no FCB partitions
        assert mapping.num_fcb_partitions == 0

    def test_big_component_uses_global(self):
        nfa = Automaton(name="chain")
        prev = None
        for i in range(600):
            ste = nfa.add_state(
                "a",
                start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
                reporting=i == 599,
            )
            if prev is not None:
                nfa.add_transition(prev, ste)
            prev = ste
        mapping = map_baseline(nfa)
        assert mapping.num_partitions >= 3
        assert len(mapping.cross_edges) == 2
        assert mapping.num_global_switches >= 1


class TestBuilds:
    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_build_dispatch(self, design, nfa, lib):
        build = build_design(design, nfa, lib)
        assert build.design == design
        assert build.area_mm2 > 0
        assert build.leakage_w > 0

    def test_unknown_design_rejected(self, nfa, lib):
        with pytest.raises(ModelError):
            build_design("TPU", nfa, lib)

    def test_cama_variants_share_area(self, nfa, lib):
        assert build_cama(nfa, "E", lib).area_um2 == build_cama(nfa, "T", lib).area_um2

    def test_cama_area_smaller_than_ca(self, nfa, lib):
        # the headline area claim, at benchmark scale
        assert build_cama(nfa, "E", lib).area_um2 < build_ca(nfa, lib).area_um2

    def test_cama_area_smaller_than_impala_and_eap(self, nfa, lib):
        cama = build_cama(nfa, "E", lib).area_um2
        assert cama < build_impala(nfa, lib).area_um2
        assert cama < build_eap(nfa, lib).area_um2

    def test_impala_counts_bitsplit_states(self, nfa, lib):
        build = build_impala(nfa, lib)
        assert build.counts["bitsplit_states"] >= len(nfa)

    def test_compute_density_ranking(self, nfa, lib):
        # Fig 11a: CAMA-T has the highest compute density
        densities = {
            d: build_design(d, nfa, lib).compute_density_gbps_mm2()
            for d in ALL_DESIGNS
        }
        assert densities["CAMA-T"] == max(densities.values())
        assert densities["CAMA-T"] > densities["CA"]


class TestEnergy:
    def test_cama_e_lower_than_others(self, nfa, lib, data):
        energies = {}
        for design in ALL_DESIGNS:
            build = build_design(design, nfa, lib)
            stats = run_stats(nfa, build, data)
            energies[design] = build.energy(stats).per_cycle_pj()
        assert energies["CAMA-E"] == min(energies.values())
        # the paper's headline: >2x lower than CA and Impala
        assert energies["CA"] / energies["CAMA-E"] > 1.5
        assert energies["2-stride Impala"] / energies["CAMA-E"] > 1.5

    def test_impala_energy_higher_than_ca(self, nfa, lib, data):
        # doubled periphery: Impala's SM energy exceeds CA's
        ca = build_ca(nfa, lib)
        impala = build_impala(nfa, lib)
        e_ca = ca.energy(run_stats(nfa, ca, data))
        e_impala = impala.energy(run_stats(nfa, impala, data))
        assert e_impala.state_match_pj > e_ca.state_match_pj * 1.2

    def test_breakdown_sums(self, nfa, lib, data):
        build = build_cama(nfa, "E", lib)
        breakdown = build.energy(run_stats(nfa, build, data))
        assert breakdown.total_pj == pytest.approx(
            breakdown.state_match_pj
            + breakdown.local_switch_pj
            + breakdown.global_switch_pj
            + breakdown.wire_pj
            + breakdown.encoder_pj
        )

    def test_fractions_sum_to_one(self, nfa, lib, data):
        build = build_cama(nfa, "T", lib)
        fractions = build.energy(run_stats(nfa, build, data)).fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_encoder_fraction_small(self, nfa, lib, data):
        # §I: the encoder occupies ~0.1% of total energy on paper-scale
        # automata (hundreds of tiles); this 241-state automaton is a
        # single tile, so the bound is proportionally looser. The
        # scale trend is asserted in test_experiments.
        build = build_cama(nfa, "E", lib)
        fractions = build.energy(run_stats(nfa, build, data)).fractions()
        assert fractions["encoder"] < 0.20

    def test_power_positive_and_ordered(self, nfa, lib, data):
        builds = {d: build_design(d, nfa, lib) for d in ("CAMA-E", "CA")}
        powers = {
            d: b.power_w(run_stats(nfa, b, data)) for d, b in builds.items()
        }
        assert powers["CAMA-E"] < powers["CA"]

    def test_energy_requires_partition_stats(self, nfa, lib, data):
        # stats collected without a placement are a caller-side
        # configuration error: typed ConfigError, not a model error
        build = build_cama(nfa, "E", lib)
        stats = Engine(nfa).run(data).stats  # no placement
        with pytest.raises(ConfigError, match="partition-resolved"):
            build.energy(stats)


class TestMultiStride:
    def test_impala4_more_energy_than_cama2(self, lib):
        nfa = compile_regex_set(["abc", "bcd+e", "[xy]z"], name="ms")
        data = b"abcdbcdezxyz" * 200
        result = multistride_energy(nfa, data, lib)
        assert result.ratio_impala_over("2-stride CAMA-T") > 1.5
        assert result.ratio_impala_over("2-stride CAMA-E") > result.ratio_impala_over(
            "2-stride CAMA-T"
        )

    def test_counts_populated(self, lib):
        nfa = compile_regex_set(["ab", "cd"], name="ms2")
        result = multistride_energy(nfa, b"abcd" * 100, lib)
        assert result.strided_states > 0
        assert result.impala4_states >= result.strided_states
        assert result.cama2_partitions >= 1
