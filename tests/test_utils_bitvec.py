"""Unit and property tests for repro.utils.bitvec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitvec import (
    bit_positions,
    bits_from_positions,
    iter_submasks,
    mask_of_width,
    popcount,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_single_bits(self):
        for i in range(0, 300, 37):
            assert popcount(1 << i) == 1

    def test_all_ones(self):
        assert popcount(mask_of_width(256)) == 256


class TestMaskOfWidth:
    def test_zero_width(self):
        assert mask_of_width(0) == 0

    def test_small(self):
        assert mask_of_width(4) == 0b1111

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_of_width(-1)


class TestBitPositions:
    def test_empty(self):
        assert list(bit_positions(0)) == []

    def test_ascending(self):
        assert list(bit_positions(0b101001)) == [0, 3, 5]

    def test_high_bits(self):
        assert list(bit_positions(1 << 255)) == [255]


class TestBitsFromPositions:
    def test_roundtrip(self):
        mask = 0b1011010
        assert bits_from_positions(bit_positions(mask)) == mask

    def test_duplicates_collapse(self):
        assert bits_from_positions([3, 3, 3]) == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_from_positions([-1])


class TestIterSubmasks:
    def test_count_is_power_of_two(self):
        subs = list(iter_submasks(0b1011))
        assert len(subs) == 8
        assert set(subs) == {
            0b1011, 0b1010, 0b1001, 0b1000, 0b0011, 0b0010, 0b0001, 0,
        }

    def test_zero(self):
        assert list(iter_submasks(0)) == [0]


@given(st.integers(min_value=0, max_value=(1 << 256) - 1))
def test_positions_roundtrip_property(mask):
    assert bits_from_positions(bit_positions(mask)) == mask


@given(st.integers(min_value=0, max_value=(1 << 256) - 1))
def test_popcount_matches_positions(mask):
    assert popcount(mask) == len(list(bit_positions(mask)))


@given(st.integers(min_value=0, max_value=0xFFF))
def test_submasks_are_subsets(mask):
    for sub in iter_submasks(mask):
        assert sub & ~mask == 0
