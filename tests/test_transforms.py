"""Equivalence tests for the bit-split (Impala) and 2-stride transforms.

These are the load-bearing correctness arguments for the multi-stride
energy comparisons: the transformed automata must report the same
(position, pattern) events as the original on every input.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.bitsplit import (
    bitsplit,
    nibble_stream,
    rectangle_decomposition,
)
from repro.automata.glushkov import compile_regex_set, glushkov_nfa
from repro.automata.striding import pad_input, stride2, stride_pairs
from repro.automata.symbols import SymbolClass
from repro.errors import AutomatonError
from repro.sim.engine import Engine, StridedEngine

PATTERNS = [
    "ab",
    "a|b",
    "(a|b)e*cd+",
    "a.c",
    "[a-f]x",
    "ab{2,4}",
    "(ab)+c?",
    "[^a]b",
]
INPUTS = [b"aecd", b"abab", b"aXcY", b"ffffx", b"abbbbc", b"cdcdcd", b"zzzz"]


def original_reports(nfa, data):
    return {(r.cycle, r.state_id) for r in Engine(nfa).run(data).reports}


class TestRectangleDecomposition:
    def test_single_symbol(self):
        rects = rectangle_decomposition(SymbolClass.from_symbols([0x41]))
        assert rects == [(1 << 4, 1 << 1)]

    def test_full_row(self):
        # all symbols with high nibble 2 -> one rectangle {2} x {0..15}
        cls = SymbolClass.from_ranges((0x20, 0x2F))
        assert rectangle_decomposition(cls) == [(1 << 2, 0xFFFF)]

    def test_universe_is_one_rectangle(self):
        assert rectangle_decomposition(SymbolClass.universe()) == [
            (0xFFFF, 0xFFFF)
        ]

    def test_exact_cover(self):
        cls = SymbolClass.from_symbols([0x12, 0x15, 0x32, 0x35, 0x47])
        rects = rectangle_decomposition(cls)
        covered = set()
        for hi_mask, lo_mask in rects:
            for hi in range(16):
                if hi_mask >> hi & 1:
                    for lo in range(16):
                        if lo_mask >> lo & 1:
                            symbol = hi << 4 | lo
                            assert symbol not in covered, "rectangles overlap"
                            covered.add(symbol)
        assert covered == set(cls)

    @given(st.frozensets(st.integers(0, 255), min_size=1, max_size=40))
    def test_exact_cover_property(self, symbols):
        cls = SymbolClass.from_symbols(symbols)
        rects = rectangle_decomposition(cls)
        covered = set()
        for hi_mask, lo_mask in rects:
            for hi in range(16):
                if hi_mask >> hi & 1:
                    for lo in range(16):
                        if lo_mask >> lo & 1:
                            covered.add(hi << 4 | lo)
        assert covered == set(symbols)


class TestNibbleStream:
    def test_interleaving(self):
        assert nibble_stream(b"\xab") == bytes([0xA, 16 + 0xB])

    def test_length_doubles(self):
        assert len(nibble_stream(b"xyz")) == 6


class TestBitsplitEquivalence:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_reports_match_on_inputs(self, pattern):
        nfa = glushkov_nfa(pattern)
        split = bitsplit(nfa)
        split.automaton.validate()
        engine = Engine(split.automaton)
        for data in INPUTS:
            expected = original_reports(nfa, data)
            got = {
                ((r.cycle - 1) // 2, split.report_origin[r.state_id])
                for r in engine.run(nibble_stream(data)).reports
            }
            assert got == expected, f"pattern={pattern!r} data={data!r}"

    def test_reports_only_on_lo_phase(self):
        nfa = glushkov_nfa("ab")
        split = bitsplit(nfa)
        reports = Engine(split.automaton).run(nibble_stream(b"abab")).reports
        assert all(r.cycle % 2 == 1 for r in reports)

    def test_state_counts_recorded(self):
        nfa = glushkov_nfa("[ab][cd]")
        split = bitsplit(nfa)
        assert split.num_hi_states + split.num_lo_states == len(split.automaton)

    def test_anchored_preserved(self):
        nfa = glushkov_nfa("ab", anchored=True)
        split = bitsplit(nfa)
        engine = Engine(split.automaton)
        assert engine.run(nibble_stream(b"ab")).num_reports == 1
        assert engine.run(nibble_stream(b"xab")).num_reports == 0

    @settings(max_examples=30, deadline=None)
    @given(
        words=st.lists(
            st.text(alphabet="abc", min_size=1, max_size=3), min_size=1, max_size=2
        ),
        data=st.binary(min_size=1, max_size=10),
    )
    def test_equivalence_property(self, words, data):
        nfa = compile_regex_set(["|".join(words)])
        split = bitsplit(nfa)
        expected = original_reports(nfa, data)
        got = {
            ((r.cycle - 1) // 2, split.report_origin[r.state_id])
            for r in Engine(split.automaton).run(nibble_stream(data)).reports
        }
        assert got == expected


class TestStride2Equivalence:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_reports_match_on_inputs(self, pattern):
        nfa = glushkov_nfa(pattern)
        strided = stride2(nfa)
        engine = StridedEngine(strided)
        for data in INPUTS:
            padded = pad_input(data)
            expected = original_reports(nfa, padded)
            got = {(r.cycle, r.state_id) for r in engine.run(padded).reports}
            assert got == expected, f"pattern={pattern!r} data={data!r}"

    def test_anchored(self):
        nfa = glushkov_nfa("abcd", anchored=True)
        strided = stride2(nfa)
        engine = StridedEngine(strided)
        assert engine.run(b"abcd").num_reports == 1
        assert engine.run(b"xabc").num_reports == 0

    def test_odd_position_report(self):
        # match ends on the first half of a stride -> exit state fires
        nfa = glushkov_nfa("abc")
        strided = stride2(nfa)
        reports = StridedEngine(strided).run(pad_input(b"abc")).reports
        assert {r.cycle for r in reports} == {2}

    def test_even_start_position(self):
        # match starts on the second half of a stride -> entry state fires
        nfa = glushkov_nfa("ab")
        strided = stride2(nfa)
        reports = StridedEngine(strided).run(b"xabx").reports
        assert {r.cycle for r in reports} == {2}

    def test_unpadded_odd_input_rejected(self):
        with pytest.raises(AutomatonError):
            stride_pairs(b"abc")

    def test_state_growth_bounded_by_edges(self):
        nfa = glushkov_nfa("(a|b)e*cd+")
        strided = stride2(nfa)
        bound = (
            nfa.num_transitions()
            + len(nfa.start_states())
            + len(nfa.reporting_states())
        )
        assert len(strided) <= bound

    @settings(max_examples=30, deadline=None)
    @given(
        words=st.lists(
            st.text(alphabet="ab", min_size=1, max_size=4), min_size=1, max_size=2
        ),
        data=st.binary(min_size=2, max_size=12),
    )
    def test_equivalence_property(self, words, data):
        nfa = compile_regex_set(["|".join(words)])
        strided = stride2(nfa)
        padded = pad_input(data)
        expected = original_reports(nfa, padded)
        got = {
            (r.cycle, r.state_id)
            for r in StridedEngine(strided).run(padded).reports
        }
        assert got == expected
