"""Cross-backend equivalence and backend-selection tests.

The execution backends must be observationally identical: same reports
(cycle, state, code, order), same activity statistics, same final
resumable state — one-shot, chunked at arbitrary boundaries, and
sharded through the dispatcher.  These tests drive that equivalence
with randomized automata, randomized inputs and randomized chunk
splits, plus every registry benchmark.
"""

import random
import warnings

import numpy as np
import pytest

from repro.automata.analysis import estimate_active_fraction
from repro.automata.glushkov import compile_regex_set, glushkov_nfa
from repro.automata.nfa import Automaton, StartKind
from repro.automata.striding import pad_input, stride2
from repro.automata.symbols import SymbolClass
from repro.errors import SimulationError
from repro.service import Dispatcher, MatchingService, RulesetManager
from repro.sim.backends import (
    BACKEND_NAMES,
    DENSE_ACTIVITY_THRESHOLD,
    MAX_BITPARALLEL_STATES,
    ReportTruncationWarning,
    choose_backend_name,
    clear_csr_cache,
    get_backend,
)
from repro.sim.backends import bitwords
from repro.sim.backends.native import native_available
from repro.sim.engine import Engine, StridedEngine, cached_successor_csr
from repro.sim.trace import PartitionAssignment
from repro.workloads import BENCHMARK_NAMES, get_benchmark
from repro.workloads.generators import dense_activity_automaton

TEST_SCALE = 1.0 / 64.0

#: the kernel the dense family resolves to on this host — the auto
#: policy upgrades "bitparallel" choices to the compiled C loop when
#: it is loadable (see repro.sim.backends.native.dense_backend)
DENSE_KERNEL = "native" if native_available() else "bitparallel"


def report_keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def random_automaton(rng: random.Random, num_states: int) -> Automaton:
    """A random valid homogeneous NFA (reachable, >=1 start, >=1 report)."""
    nfa = Automaton(name=f"rand{num_states}")
    for i in range(num_states):
        roll = rng.random()
        if roll < 0.25:
            cls = SymbolClass.from_symbols([rng.randrange(4)])
        elif roll < 0.5:
            lo = rng.randrange(3)
            cls = SymbolClass.from_ranges((lo, rng.randint(lo, 5)))
        elif roll < 0.75:
            cls = SymbolClass.from_symbols(
                rng.sample(range(8), rng.randint(1, 4))
            )
        else:
            cls = SymbolClass.from_symbols([rng.randrange(6)]).negate()
        if i == 0:
            start = StartKind.ALL_INPUT
        else:
            start = rng.choice(
                [StartKind.NONE, StartKind.NONE, StartKind.NONE,
                 StartKind.ALL_INPUT, StartKind.START_OF_DATA]
            )
        nfa.add_state(cls, start=start, reporting=rng.random() < 0.3)
    if not any(s.reporting for s in nfa.states):
        nfa.states[-1].reporting = True
    for v in range(1, num_states):
        # spanning edge keeps every state reachable from state 0
        nfa.add_transition(rng.randrange(v), v)
    for _ in range(num_states * 2):
        nfa.add_transition(
            rng.randrange(num_states), rng.randrange(num_states)
        )
    nfa.validate()
    return nfa


def random_input(rng: random.Random, length: int) -> bytes:
    # a tiny alphabet keeps the automaton's classes hot (lots of matches)
    return bytes(rng.randrange(8) for _ in range(length))


def random_chunks(rng: random.Random, data: bytes) -> list[bytes]:
    cuts = sorted(rng.sample(range(len(data) + 1), rng.randint(0, 5)))
    edges = [0] + cuts + [len(data)]
    return [data[a:b] for a, b in zip(edges, edges[1:])]


class TestRandomizedEquivalence:
    """sparse == bitparallel on generated automata x inputs x splits."""

    @pytest.mark.parametrize("seed", range(20))
    def test_one_shot_and_chunked(self, seed):
        rng = random.Random(seed)
        nfa = random_automaton(rng, rng.randint(1, 90))
        data = random_input(rng, rng.randint(0, 300))
        sparse = Engine(nfa, backend="sparse")
        bitp = Engine(nfa, backend="bitparallel")

        one_sparse = sparse.run(data)
        one_bitp = bitp.run(data)
        assert report_keys(one_bitp.reports) == report_keys(one_sparse.reports)
        assert one_bitp.stats.num_reports == one_sparse.stats.num_reports
        assert (
            one_bitp.stats.enabled_states_sum
            == one_sparse.stats.enabled_states_sum
        )
        assert (
            one_bitp.stats.active_states_sum
            == one_sparse.stats.active_states_sum
        )

        # random chunk splits: reports and final state must agree too
        state_sparse = sparse.initial_state()
        state_bitp = bitp.initial_state()
        chunked_sparse, chunked_bitp = [], []
        for chunk in random_chunks(rng, data):
            chunked_sparse.extend(
                sparse.run_chunk(chunk, state_sparse).reports
            )
            chunked_bitp.extend(bitp.run_chunk(chunk, state_bitp).reports)
        assert report_keys(chunked_sparse) == report_keys(one_sparse.reports)
        assert report_keys(chunked_bitp) == report_keys(one_sparse.reports)
        assert state_sparse.position == state_bitp.position == len(data)
        assert np.array_equal(
            np.sort(state_sparse.active), np.sort(state_bitp.active)
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_states_migrate_between_backends(self, seed):
        """A stream may switch backends mid-flight at any chunk boundary."""
        rng = random.Random(1000 + seed)
        nfa = random_automaton(rng, rng.randint(2, 60))
        data = random_input(rng, 200)
        engines = [
            Engine(nfa, backend="sparse"),
            Engine(nfa, backend="bitparallel"),
        ]
        reference = engines[0].run(data)
        state = engines[0].initial_state()
        reports = []
        for i, chunk in enumerate(random_chunks(rng, data)):
            engine = engines[(seed + i) % 2]
            reports.extend(engine.run_chunk(chunk, state).reports)
        assert report_keys(reports) == report_keys(reference.reports)

    @pytest.mark.parametrize("seed", range(6))
    def test_per_cycle_and_placement_stats_agree(self, seed):
        rng = random.Random(2000 + seed)
        nfa = random_automaton(rng, rng.randint(4, 50))
        data = random_input(rng, 120)
        parts = np.array(
            [rng.randrange(3) for _ in range(len(nfa))], dtype=np.int64
        )
        placement = PartitionAssignment(partition_of=parts, num_partitions=3)
        rs = Engine(nfa, backend="sparse").run(
            data, placement=placement, keep_per_cycle=True
        )
        rb = Engine(nfa, backend="bitparallel").run(
            data, placement=placement, keep_per_cycle=True
        )
        assert rb.stats.enabled_per_cycle == rs.stats.enabled_per_cycle
        assert rb.stats.active_per_cycle == rs.stats.active_per_cycle
        for field in (
            "partition_enabled_cycles",
            "partition_active_cycles",
            "partition_enabled_states_sum",
            "partition_enabled_weight_sum",
            "partition_active_states_sum",
        ):
            assert np.array_equal(
                getattr(rb.stats, field), getattr(rs.stats, field)
            ), field
        assert (
            rb.stats.global_crossing_states_sum
            == rs.stats.global_crossing_states_sum
        )
        assert (
            rb.stats.global_source_partitions_sum
            == rs.stats.global_source_partitions_sum
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_max_reports_cap_identical(self, seed):
        rng = random.Random(3000 + seed)
        nfa = random_automaton(rng, 30)
        data = random_input(rng, 200)
        for cap in (0, 1, 3, 10):
            rs = Engine(nfa, backend="sparse").run(data, max_reports=cap)
            rb = Engine(nfa, backend="bitparallel").run(data, max_reports=cap)
            assert report_keys(rb.reports) == report_keys(rs.reports)
            assert rb.stats.num_reports == rs.stats.num_reports
            assert rb.truncated == rs.truncated


class TestRegistryBenchmarkEquivalence:
    """Byte-identical reports on every registry benchmark."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_one_shot_chunked_and_sharded(self, name):
        bench = get_benchmark(name, scale=TEST_SCALE)
        data = bench.input_stream(400)
        sparse = Engine(bench.automaton, backend="sparse").run(data)
        bitp = Engine(bench.automaton, backend="bitparallel").run(data)
        assert report_keys(bitp.reports) == report_keys(sparse.reports)
        assert bitp.stats.num_reports == sparse.stats.num_reports
        assert bitp.stats.enabled_states_sum == sparse.stats.enabled_states_sum
        assert bitp.stats.active_states_sum == sparse.stats.active_states_sum

        # chunked through the bitparallel backend
        engine = Engine(bench.automaton, backend="bitparallel")
        state = engine.initial_state()
        chunked = []
        for start in range(0, len(data), 61):
            chunked.extend(
                engine.run_chunk(data[start : start + 61], state).reports
            )
        assert report_keys(chunked) == report_keys(sparse.reports)

        # sharded via the dispatcher, pinned to the bitparallel backend
        dispatcher = Dispatcher(
            bench.automaton, num_shards=4, backend="bitparallel"
        )
        sharded = dispatcher.scan(data, chunk_size=97)
        assert report_keys(sharded.reports) == report_keys(sparse.reports)

    def test_strided_rejects_custom_backend_instances(self):
        from repro.sim.backends import SparseBackend

        strided = stride2(glushkov_nfa("ab"))
        with pytest.raises(SimulationError, match="built-in execution"):
            StridedEngine(strided, backend=SparseBackend())

    def test_strided_backends_agree(self):
        nfa = compile_regex_set({"r1": "(a|b)e*cd+", "r2": "abc"}, name="s2")
        strided = stride2(nfa)
        data = pad_input(b"aecdabcaeccdd" * 9)
        rs = StridedEngine(strided, backend="sparse").run(data)
        rb = StridedEngine(strided, backend="bitparallel").run(data)
        assert report_keys(rb.reports) == report_keys(rs.reports)
        assert rb.stats.enabled_states_sum == rs.stats.enabled_states_sum
        assert rb.stats.active_states_sum == rs.stats.active_states_sum
        assert rb.stats.num_reports == rs.stats.num_reports


class TestAutoPolicy:
    def test_low_activity_automata_take_sparse(self):
        # narrow classes -> tiny expected activity -> the sparse kernel
        nfa = glushkov_nfa("abc")
        assert choose_backend_name(nfa) == "sparse"
        assert Engine(nfa, backend="auto").backend_name == "sparse"

    def test_small_dense_automaton_takes_bitparallel(self):
        dense = dense_activity_automaton(48, chain_length=16, match_width=230)
        assert choose_backend_name(dense) == "bitparallel"
        assert Engine(dense, backend="auto").backend_name == DENSE_KERNEL

    def test_sparse_regime_benchmark_takes_sparse(self):
        bench = get_benchmark("Snort", scale=TEST_SCALE)
        assert choose_backend_name(bench.automaton) == "sparse"

    def test_dense_workload_takes_bitparallel(self):
        dense = dense_activity_automaton(512)
        assert estimate_active_fraction(dense) >= DENSE_ACTIVITY_THRESHOLD
        assert choose_backend_name(dense) == "bitparallel"

    def test_measured_fraction_overrides_estimate(self):
        bench = get_benchmark("Snort", scale=TEST_SCALE)
        assert (
            choose_backend_name(bench.automaton, active_fraction=0.5)
            == "bitparallel"
        )
        dense = dense_activity_automaton(512)
        assert (
            choose_backend_name(dense, active_fraction=0.001) == "sparse"
        )

    def test_huge_automata_stay_sparse(self):
        class FakeHuge:
            def __len__(self):
                return MAX_BITPARALLEL_STATES + 1

        assert choose_backend_name(FakeHuge()) == "sparse"

    def test_explicit_bitparallel_fails_fast_above_limit(self):
        class FakeHuge:
            def __len__(self):
                return MAX_BITPARALLEL_STATES + 1

            def validate(self):
                pass

        with pytest.raises(SimulationError, match="bit-parallel limit"):
            get_backend("bitparallel").compile(FakeHuge())

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown execution backend"):
            get_backend("gpu")
        with pytest.raises(SimulationError):
            Engine(glushkov_nfa("a"), backend="nope")

    def test_backend_names_registry(self):
        assert set(BACKEND_NAMES) == {
            "sparse",
            "bitparallel",
            "native",
            "auto",
        }

    def test_auto_dispatcher_resolves_per_shard(self):
        # a dense component and a narrow-literal component end up on
        # different kernels under one auto dispatcher
        # one dense 48-state chain + one narrow literal = two components
        mixed = dense_activity_automaton(48, chain_length=48, match_width=230)
        mixed.merge(compile_regex_set(["abc"]))
        dispatcher = Dispatcher(mixed, num_shards=2, backend="auto")
        assert sorted(dispatcher.backend_names) == sorted(
            [DENSE_KERNEL, "sparse"]
        )

    def test_service_reports_backends(self):
        service = MatchingService(backend="bitparallel")
        nfa = compile_regex_set(["ab", "cd"])
        result = service.scan(nfa, b"abcdabcd")
        assert result.backends == ["bitparallel"]
        sparse_result = MatchingService(backend="sparse").scan(nfa, b"abcd")
        assert report_keys(sparse_result.reports) == report_keys(result.reports[:2])


class TestRulesetManagerBackends:
    def test_backends_cached_separately(self):
        manager = RulesetManager()
        nfa = glushkov_nfa("abc")
        sparse = manager.engine(nfa, "sparse")
        bitp = manager.engine(nfa, "bitparallel")
        assert sparse is not bitp
        assert manager.engine(nfa, "sparse") is sparse
        assert manager.engine(nfa, "bitparallel") is bitp
        assert manager.stats.hits == 2
        assert manager.stats.misses == 2


class TestCsrCache:
    def test_identical_structures_share_csr(self):
        clear_csr_cache()
        a = glushkov_nfa("abcd")
        b = glushkov_nfa("abcd")
        offs_a, tgts_a = cached_successor_csr(a)
        offs_b, tgts_b = cached_successor_csr(b)
        assert offs_a is offs_b and tgts_a is tgts_b

    def test_engine_constructors_reuse_cached_csr(self):
        clear_csr_cache()
        nfa = glushkov_nfa("(a|b)c*d")
        first = Engine(nfa, backend="sparse")
        second = Engine(nfa, backend="bitparallel")
        assert first.kernel._succ_offsets is second.kernel._succ_offsets
        assert first.kernel._succ_targets is second.kernel._succ_targets

    def test_mutation_invalidates_fingerprint(self):
        nfa = glushkov_nfa("ab")
        before = nfa.structure_fingerprint()
        nfa.add_transition(0, 0)
        after = nfa.structure_fingerprint()
        assert before != after
        offs, _ = cached_successor_csr(nfa)
        # the CSR reflects the new self-loop
        assert offs[1] - offs[0] >= 1

    def test_fingerprint_ignores_labels(self):
        a = glushkov_nfa("ab")
        b = glushkov_nfa("xy")  # different classes, same structure
        assert a.structure_fingerprint() == b.structure_fingerprint()


class TestTruncationControls:
    def test_implicit_cap_warns(self):
        engine = Engine(glushkov_nfa("a"), max_kept_reports=3)
        with pytest.warns(ReportTruncationWarning):
            result = engine.run(b"aaaaaa")
        assert len(result.reports) == 3
        assert result.stats.num_reports == 6
        assert result.truncated

    def test_implicit_cap_can_error(self):
        engine = Engine(
            glushkov_nfa("a"), max_kept_reports=2, on_truncation="error"
        )
        with pytest.raises(SimulationError, match="kept-reports cap"):
            engine.run(b"aaaa")

    def test_explicit_cap_is_silent(self):
        engine = Engine(glushkov_nfa("a"), max_kept_reports=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = engine.run(b"aaaaaa", max_reports=2)
        assert len(result.reports) == 2
        assert result.truncated

    def test_no_warning_below_cap(self):
        engine = Engine(glushkov_nfa("a"), max_kept_reports=10)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = engine.run(b"aaa")
        assert not result.truncated

    def test_bad_policy_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            Engine(glushkov_nfa("a"), on_truncation="explode")

    def test_session_truncation_flag(self):
        service = MatchingService()
        session = service.open_session(
            glushkov_nfa("a"), "t", max_reports=2, on_truncation="warn"
        )
        with pytest.warns(ReportTruncationWarning):
            session.feed(b"aaaa")
        assert session.truncated
        assert service.close_session("t").truncated


class TestBitwords:
    def test_pack_unpack_roundtrip(self):
        rng = random.Random(7)
        for n in (1, 5, 63, 64, 65, 130, 200):
            ids = np.array(
                sorted(rng.sample(range(n), rng.randint(0, n))), dtype=np.int64
            )
            words = bitwords.pack_indices(ids, n)
            assert np.array_equal(bitwords.unpack_indices(words), ids)
            assert bitwords.popcount(words) == len(ids)

    def test_pack_bool_matches_pack_indices(self):
        mask = np.zeros(100, dtype=bool)
        mask[[0, 63, 64, 99]] = True
        assert np.array_equal(
            bitwords.pack_bool(mask),
            bitwords.pack_indices(np.flatnonzero(mask), 100),
        )

    def test_popcount_rows_table_fallback(self, monkeypatch):
        """The _POPCOUNT8 path (numpy < 2, no np.bitwise_count) must
        equal both ground truth and whatever this numpy ships."""
        rng = np.random.default_rng(11)
        matrices = [
            rng.integers(
                0,
                np.iinfo(np.uint64).max,
                size=shape,
                dtype=np.uint64,
                endpoint=True,
            )
            for shape in ((1, 1), (5, 3), (64, 7), (3, 16))
        ]
        matrices.append(np.zeros((4, 2), dtype=np.uint64))
        matrices.append(np.empty((0, 3), dtype=np.uint64))
        current = [bitwords.popcount_rows(m) for m in matrices]
        # popcount_rows probes np.bitwise_count at call time, so
        # removing the attribute exercises the table fallback
        monkeypatch.delattr(np, "bitwise_count", raising=False)
        for matrix, reference in zip(matrices, current):
            truth = np.array(
                [
                    sum(bin(int(word)).count("1") for word in row)
                    for row in matrix
                ],
                dtype=np.int64,
            )
            fallback = bitwords.popcount_rows(matrix)
            assert np.array_equal(fallback, truth)
            assert np.array_equal(fallback, reference)
            assert fallback.dtype == np.int64
