"""Cluster mode: placement, quotas, router, retries, and failover.

The differential backbone: everything a client receives through the
:class:`~repro.cluster.router.ClusterRouter` must be byte-identical to
what a single offline ``MatchingService.scan`` produces on the same
ruleset and input — including mid-stream failover, where a node is
SIGKILLed under live sessions and the router replays checkpointed
engine state onto a replica.

Three harness tiers, cheapest first:

- pure units (hash ring, token buckets, configs) — no I/O;
- in-process fleets (two :class:`BackgroundServer` nodes + a
  :class:`BackgroundRouter` on threads) — real TCP, one process;
- subprocess fleets (:class:`LocalFleet` spawning ``repro serve``
  children) — the only tier where SIGKILL and cross-process artifact
  sharing are physically real.
"""

import asyncio
import itertools
import json
import multiprocessing
import os
import socket
import threading
import time

import pytest

from repro.api import ClusterConfig, ScanConfig
from repro.automata import compile_regex_set
from repro.cluster import (
    BackgroundRouter,
    ClusterRouter,
    HashRing,
    LocalFleet,
    NodeChannel,
    NodeError,
    QuotaExceededError,
    QuotaManager,
    TenantQuota,
)
from repro.compile import ArtifactStore, CompiledArtifact, compile_ruleset, remote_fetcher
from repro.errors import ConfigError, ReproError
from repro.service import (
    BackgroundServer,
    MatchingClient,
    MatchingService,
    RemoteError,
    RetryPolicy,
)
from repro.service.protocol import encode_data

RULES = {"r1": "(a|b)e*cd+", "r2": "abc", "r3": "x+y"}
STREAM = b"aecdabcxxyaecddabcyx" * 40


def keys_of(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


class RawConn:
    """A bare NDJSON connection for frames the typed clients don't send
    (checkpoint/state session moves, deliberately malformed requests)."""

    def __init__(self, port, host="127.0.0.1"):
        self._sock = socket.create_connection((host, port))
        self._file = self._sock.makefile("rb")
        self._ids = itertools.count(1)

    def request(self, frame):
        wire = {"id": next(self._ids), **frame}
        self._sock.sendall((json.dumps(wire) + "\n").encode())
        line = self._file.readline()
        assert line, "server closed the connection mid-request"
        return json.loads(line)

    def close(self):
        self._file.close()
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()


@pytest.fixture(scope="module")
def ruleset():
    return compile_regex_set(RULES, name="cluster-tests")


@pytest.fixture(scope="module")
def offline(ruleset):
    service = MatchingService(ScanConfig(num_shards=1))
    result = service.scan(ruleset, STREAM)
    yield result
    service.close()


# ---------------------------------------------------------------------------
# consistent-hash placement
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_place_returns_distinct_replicas(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in ("k1", "k2", "deadbeef", "x" * 40):
            placed = ring.place(key, 3)
            assert len(placed) == 3
            assert len(set(placed)) == 3
            assert set(placed) <= {"a", "b", "c", "d"}

    def test_placement_is_deterministic(self):
        one = HashRing(["a", "b", "c"])
        two = HashRing(["c", "a", "b"])  # insertion order must not matter
        for key in ("alpha", "beta", "gamma"):
            assert one.place(key, 2) == two.place(key, 2)

    def test_membership_change_moves_few_keys(self):
        nodes = [f"n{i}" for i in range(5)]
        ring = HashRing(nodes)
        keys = [f"ruleset-{i:04d}" for i in range(400)]
        before = {k: ring.place(k, 1)[0] for k in keys}
        ring.remove("n3")
        after = {k: ring.place(k, 1)[0] for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # only keys whose primary was the removed node may move
        assert all(before[k] == "n3" for k in moved)
        # and consistent hashing keeps that fraction near 1/5, not 1
        assert len(moved) < len(keys) // 2

    def test_degrades_when_fewer_nodes_than_replicas(self):
        ring = HashRing(["only", "pair"])
        assert set(ring.place("k", 5)) == {"only", "pair"}

    def test_add_is_idempotent(self):
        ring = HashRing()
        ring.add("n1")
        ring.add("n1")
        assert len(ring) == 1
        assert "n1" in ring
        assert ring.place("anything", 2) == ["n1"]


# ---------------------------------------------------------------------------
# tenant quotas (driven by a fake clock)
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestQuotas:
    def test_request_rate_rejects_then_refills(self):
        clock = FakeClock()
        quotas = QuotaManager(
            TenantQuota(requests_per_s=2, window_s=1.0), clock=clock
        )
        quotas.admit_request("t")  # burst = rate * window = 2
        quotas.admit_request("t")
        with pytest.raises(QuotaExceededError) as err:
            quotas.admit_request("t")
        assert err.value.code == "over-quota"
        assert err.value.resource == "requests"
        assert err.value.retry_after_s > 0
        clock.now += err.value.retry_after_s + 0.01
        quotas.admit_request("t")  # refilled

    def test_byte_rate_is_per_tenant(self):
        clock = FakeClock()
        quotas = QuotaManager(
            TenantQuota(bytes_per_s=100, window_s=1.0), clock=clock
        )
        quotas.admit_bytes("noisy", 100)
        with pytest.raises(QuotaExceededError):
            quotas.admit_bytes("noisy", 1)
        quotas.admit_bytes("quiet", 100)  # unaffected neighbour

    def test_oversized_request_drains_one_window_not_forever(self):
        clock = FakeClock()
        quotas = QuotaManager(
            TenantQuota(bytes_per_s=100, window_s=1.0), clock=clock
        )
        quotas.admit_bytes("t", 10_000)  # clamped to the burst (100)
        with pytest.raises(QuotaExceededError) as err:
            quotas.admit_bytes("t", 1)
        # a full window refills the whole burst; the hint cannot exceed it
        assert err.value.retry_after_s <= 1.0
        clock.now += 1.0
        quotas.admit_bytes("t", 100)

    def test_session_cap_releases(self):
        quotas = QuotaManager(TenantQuota(max_open_sessions=2))
        quotas.admit_session("t")
        quotas.admit_session("t")
        with pytest.raises(QuotaExceededError) as err:
            quotas.admit_session("t")
        assert err.value.resource == "sessions"
        quotas.release_session("t")
        quotas.admit_session("t")

    def test_compile_budget(self):
        clock = FakeClock()
        quotas = QuotaManager(
            TenantQuota(compile_cost_per_window=3, window_s=10.0),
            clock=clock,
        )
        quotas.admit_compile("t", 3)
        with pytest.raises(QuotaExceededError) as err:
            quotas.admit_compile("t", 1)
        assert err.value.resource == "compile"
        clock.now += 10.0
        quotas.admit_compile("t", 3)

    def test_unlimited_tenant_never_rejects(self):
        quotas = QuotaManager(None)
        for _ in range(1000):
            quotas.admit_request("t")
            quotas.admit_bytes("t", 1 << 30)

    def test_per_tenant_override_beats_default(self):
        clock = FakeClock()
        quotas = QuotaManager(
            TenantQuota(requests_per_s=1, window_s=1.0),
            per_tenant={"vip": TenantQuota()},  # unlimited
            clock=clock,
        )
        for _ in range(50):
            quotas.admit_request("vip")
        quotas.admit_request("pleb")
        with pytest.raises(QuotaExceededError):
            quotas.admit_request("pleb")
        assert quotas.rejections[("pleb", "requests")] == 1

    def test_quota_validation(self):
        with pytest.raises(ConfigError):
            TenantQuota(bytes_per_s=0)
        with pytest.raises(ConfigError):
            TenantQuota(max_open_sessions=0)
        with pytest.raises(ConfigError):
            TenantQuota(window_s=0)
        with pytest.raises(ConfigError):
            QuotaManager(TenantQuota(), max_accounts=0)
        assert TenantQuota().unlimited
        assert not TenantQuota(requests_per_s=1).unlimited

    def test_byte_reject_does_not_burn_a_request_token(self):
        # admission is atomic per request: checks run on every bucket
        # before anything is debited
        clock = FakeClock()
        quotas = QuotaManager(
            TenantQuota(requests_per_s=10, bytes_per_s=100, window_s=1.0),
            clock=clock,
        )
        quotas.admit_request_bytes("t", 100)  # 1 request + full byte burst
        with pytest.raises(QuotaExceededError) as err:
            quotas.admit_request_bytes("t", 50)
        assert err.value.resource == "bytes"
        # the byte-rejected attempt consumed no request token: exactly
        # 9 of the 10-token burst remain
        for _ in range(9):
            quotas.admit_request_bytes("t", 0)
        with pytest.raises(QuotaExceededError) as err:
            quotas.admit_request_bytes("t", 0)
        assert err.value.resource == "requests"

    def test_tenant_accounts_are_bounded(self):
        # the tenant string is client-controlled: tracked accounts must
        # not grow without bound under a churn of fresh ids
        clock = FakeClock()
        quotas = QuotaManager(
            TenantQuota(requests_per_s=100, max_open_sessions=4),
            max_accounts=8,
            clock=clock,
        )
        quotas.admit_session("keeper")  # holds a session: never evicted
        for i in range(100):
            quotas.admit_request(f"drive-by-{i}")
        tenants = quotas.snapshot()["tenants"]
        assert len(tenants) <= 8
        assert "keeper" in tenants
        quotas.release_session("keeper")

    def test_evicted_tenant_rejections_fold_into_aggregate(self):
        clock = FakeClock()
        quotas = QuotaManager(
            TenantQuota(requests_per_s=1, window_s=1.0),
            max_accounts=2,
            clock=clock,
        )
        quotas.admit_request("noisy")
        with pytest.raises(QuotaExceededError):
            quotas.admit_request("noisy")
        for i in range(5):
            quotas.admit_request(f"flood-{i}")
        snapshot = quotas.snapshot()
        assert "noisy" not in snapshot["tenants"]
        assert snapshot["rejections"]["(evicted)/requests"] == 1


class TestClusterConfig:
    def test_roundtrip(self):
        config = ClusterConfig(
            num_nodes=3,
            replication=2,
            tenant_bytes_per_s=1e6,
            tenant_max_sessions=8,
        )
        assert ClusterConfig.from_dict(config.to_dict()) == config
        assert config.digest() == ClusterConfig.from_dict(config.to_dict()).digest()
        assert config.digest() != ClusterConfig().digest()

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=2, replication=3)
        with pytest.raises(ConfigError):
            ClusterConfig(health_interval_s=0)

    def test_quotas_factory(self):
        assert ClusterConfig().quotas() is None
        manager = ClusterConfig(tenant_requests_per_s=5).quotas()
        assert isinstance(manager, QuotaManager)


# ---------------------------------------------------------------------------
# in-process fleet: 2 BackgroundServers behind a BackgroundRouter
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    return tmp_path_factory.mktemp("fleet-artifacts")


@pytest.fixture(scope="module")
def servers(fleet_store):
    started = []
    try:
        for _ in range(2):
            server = BackgroundServer(
                config=ScanConfig(num_shards=1, artifact_store=str(fleet_store))
            )
            server.start()
            started.append(server)
        yield started
    finally:
        for server in started:
            server.stop()


@pytest.fixture(scope="module")
def router(servers):
    with BackgroundRouter(
        ClusterRouter(
            [("127.0.0.1", s.port) for s in servers],
            replication=2,
            health_interval_s=0.5,
        )
    ) as bg:
        yield bg


class TestRouterProxy:
    def test_ping_marks_router(self, router):
        with MatchingClient(port=router.port) as client:
            payload = client.ping()
        assert payload["router"] is True

    def test_scan_byte_identical_to_offline(self, router, offline):
        with MatchingClient(port=router.port) as client:
            handle = client.register(RULES)
            result = client.scan(handle, STREAM)
        assert keys_of(result.reports) == keys_of(offline.reports)
        assert result.num_reports == offline.num_reports
        assert not result.truncated

    def test_register_places_on_both_replicas(self, router, servers, offline):
        with MatchingClient(port=router.port) as client:
            handle = client.register(RULES)
            stats = client.stats()
        placement = stats["rulesets"][handle]
        assert len(placement) == 2
        # both replicas can serve the handle directly, identically
        for server in servers:
            with MatchingClient(port=server.port) as direct:
                result = direct.scan(handle, STREAM)
            assert keys_of(result.reports) == keys_of(offline.reports)

    def test_scan_many_matches_solo(self, router, ruleset):
        streams = {"a": STREAM[:300], "b": STREAM[300:], "c": b"abcxxy" * 50}
        with MatchingService(ScanConfig(num_shards=1)) as solo:
            expected = {
                name: solo.scan(ruleset, data) for name, data in streams.items()
            }
        with MatchingClient(port=router.port) as client:
            handle = client.register(RULES)
            results = client.scan_many(handle, streams)
        for name in streams:
            assert keys_of(results[name].reports) == keys_of(
                expected[name].reports
            )

    def test_session_stream_matches_offline(self, router, offline):
        with MatchingClient(port=router.port) as client:
            handle = client.register(RULES)
            session = client.open_session(handle, "s-inproc")
            reports = []
            for start in range(0, len(STREAM), 171):
                reports.extend(session.feed(STREAM[start : start + 171]))
            summary = session.close()
        assert keys_of(reports) == keys_of(offline.reports)
        assert summary["num_reports"] == offline.num_reports
        assert summary["cycles"] == len(STREAM)

    def test_update_propagates_to_all_replicas(self, router, servers):
        with MatchingClient(port=router.port) as client:
            handle = client.register(RULES)
            client.update(handle, add={"r9": "zz+q"})
            result = client.scan(handle, b"azzzqa")
        assert result.num_reports > 0
        for server in servers:
            with MatchingClient(port=server.port) as direct:
                assert keys_of(direct.scan(handle, b"azzzqa").reports) == keys_of(
                    result.reports
                )
        # put the shared ruleset back for the other module-scoped tests
        with MatchingClient(port=router.port) as client:
            client.update(handle, remove=["r9"])

    def test_health_aggregates_nodes(self, router, servers):
        deadline = time.monotonic() + 5.0
        while True:
            with MatchingClient(port=router.port) as client:
                payload = client.health()
            nodes = payload["nodes"]
            # the health loop fills last_health on its first probe
            if all(n["health"] for n in nodes.values()):
                break
            assert time.monotonic() < deadline, nodes
            time.sleep(0.1)
        assert payload["router"] is True
        assert payload["replication"] == 2
        assert len(nodes) == 2
        for server in servers:
            entry = nodes[f"127.0.0.1:{server.port}"]
            assert entry["alive"] is True
            assert entry["health"]["status"] == "ok"

    def test_unknown_handle_is_typed_error(self, router):
        with MatchingClient(port=router.port) as client:
            with pytest.raises(RemoteError) as err:
                client.scan("0" * 16, b"xyz")
        assert err.value.code == "unknown-handle"

    def test_hello_accepts_compact_node_form(self, router, servers):
        # the protocol doc's {"node": "host:port"} shape and the
        # host/port field pair must both be admitted
        name = f"127.0.0.1:{servers[0].port}"
        with RawConn(router.port) as raw:
            reply = raw.request({"op": "hello", "node": name})
            assert reply["ok"] is True, reply
            assert reply["node"] == name
            bad = raw.request({"op": "hello", "node": "not-an-address"})
            assert bad["ok"] is False
            assert bad["code"] == "bad-request"

    def test_metrics_exposition(self, router):
        with MatchingClient(port=router.port) as client:
            client.ping()
            text = client.metrics()
        assert "repro_router_requests_total" in text


class TestServerHealthOp:
    def test_health_fields(self, servers):
        server = servers[0]
        with MatchingClient(port=server.port) as client:
            client.register(RULES)
            payload = client.health()
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0
        assert payload["rulesets"] >= 1
        assert isinstance(payload["ruleset_versions"], dict)
        assert payload["open_sessions"] == 0
        assert payload["version"] >= 2


class TestRouterQuotas:
    @pytest.fixture()
    def quota_router(self, servers):
        quotas = QuotaManager(
            None,
            per_tenant={
                "noisy": TenantQuota(
                    requests_per_s=0.5, max_open_sessions=1, window_s=2.0
                )
            },
        )
        with BackgroundRouter(
            ClusterRouter(
                [("127.0.0.1", s.port) for s in servers],
                replication=2,
                quotas=quotas,
                health_interval_s=5.0,
            )
        ) as bg:
            yield bg

    def test_over_quota_tenant_gets_typed_error(self, quota_router):
        with MatchingClient(port=quota_router.port, tenant="noisy") as client:
            handle = client.register(RULES)
            client.scan(handle, STREAM[:100])  # burst = 1 request
            with pytest.raises(RemoteError) as err:
                client.scan(handle, STREAM[:100])
        assert err.value.code == "over-quota"
        assert "retry in" in str(err.value)

    def test_error_frame_carries_retry_hint(self, quota_router):
        with MatchingClient(port=quota_router.port, tenant="noisy") as client:
            handle = client.register(RULES)
            client.scan(handle, b"a")
        with RawConn(quota_router.port) as raw:
            frame = raw.request(
                {"op": "scan", "handle": handle, "data": "", "tenant": "noisy"}
            )
        assert frame["ok"] is False
        assert frame["code"] == "over-quota"
        assert frame["resource"] == "requests"
        assert frame["retry_after_s"] > 0

    def test_session_cap_enforced_and_released(self, quota_router):
        with MatchingClient(port=quota_router.port, tenant="noisy") as client:
            handle = client.register(RULES)
            session = client.open_session(handle, "cap-1")
            with pytest.raises(RemoteError) as err:
                client.open_session(handle, "cap-2")
            assert err.value.code == "over-quota"
            session.close()
            client.open_session(handle, "cap-3").close()

    def test_in_quota_tenant_unaffected_by_noisy_neighbour(self, quota_router):
        with MatchingClient(port=quota_router.port, tenant="noisy") as noisy:
            handle = noisy.register(RULES)
            noisy.scan(handle, b"a")
            with pytest.raises(RemoteError):
                noisy.scan(handle, b"a")
        with MatchingClient(port=quota_router.port, tenant="polite") as polite:
            for _ in range(10):
                polite.scan(handle, STREAM[:200])
        with MatchingClient(port=quota_router.port) as client:
            snapshot = client.stats()["quotas"]
        assert snapshot["rejections"].get("noisy/requests", 0) >= 1
        assert "polite" not in str(snapshot["rejections"])


# ---------------------------------------------------------------------------
# checkpointed open/state: a stream moved across servers by hand
# ---------------------------------------------------------------------------


class TestCheckpointResume:
    def test_open_with_state_resumes_byte_identically(self, servers, offline):
        split = 313
        with MatchingClient(port=servers[0].port) as client:
            handle = client.register(RULES)
        with MatchingClient(port=servers[1].port) as client:
            client.register(RULES)
        with RawConn(servers[0].port) as a:
            opened = a.request(
                {
                    "op": "open",
                    "handle": handle,
                    "session": "mv",
                    "checkpoint": True,
                }
            )
            assert opened["ok"] and opened["position"] == 0
            first = a.request(
                {
                    "op": "feed",
                    "session": "mv",
                    "data": encode_data(STREAM[:split]),
                }
            )
            assert first["ok"]
            state = first["state"]
            assert isinstance(state, list) and state
            reports = list(first["reports"])
            a.request({"op": "close", "session": "mv"})
        with RawConn(servers[1].port) as b:
            resumed = b.request(
                {
                    "op": "open",
                    "handle": handle,
                    "session": "mv2",
                    "state": state,
                }
            )
            assert resumed["ok"]
            assert resumed["position"] == split
            rest = b.request(
                {
                    "op": "feed",
                    "session": "mv2",
                    "data": encode_data(STREAM[split:]),
                }
            )
            assert rest["ok"]
            reports.extend(rest["reports"])
            closed = b.request({"op": "close", "session": "mv2"})
        # feed positions are absolute stream offsets, but close counts
        # only the work done on *this* node — the router patches fleet
        # totals from its own bookkeeping after a failover
        assert closed["num_reports"] == len(rest["reports"])
        assert closed["cycles"] == len(STREAM) - split
        assert [tuple(r) for r in reports] == keys_of(offline.reports)

    def test_feed_without_checkpoint_carries_no_state(self, servers):
        with MatchingClient(port=servers[0].port) as client:
            handle = client.register(RULES)
        with RawConn(servers[0].port) as raw:
            raw.request({"op": "open", "handle": handle, "session": "plain"})
            fed = raw.request(
                {
                    "op": "feed",
                    "session": "plain",
                    "data": encode_data(b"abc"),
                }
            )
            assert fed["ok"]
            assert "state" not in fed  # checkpointing is strictly opt-in
            raw.request({"op": "close", "session": "plain"})

    def test_malformed_state_is_a_typed_error(self, servers):
        with MatchingClient(port=servers[0].port) as client:
            handle = client.register(RULES)
        with RawConn(servers[0].port) as raw:
            bad = raw.request(
                {
                    "op": "open",
                    "handle": handle,
                    "session": "bad-state",
                    "state": {"not": "a list"},
                }
            )
            assert bad["ok"] is False
            assert bad["code"] == "bad-request"


# ---------------------------------------------------------------------------
# hung nodes: per-request timeout feeds the failover path
# ---------------------------------------------------------------------------


class TestNodeChannelTimeout:
    def test_hung_node_surfaces_as_node_error(self):
        # a listener that accepts the TCP handshake (via its backlog)
        # but never answers a frame: without a timeout this round-trip
        # blocks forever and no failover can engage
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        async def main():
            channel = NodeChannel("127.0.0.1", port, timeout_s=0.2)
            start = time.monotonic()
            with pytest.raises(NodeError, match="did not answer"):
                await channel.request({"op": "ping"})
            assert time.monotonic() - start < 5.0
            assert not channel.connected  # closed, ready to reconnect

        try:
            asyncio.run(main())
        finally:
            listener.close()

    def test_per_request_override_beats_channel_default(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        async def main():
            channel = NodeChannel("127.0.0.1", port, timeout_s=60.0)
            with pytest.raises(NodeError, match="did not answer"):
                await channel.request({"op": "health"}, timeout_s=0.2)

        try:
            asyncio.run(main())
        finally:
            listener.close()


# ---------------------------------------------------------------------------
# replica consistency: updates survive a replica's death and rejoin
# ---------------------------------------------------------------------------


class TestUpdateReplayOnRecovery:
    def test_recovered_replica_converges_to_updated_ruleset(self, tmp_path):
        # a replica that is dead during an update must NOT rejoin with
        # the pre-update rules — the router replays the full register +
        # update sequence when the node returns
        config = ScanConfig(num_shards=1, artifact_store=str(tmp_path))
        survivor = BackgroundServer(config=config).start()
        victim = BackgroundServer(config=config).start()
        victim_port = victim.port
        revived = None
        with BackgroundRouter(
            ClusterRouter(
                [("127.0.0.1", survivor.port), ("127.0.0.1", victim_port)],
                replication=2,
                health_interval_s=0.2,
            )
        ) as bg:
            try:
                with MatchingClient(port=bg.port) as client:
                    handle = client.register(RULES)
                    victim.stop()
                    # wait for the health loop to mark the victim dead,
                    # so the update's fan-out deterministically misses it
                    deadline = time.monotonic() + 10.0
                    victim_name = f"127.0.0.1:{victim_port}"
                    while True:
                        nodes = client.health()["nodes"]
                        if not nodes[victim_name]["alive"]:
                            break
                        assert time.monotonic() < deadline, nodes
                        time.sleep(0.05)
                    client.update(handle, add={"rz": "zz+q"})
                    expected = keys_of(client.scan(handle, b"azzzqa").reports)
                    assert expected  # the update took on the survivor
                    # the node returns on the same address (fresh
                    # process: it lost everything it ever registered)
                    revived = BackgroundServer(
                        config=config, port=victim_port
                    ).start()
                    # the router re-registers AND replays the update;
                    # poll until the revived node answers from the
                    # updated rules, byte-identical to the survivor
                    deadline = time.monotonic() + 15.0
                    while True:
                        try:
                            with MatchingClient(port=victim_port) as direct:
                                got = keys_of(
                                    direct.scan(handle, b"azzzqa").reports
                                )
                        except RemoteError:
                            got = None  # not re-registered yet
                        if got == expected:
                            break
                        assert time.monotonic() < deadline, got
                        time.sleep(0.1)
            finally:
                survivor.stop()
                if revived is not None:
                    revived.stop()


class FlakyProxy:
    """TCP proxy that refuses the first N connections and/or forwards a
    request upstream but drops the response for selected ops (so the
    server *did* the work while the client saw a dead connection)."""

    def __init__(
        self,
        upstream_port,
        *,
        refuse_first=0,
        drop_response_ops=(),
        drop_once=False,
    ):
        self.upstream_port = upstream_port
        self.refuse_first = refuse_first
        self.drop_response_ops = set(drop_response_ops)
        self.drop_once = drop_once
        self.accepted = 0
        self.forwarded_ops = []
        self._lock = threading.Lock()
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self.port = self._sock.getsockname()[1]
        self._accept_thread = threading.Thread(target=self._serve, daemon=True)
        self._accept_thread.start()

    def _serve(self):
        while True:
            try:
                client, _ = self._sock.accept()
            except OSError:
                return
            with self._lock:
                self.accepted += 1
                refuse = self.accepted <= self.refuse_first
            if refuse:
                client.close()
                continue
            threading.Thread(
                target=self._relay, args=(client,), daemon=True
            ).start()

    def _relay(self, client):
        try:
            upstream = socket.create_connection(
                ("127.0.0.1", self.upstream_port)
            )
        except OSError:
            client.close()
            return
        try:
            cfile = client.makefile("rb")
            ufile = upstream.makefile("rb")
            while True:
                line = cfile.readline()
                if not line:
                    return
                op = json.loads(line).get("op")
                with self._lock:
                    self.forwarded_ops.append(op)
                    drop = op in self.drop_response_ops
                    if drop and self.drop_once:
                        self.drop_response_ops.discard(op)
                upstream.sendall(line)
                response = ufile.readline()
                if not response:
                    return
                if drop:
                    return  # server answered; the client never hears it
                client.sendall(response)
        finally:
            upstream.close()
            client.close()

    def count(self, op):
        with self._lock:
            return self.forwarded_ops.count(op)

    def close(self):
        self._sock.close()


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            attempts=5, backoff_s=0.1, max_backoff_s=0.3, jitter=0.0
        )
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=2.0)

    def test_retries_refused_connections(self, servers):
        proxy = FlakyProxy(servers[0].port, refuse_first=2)
        try:
            with MatchingClient(
                port=proxy.port,
                retry=RetryPolicy(attempts=3, backoff_s=0.01, jitter=0.0),
            ) as client:
                assert client.ping()["ok"] is True
            assert proxy.accepted == 3
        finally:
            proxy.close()

    def test_no_retry_without_policy(self, servers):
        # retry is opt-in: transient I/O surfaces raw (or as the typed
        # "closed" RemoteError when the server hangs up cleanly)
        proxy = FlakyProxy(servers[0].port, refuse_first=1)
        try:
            with pytest.raises((RemoteError, ConnectionError, OSError)):
                with MatchingClient(port=proxy.port) as client:
                    client.ping()
            assert proxy.accepted == 1  # exactly one attempt, no retry
        finally:
            proxy.close()

    def test_idempotent_op_retried_after_midstream_cut(self, servers):
        # the first stats frame reaches the server but its response is
        # dropped; stats is idempotent, so the client reconnects and
        # retries — the server sees the frame exactly twice
        proxy = FlakyProxy(
            servers[0].port, drop_response_ops={"stats"}, drop_once=True
        )
        try:
            with MatchingClient(
                port=proxy.port,
                retry=RetryPolicy(attempts=3, backoff_s=0.01, jitter=0.0),
            ) as client:
                payload = client.stats()
            assert payload["ok"] is True
            assert proxy.count("stats") == 2
        finally:
            proxy.close()

    def test_non_idempotent_update_is_never_retried(self):
        # isolated server: this test mutates the registered ruleset
        with BackgroundServer(config=ScanConfig(num_shards=1)) as server:
            proxy = FlakyProxy(server.port, drop_response_ops={"update"})
            try:
                with MatchingClient(
                    port=proxy.port,
                    retry=RetryPolicy(attempts=5, backoff_s=0.01, jitter=0.0),
                ) as client:
                    handle = client.register(RULES)
                    with pytest.raises(RemoteError) as err:
                        client.update(handle, add={"rX": "qq+z"})
                assert err.value.code == "closed"
                # the frame reached the server exactly once — retrying it
                # would have double-applied the delta
                assert proxy.count("update") == 1
                with MatchingClient(port=server.port) as direct:
                    assert direct.scan(handle, b"aqqqza").num_reports > 0
            finally:
                proxy.close()


# ---------------------------------------------------------------------------
# artifact store: remote fetch seam + cross-process pins and publishes
# ---------------------------------------------------------------------------


def _artifact_for(rules, name):
    automaton = compile_regex_set(rules, name=name)
    return CompiledArtifact.from_compiled(
        compile_ruleset(automaton, backend="auto")
    )


def _child_pressure(root, max_bytes, n, queue):
    """Flood a shared store from another process to force LRU eviction."""
    try:
        store = ArtifactStore(root, max_bytes=max_bytes)
        for i in range(n):
            store.put(_artifact_for({"p": f"flood{i}a+b"}, f"flood-{i}"))
        queue.put(("ok", store.pinned_keys()))
    except BaseException as exc:  # noqa: BLE001 — report, don't hang join
        queue.put(("error", repr(exc)))


def _child_hammer(root, key, blob, rounds, queue):
    """Concurrent put/get of one key: every get must be valid or a miss."""
    try:
        store = ArtifactStore(root)
        artifact = CompiledArtifact.from_bytes(blob)
        bad = 0
        for _ in range(rounds):
            store.put(artifact)
            loaded = store.get(key)
            if loaded is None or loaded.key != key:
                bad += 1
        queue.put(("ok", bad))
    except BaseException as exc:  # noqa: BLE001
        queue.put(("error", repr(exc)))


class TestStoreFetchSeam:
    def test_miss_fetches_validates_and_publishes(self, tmp_path):
        origin = ArtifactStore(tmp_path / "origin")
        artifact = _artifact_for(RULES, "fetch-me")
        origin.put(artifact)
        edge = ArtifactStore(
            tmp_path / "edge", fetch=remote_fetcher(tmp_path / "origin")
        )
        fetched = edge.get(artifact.key)
        assert fetched is not None and fetched.key == artifact.key
        assert edge.stats.fetched == 1
        assert edge.stats.hits == 0
        assert edge.contains(artifact.key)  # published locally
        assert edge.get(artifact.key) is not None
        assert edge.stats.hits == 1  # second read is a plain local hit

    def test_fetch_failure_is_a_miss(self, tmp_path):
        def broken(key):
            raise OSError("remote down")

        store = ArtifactStore(tmp_path, fetch=broken)
        assert store.get("0" * 16) is None
        assert store.stats.misses == 1

    def test_wrong_key_answer_is_rejected(self, tmp_path):
        imposter = _artifact_for({"z": "zz+"}, "imposter")
        store = ArtifactStore(tmp_path, fetch=lambda key: imposter.to_bytes())
        assert store.get("f" * 16) is None
        assert store.stats.invalid == 1
        assert not store.contains("f" * 16)  # never published

    def test_garbage_bytes_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path, fetch=lambda key: b"not-an-npz")
        assert store.get("a" * 16) is None
        assert store.stats.invalid == 1


class TestStoreCrossProcess:
    def test_pin_survives_eviction_pressure_from_another_process(
        self, tmp_path
    ):
        artifact = _artifact_for(RULES, "precious")
        size = len(artifact.to_bytes())
        store = ArtifactStore(tmp_path, max_bytes=size * 3)
        store.put(artifact)
        store.pin([artifact.key])
        try:
            ctx = multiprocessing.get_context("spawn")
            queue = ctx.Queue()
            child = ctx.Process(
                target=_child_pressure,
                args=(str(tmp_path), size * 3, 6, queue),
            )
            child.start()
            status, payload = queue.get(timeout=120)
            child.join(timeout=30)
            assert status == "ok", payload
            # the child honoured our pid-token pin while evicting
            assert artifact.key in payload
            assert store.contains(artifact.key)
            assert store.get(artifact.key).key == artifact.key
        finally:
            store.unpin([artifact.key])

    def test_dead_pid_tokens_are_swept(self, tmp_path):
        artifact = _artifact_for(RULES, "stale-pin")
        store = ArtifactStore(tmp_path, max_bytes=1)
        store.put(artifact)
        token_dir = tmp_path / ".pins" / artifact.key
        token_dir.mkdir(parents=True)
        bogus = 2**22 + os.getpid()  # beyond pid_max on default configs
        (token_dir / f"{bogus}.pin").touch()
        # a dead process's pin no longer protects the key
        assert store.pinned_keys() == set()
        other = _artifact_for({"q": "qq+"}, "evictor")
        store.put(other)  # budget of 1 byte: everything unpinned goes
        assert not store.contains(artifact.key)

    def test_pins_dir_invisible_to_cache_accounting(self, tmp_path):
        artifact = _artifact_for(RULES, "hidden")
        store = ArtifactStore(tmp_path)
        store.put(artifact)
        store.pin([artifact.key])
        try:
            assert store.keys() == [artifact.key]
            assert store.total_bytes() == len(artifact.to_bytes())
        finally:
            store.unpin([artifact.key])
        assert store.pinned_keys() == set()

    def test_concurrent_put_get_is_always_valid(self, tmp_path):
        artifact = _artifact_for(RULES, "hammered")
        blob = artifact.to_bytes()
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_child_hammer,
                args=(str(tmp_path), artifact.key, blob, 12, queue),
            )
            for _ in range(3)
        ]
        for w in workers:
            w.start()
        outcomes = [queue.get(timeout=180) for _ in workers]
        for w in workers:
            w.join(timeout=30)
        for status, payload in outcomes:
            assert status == "ok", payload
            assert payload == 0  # zero invalid/missing reads


# ---------------------------------------------------------------------------
# subprocess fleet: single-compile registration and SIGKILL failover
# ---------------------------------------------------------------------------


def _compiled_counts(node):
    """Parse repro_incremental_components_total{outcome=...} off a node."""
    import re

    with MatchingClient(host=node.host, port=node.port) as client:
        text = client.metrics()
    return {
        outcome: int(value)
        for outcome, value in re.findall(
            r'repro_incremental_components_total\{outcome="(\w+)"\} (\d+)',
            text,
        )
    }


class TestFleetProcesses:
    def test_fleet_registration_compiles_exactly_once(
        self, tmp_path, offline
    ):
        with LocalFleet(
            num_nodes=2, artifact_cache=tmp_path, health_interval_s=0.5
        ) as fleet:
            with MatchingClient(port=fleet.port) as client:
                handle = client.register(RULES)
                routed = client.scan(handle, STREAM)
            counts = {n.name: _compiled_counts(n) for n in fleet.nodes}
            compiled_on = [
                name
                for name, c in counts.items()
                if c.get("compiled", 0) > 0
            ]
            assert len(compiled_on) == 1, counts  # one compile fleet-wide
            (replica,) = [n for n in counts if n not in compiled_on]
            assert counts[replica].get("disk", 0) > 0  # artifact load
            # and the routed answer is the offline answer
            assert keys_of(routed.reports) == keys_of(offline.reports)
            with MatchingClient(
                host=fleet.nodes[0].host, port=fleet.nodes[0].port
            ) as direct:
                assert keys_of(direct.scan(handle, STREAM).reports) == keys_of(
                    routed.reports
                )

    def test_sigkill_failover_resumes_all_sessions_byte_identically(
        self, tmp_path, offline
    ):
        chunks = [STREAM[i : i + 157] for i in range(0, len(STREAM), 157)]
        assert len(chunks) >= 4
        with LocalFleet(
            num_nodes=2, artifact_cache=tmp_path, health_interval_s=0.5
        ) as fleet:
            with MatchingClient(port=fleet.port) as client:
                handle = client.register(RULES)
                names = [f"chaos-{i}" for i in range(8)]
                sessions = {
                    name: client.open_session(handle, name) for name in names
                }
                collected = {name: [] for name in names}
                # every session makes progress before the kill
                for name in names:
                    collected[name].extend(sessions[name].feed(chunks[0]))
                    collected[name].extend(sessions[name].feed(chunks[1]))
                fleet.nodes[0].kill()  # SIGKILL, mid-stream
                for chunk in chunks[2:]:
                    for name in names:
                        collected[name].extend(sessions[name].feed(chunk))
                summaries = {name: sessions[name].close() for name in names}
                stats = client.stats()
            expected = keys_of(offline.reports)
            for name in names:
                assert keys_of(collected[name]) == expected, name
                assert summaries[name]["num_reports"] == offline.num_reports
                assert summaries[name]["cycles"] == len(STREAM)
            # round-robin put half the sessions on the killed node
            assert stats["failovers"] >= 1
            assert any(
                not entry["alive"] for entry in stats["nodes"].values()
            )

    def test_serve_cluster_api_smoke(self, tmp_path):
        from repro.api import Ruleset

        handle = Ruleset.from_regexes(RULES).compile(
            scan=ScanConfig(num_shards=1)
        )
        fleet = handle.serve_cluster(
            ClusterConfig(num_nodes=2, health_interval_s=0.5),
            artifact_cache=tmp_path,
        )
        try:
            with MatchingClient(port=fleet.port) as client:
                remote = client.register(RULES)  # already placed: cache hit
                result = client.scan(remote, STREAM)
            local = handle.scan(STREAM)
            assert keys_of(result.reports) == keys_of(local.reports)
        finally:
            fleet.stop()
