"""Tests that the synthetic benchmarks track their published statistics."""

import pytest

from repro.automata.analysis import automaton_stats, connected_components
from repro.core.encoding.selection import class_statistics, select_encoding
from repro.errors import ReproError
from repro.workloads import (
    BENCHMARK_NAMES,
    PROFILES,
    benchmark_input,
    get_benchmark,
    profile_of,
)

SMALL_SCALE = 1.0 / 32.0  # keep the full-suite tests quick


@pytest.fixture(scope="module")
def benchmarks():
    return {name: get_benchmark(name, scale=SMALL_SCALE) for name in BENCHMARK_NAMES}


class TestRegistry:
    def test_twenty_one_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 21

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown benchmark"):
            profile_of("NotABenchmark")

    def test_caching_returns_same_instance(self):
        a = get_benchmark("Brill", scale=SMALL_SCALE)
        b = get_benchmark("Brill", scale=SMALL_SCALE)
        assert a is b

    def test_determinism_across_scales(self):
        a = get_benchmark("TCP", scale=SMALL_SCALE)
        assert a.automaton.name == "TCP"
        assert len(a.automaton) > 0


class TestStatisticsMatchPaper:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_valid_automaton(self, benchmarks, name):
        benchmarks[name].automaton.validate()

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_state_count_near_target(self, benchmarks, name):
        automaton = benchmarks[name].automaton
        target = PROFILES[name].target_states(SMALL_SCALE)
        assert target <= len(automaton) <= target * 1.35

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_raw_class_size_tracks_paper(self, benchmarks, name):
        stats = automaton_stats(benchmarks[name].automaton)
        paper = PROFILES[name].paper.class_size_raw
        measured = stats.avg_symbol_class_size
        # generous tolerance: random draws at 1/32 scale are noisy for
        # the benchmarks whose wide classes are rare (Dotstar03/09)
        assert measured == pytest.approx(paper, rel=0.45, abs=2.0), (
            f"{name}: raw class size {measured:.2f} vs paper {paper}"
        )

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_class_size_with_no_tracks_paper(self, benchmarks, name):
        automaton = benchmarks[name].automaton
        classes = [s.symbol_class for s in automaton.states]
        _, measured = class_statistics(classes)
        paper = PROFILES[name].paper.class_size_no
        assert measured == pytest.approx(paper, rel=0.8, abs=1.6), (
            f"{name}: NO class size {measured:.2f} vs paper {paper}"
        )

    @pytest.mark.parametrize(
        "name", ["Ranges1", "Ranges05", "ExactMath", "BlockRings"]
    )
    def test_restricted_alphabets(self, benchmarks, name):
        stats = automaton_stats(benchmarks[name].automaton)
        assert stats.alphabet_size <= PROFILES[name].paper.alphabet

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("Brill", "multi-zeros"),
            ("BlockRings", "one-zero"),
            ("TCP", "two-zeros-prefix"),
            ("SPM", "two-zeros-prefix"),
            ("RandomForest", "one-zero-prefix"),
            ("EntityResolution", "two-zeros-prefix"),
        ],
    )
    def test_selected_scheme(self, benchmarks, name, expected):
        choice = select_encoding(benchmarks[name].automaton)
        assert choice.scheme == expected

    @pytest.mark.parametrize(
        "name,paper_length",
        [("Brill", 11), ("TCP", 16), ("BlockRings", 2), ("RandomForest", 32)],
    )
    def test_code_length_matches_paper(self, benchmarks, name, paper_length):
        choice = select_encoding(benchmarks[name].automaton)
        assert choice.code_length == paper_length


class TestStructure:
    def test_blockrings_are_rings(self, benchmarks):
        automaton = benchmarks["BlockRings"].automaton
        components = connected_components(automaton)
        ring_len = PROFILES["BlockRings"].params["ring_len"]
        assert all(len(c) == ring_len for c in components)

    def test_dense_benchmarks_have_large_band(self, benchmarks):
        from repro.automata.analysis import bandwidth_under_order, bfs_order

        for name in ("RandomForest", "EntityResolution"):
            automaton = benchmarks[name].automaton
            component = connected_components(automaton)[0]
            order = bfs_order(automaton, component)
            assert bandwidth_under_order(automaton, order) > 43, name

    def test_string_benchmarks_have_small_band(self, benchmarks):
        from repro.automata.analysis import bandwidth_under_order, bfs_order

        automaton = benchmarks["Brill"].automaton
        component = connected_components(automaton)[0]
        order = bfs_order(automaton, component)
        assert bandwidth_under_order(automaton, order) <= 43

    def test_big_component_benchmarks(self, benchmarks):
        # TCP ships one >256-state component (drives global switches)
        components = connected_components(benchmarks["TCP"].automaton)
        assert len(components[0]) > 256

    def test_hamming_reports_multiple_distances(self, benchmarks):
        codes = {
            s.report_code
            for s in benchmarks["Hamming"].automaton.reporting_states()
        }
        assert {"d0", "d1", "d2", "d3"} <= codes


class TestInputs:
    def test_deterministic(self, benchmarks):
        automaton = benchmarks["Brill"].automaton
        assert benchmark_input(automaton, 500, seed=1) == benchmark_input(
            automaton, 500, seed=1
        )

    def test_seed_changes_stream(self, benchmarks):
        automaton = benchmarks["Brill"].automaton
        assert benchmark_input(automaton, 500, seed=1) != benchmark_input(
            automaton, 500, seed=2
        )

    def test_length_exact(self, benchmarks):
        automaton = benchmarks["TCP"].automaton
        assert len(benchmark_input(automaton, 1234)) == 1234

    def test_symbols_within_alphabet_mostly(self, benchmarks):
        automaton = benchmarks["Ranges1"].automaton
        alphabet = set(automaton.alphabet())
        stream = benchmark_input(automaton, 2000)
        inside = sum(1 for b in stream if b in alphabet)
        assert inside == len(stream)

    def test_injection_produces_reports(self, benchmarks):
        from repro.sim.engine import Engine

        automaton = benchmarks["Brill"].automaton
        stream = benchmark_input(automaton, 4000, injection_rate=0.2)
        result = Engine(automaton).run(stream)
        assert result.num_reports > 0

    def test_zero_injection_low_activity(self, benchmarks):
        from repro.sim.engine import Engine

        automaton = benchmarks["Brill"].automaton
        quiet = benchmark_input(automaton, 3000, injection_rate=0.0)
        busy = benchmark_input(automaton, 3000, injection_rate=0.3)
        quiet_active = Engine(automaton).run(quiet).stats.avg_active_states()
        busy_active = Engine(automaton).run(busy).stats.avg_active_states()
        assert quiet_active < busy_active

    def test_bad_args_rejected(self, benchmarks):
        automaton = benchmarks["Brill"].automaton
        with pytest.raises(ReproError):
            benchmark_input(automaton, 0)
        with pytest.raises(ReproError):
            benchmark_input(automaton, 10, injection_rate=1.5)
