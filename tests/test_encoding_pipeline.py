"""Tests for clustering, compression, negation and encoding selection.

The central invariant: for every encoding and every symbol class, the
compressed entry set matches *exactly* the class — checked directly and
by hypothesis over random classes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import glushkov_nfa
from repro.automata.symbols import SymbolClass
from repro.core.encoding.clustering import (
    cluster_symbols,
    cooccurrence_matrix,
    identity_clusters,
)
from repro.core.encoding.compression import (
    compress_class,
    memory_bits,
    verify_exact,
)
from repro.core.encoding.encoder import InputEncoder
from repro.core.encoding.multi_zeros import MultiZerosEncoding
from repro.core.encoding.negation import (
    effective_class_size,
    encode_state_class,
)
from repro.core.encoding.one_zero import OneZeroEncoding
from repro.core.encoding.prefix import build_prefix_encoding
from repro.core.encoding.selection import (
    fixed_one_zero_prefix_encoding,
    select_encoding,
)
from repro.errors import EncodingError


def full_alphabet():
    return SymbolClass.universe()


def prefix16(zeros=2):
    # 16-bit prefix encoding over the full 256 alphabet: ls=6, lp=10 (2 zeros)
    symbols = list(range(256))
    if zeros == 2:
        clusters = [symbols[i : i + 6] for i in range(0, 256, 6)]
        return build_prefix_encoding(clusters, 6, 10, 2)
    clusters = [symbols[i : i + 16] for i in range(0, 256, 16)]
    return build_prefix_encoding(clusters, 16, 16, 1)


class TestCooccurrence:
    def test_diagonal_is_frequency(self):
        classes = [SymbolClass.parse("[ab]"), SymbolClass.parse("[a]")]
        matrix = cooccurrence_matrix(classes)
        assert matrix[ord("a"), ord("a")] == 2
        assert matrix[ord("b"), ord("b")] == 1

    def test_offdiagonal_counts_pairs(self):
        classes = [SymbolClass.parse("[ab]")] * 3
        matrix = cooccurrence_matrix(classes)
        assert matrix[ord("a"), ord("b")] == 3

    def test_symmetry(self):
        classes = [SymbolClass.parse("[abc]"), SymbolClass.parse("[bc]")]
        matrix = cooccurrence_matrix(classes)
        assert (matrix == matrix.T).all()


class TestClustering:
    def test_partitions_alphabet(self):
        alphabet = SymbolClass.from_symbols(range(20))
        clusters = cluster_symbols([], alphabet, 4, 6)
        flat = sorted(s for c in clusters for s in c)
        assert flat == list(range(20))

    def test_respects_capacity(self):
        alphabet = SymbolClass.from_symbols(range(20))
        clusters = cluster_symbols([], alphabet, 4, 6)
        assert all(len(c) <= 4 for c in clusters)

    def test_cooccurring_symbols_colocated(self):
        # 'a' and 'b' always appear together: they must share a cluster
        classes = [SymbolClass.parse("[ab]")] * 10 + [
            SymbolClass.from_symbols([s]) for s in range(10)
        ]
        alphabet = SymbolClass.from_symbols(list(range(10)) + [97, 98])
        clusters = cluster_symbols(classes, alphabet, 3, 5)
        cluster_of = {s: i for i, c in enumerate(clusters) for s in c}
        assert cluster_of[97] == cluster_of[98]

    def test_overflow_rejected(self):
        alphabet = SymbolClass.from_symbols(range(20))
        with pytest.raises(EncodingError):
            cluster_symbols([], alphabet, 4, 4)

    def test_identity_clusters_ordered(self):
        clusters = identity_clusters(SymbolClass.from_symbols(range(10)), 4)
        assert clusters == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_deterministic(self):
        classes = [SymbolClass.parse("[a-f]")] * 3
        alphabet = SymbolClass.from_symbols(range(97, 110))
        a = cluster_symbols(classes, alphabet, 4, 5)
        b = cluster_symbols(classes, alphabet, 4, 5)
        assert a == b


class TestCompression:
    def test_singleton_class_one_entry(self):
        enc = prefix16()
        entries = compress_class(enc, SymbolClass.from_symbols([65]))
        assert len(entries) == 1
        assert verify_exact(enc, SymbolClass.from_symbols([65]), entries)

    def test_same_cluster_compresses_to_one(self):
        enc = prefix16()
        cls = SymbolClass.from_symbols([0, 1, 2])  # identity clusters: same
        entries = compress_class(enc, cls)
        assert len(entries) == 1
        assert verify_exact(enc, cls, entries)

    def test_cross_cluster_needs_more_entries(self):
        enc = prefix16()
        cls = SymbolClass.from_symbols([0, 100])
        entries = compress_class(enc, cls)
        assert len(entries) == 2
        assert verify_exact(enc, cls, entries)

    def test_one_zero_always_one_entry(self):
        enc = OneZeroEncoding(SymbolClass.from_symbols(range(16)))
        cls = SymbolClass.from_symbols([0, 3, 7, 11, 15])
        entries = compress_class(enc, cls)
        assert len(entries) == 1
        assert verify_exact(enc, cls, entries)

    def test_one_zero_full_alphabet_never_stores_zero(self):
        enc = OneZeroEncoding(SymbolClass.from_symbols(range(8)))
        cls = SymbolClass.from_symbols(range(8))
        entries = compress_class(enc, cls)
        assert all(e != 0 for e in entries)
        assert verify_exact(enc, cls, entries)

    def test_one_zero_prefix_merges_across_clusters(self):
        enc = prefix16(zeros=1)
        # same slot (0 and 16 are slot 0 of clusters 0 and 1)
        cls = SymbolClass.from_symbols([0, 16])
        entries = compress_class(enc, cls)
        assert len(entries) == 1
        assert verify_exact(enc, cls, entries)

    def test_multi_zeros_rarely_compresses_but_stays_exact(self):
        enc = MultiZerosEncoding(full_alphabet())
        cls = SymbolClass.from_symbols([1, 2, 3])
        entries = compress_class(enc, cls)
        assert verify_exact(enc, cls, entries)

    def test_unencodable_class_rejected(self):
        enc = OneZeroEncoding(SymbolClass.from_symbols(range(4)))
        with pytest.raises(EncodingError):
            compress_class(enc, SymbolClass.from_symbols([9]))

    def test_empty_class_rejected(self):
        with pytest.raises(EncodingError):
            compress_class(prefix16(), SymbolClass.empty())

    def test_memory_bits(self):
        enc = prefix16()
        entries = compress_class(enc, SymbolClass.from_symbols([0, 100]))
        assert memory_bits(enc, entries) == 2 * 16

    @settings(max_examples=40, deadline=None)
    @given(st.frozensets(st.integers(0, 255), min_size=1, max_size=24))
    def test_exactness_property_two_zeros(self, symbols):
        enc = prefix16(zeros=2)
        cls = SymbolClass.from_symbols(symbols)
        assert verify_exact(enc, cls, compress_class(enc, cls))

    @settings(max_examples=40, deadline=None)
    @given(st.frozensets(st.integers(0, 255), min_size=1, max_size=24))
    def test_exactness_property_one_zero_prefix(self, symbols):
        enc = prefix16(zeros=1)
        cls = SymbolClass.from_symbols(symbols)
        assert verify_exact(enc, cls, compress_class(enc, cls))

    @settings(max_examples=20, deadline=None)
    @given(st.frozensets(st.integers(0, 255), min_size=1, max_size=10))
    def test_exactness_property_multi_zeros(self, symbols):
        enc = MultiZerosEncoding(full_alphabet())
        cls = SymbolClass.from_symbols(symbols)
        assert verify_exact(enc, cls, compress_class(enc, cls))


class TestNegation:
    def test_effective_class_size(self):
        alphabet = full_alphabet()
        assert effective_class_size(SymbolClass.parse("[^a]"), alphabet) == 1
        assert effective_class_size(SymbolClass.parse("[ab]"), alphabet) == 2
        assert effective_class_size(alphabet, alphabet) == 256

    def test_negated_class_uses_one_inverted_entry(self):
        enc = prefix16()
        state = encode_state_class(enc, SymbolClass.parse("[^a]"))
        assert state.negated
        assert state.num_entries == 1

    def test_small_class_not_negated(self):
        enc = prefix16()
        state = encode_state_class(enc, SymbolClass.parse("[ab]"))
        assert not state.negated

    def test_negation_can_be_disabled(self):
        enc = prefix16()
        state = encode_state_class(
            enc, SymbolClass.parse("[^a]"), allow_negation=False
        )
        assert not state.negated
        assert state.num_entries > 1

    def test_negated_complement_spanning_clusters_falls_back(self):
        enc = prefix16()
        # complement {0, 100} spans clusters -> 2 entries -> no NO
        cls = full_alphabet() - SymbolClass.from_symbols([0, 100])
        state = encode_state_class(enc, cls)
        assert not state.negated


class TestSelection:
    def test_small_alphabet_one_zero(self):
        # BlockRings: A=2 -> one-zero, L=2
        classes = [SymbolClass.from_symbols([0]), SymbolClass.from_symbols([1])]
        choice = select_encoding(classes)
        assert choice.scheme == "one-zero"
        assert choice.code_length == 2

    def test_singleton_classes_multi_zeros(self):
        # Brill-like: A=256, S=1 -> multi-zeros, L=11
        classes = [SymbolClass.from_symbols([s]) for s in range(256)]
        choice = select_encoding(classes)
        assert choice.scheme == "multi-zeros"
        assert choice.code_length == 11

    def test_negated_classes_count_as_singletons(self):
        # TCP-like [^x] classes: NO size 1 each -> multi-zeros
        classes = [SymbolClass.from_symbols([s]).negate() for s in range(256)]
        choice = select_encoding(classes)
        assert choice.scheme == "multi-zeros"

    def test_moderate_classes_two_zeros_16(self):
        # Snort-like: A=256, small classes > 1 -> two-zeros-prefix, L=16
        classes = [SymbolClass.from_symbols([s]) for s in range(256)]
        classes += [SymbolClass.from_symbols([10, 11, 12])] * 40
        choice = select_encoding(classes)
        assert choice.scheme == "two-zeros-prefix"
        assert choice.code_length == 16

    def test_huge_classes_one_zero_prefix_32(self):
        # RandomForest-like: S >> sqrt(A) -> one-zero-prefix, L=32
        import random

        rng = random.Random(7)
        classes = [
            SymbolClass.from_symbols(rng.sample(range(256), 120))
            for _ in range(50)
        ]
        choice = select_encoding(classes)
        assert choice.scheme == "one-zero-prefix"
        assert choice.code_length == 32

    def test_restricted_alphabet_shorter_code(self):
        # Ranges1-like: A=115, small classes -> 13-bit two-zeros
        classes = [SymbolClass.from_symbols([s]) for s in range(115)]
        classes += [SymbolClass.from_symbols([3, 4])] * 30
        choice = select_encoding(classes)
        assert choice.scheme == "two-zeros-prefix"
        assert choice.code_length == 13

    def test_selected_encoding_is_usable(self):
        nfa = glushkov_nfa("(a|b)e*cd+")
        choice = select_encoding(nfa)
        choice.encoding.validate()
        for ste in nfa.states:
            entries = compress_class(choice.encoding, ste.symbol_class)
            assert verify_exact(choice.encoding, ste.symbol_class, entries)

    def test_fixed_32bit_baseline(self):
        classes = [SymbolClass.from_symbols([s]) for s in range(256)]
        choice = fixed_one_zero_prefix_encoding(classes)
        assert choice.code_length == 32
        assert choice.scheme.startswith("fixed-")

    def test_empty_rejected(self):
        with pytest.raises(EncodingError):
            select_encoding([])


class TestInputEncoder:
    def test_roundtrip_alphabet(self):
        enc = prefix16()
        encoder = InputEncoder(enc)
        for symbol in [0, 65, 255]:
            code, valid = encoder.encode(symbol)
            assert valid
            assert code == enc.symbol_code(symbol)

    def test_out_of_alphabet_invalid(self):
        enc = OneZeroEncoding(SymbolClass.from_symbols(range(4)))
        encoder = InputEncoder(enc)
        code, valid = encoder.encode(200)
        assert code == 0 and not valid

    def test_stream_encoding(self):
        enc = prefix16()
        encoder = InputEncoder(enc)
        codes, valid = encoder.encode_stream(b"AB")
        assert list(valid) == [True, True]
        assert int(codes[0]) == enc.symbol_code(ord("A"))

    def test_code_too_long_rejected(self):
        symbols = list(range(256))
        clusters = [symbols[i : i + 8] for i in range(0, 256, 8)]
        enc = build_prefix_encoding(clusters, 8, 32, 1)  # L=40 > 32
        with pytest.raises(EncodingError):
            InputEncoder(enc)

    def test_utilized_bits(self):
        assert InputEncoder(prefix16()).utilized_bits == 16
