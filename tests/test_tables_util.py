"""Tests for the table renderer."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159265]])
        assert "3.142" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
