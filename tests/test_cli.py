"""Tests for the command-line interface."""

import pytest

from repro.__main__ import load_automaton, main
from repro.automata import dumps_anml, dumps_mnrl, glushkov_nfa
from repro.errors import ReproError


@pytest.fixture()
def anml_file(tmp_path):
    path = tmp_path / "rules.anml"
    path.write_text(dumps_anml(glushkov_nfa("(a|b)e*cd+", report_code="m")))
    return path


@pytest.fixture()
def regex_file(tmp_path):
    path = tmp_path / "rules.regex"
    path.write_text("# comment\nabc\nx+y\n\n")
    return path


@pytest.fixture()
def input_file(tmp_path):
    path = tmp_path / "input.bin"
    path.write_bytes(b"aecdabcxxy" * 40)
    return path


class TestLoaders:
    def test_load_anml(self, anml_file):
        assert len(load_automaton(str(anml_file))) == 5

    def test_load_mnrl(self, tmp_path):
        path = tmp_path / "rules.mnrl"
        path.write_text(dumps_mnrl(glushkov_nfa("abc")))
        assert len(load_automaton(str(path))) == 3

    def test_load_regex_list(self, regex_file):
        nfa = load_automaton(str(regex_file))
        assert len(nfa) == 5  # abc (3) + x+y (2)

    def test_missing_file(self):
        with pytest.raises(ReproError, match="no such file"):
            load_automaton("/nonexistent.anml")

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "rules.yaml"
        path.write_text("x")
        with pytest.raises(ReproError, match="unrecognized"):
            load_automaton(str(path))


class TestCommands:
    def test_compile(self, anml_file, capsys):
        assert main(["compile", str(anml_file)]) == 0
        out = capsys.readouterr().out
        assert "cam_entries" in out

    def test_compile_with_optimize(self, regex_file, capsys):
        assert main(["compile", str(regex_file), "--optimize"]) == 0
        assert "optimized:" in capsys.readouterr().out

    def test_compile_timings(self, anml_file, capsys):
        assert main(["compile", str(anml_file), "--timings"]) == 0
        out = capsys.readouterr().out
        for name in ("parse", "encode", "map", "kernel", "total"):
            assert name in out

    def test_compile_out_and_inspect(self, regex_file, tmp_path, capsys):
        artifact = tmp_path / "rules.npz"
        assert main(["compile", str(regex_file), "--out", str(artifact)]) == 0
        assert artifact.exists()
        assert "artifact:" in capsys.readouterr().out
        assert main(["inspect", str(artifact), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "ruleset_fingerprint" in out
        assert "content verified" in out

    def test_inspect_rejects_non_artifact(self, tmp_path, capsys):
        path = tmp_path / "bogus.npz"
        path.write_bytes(b"not an npz")
        assert main(["inspect", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_compile_stride2(self, regex_file, capsys):
        assert main(["compile", str(regex_file), "--stride", "2"]) == 0
        assert "2-strided" in capsys.readouterr().out

    def test_scan_artifact_cache_warms_across_invocations(
        self, anml_file, input_file, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        args = [
            "scan",
            str(anml_file),
            str(input_file),
            "--artifact-cache",
            str(cache),
            "--max-reports",
            "5",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert any(cache.glob("*.npz")), "scan should populate the cache"
        assert main(args) == 0
        second = capsys.readouterr().out
        cold = [l for l in first.splitlines() if l.startswith("cycle=")]
        warm = [l for l in second.splitlines() if l.startswith("cycle=")]
        assert cold == warm

    def test_run(self, anml_file, input_file, capsys):
        assert main(["run", str(anml_file), str(input_file)]) == 0
        out = capsys.readouterr().out
        assert "reports over" in out
        assert "code=m" in out

    def test_run_with_limit(self, anml_file, input_file, capsys):
        assert main(["run", str(anml_file), str(input_file), "--limit", "4"]) == 0
        assert "4 cycles" in capsys.readouterr().out

    def test_scan(self, anml_file, input_file, capsys):
        assert (
            main(
                [
                    "scan",
                    str(anml_file),
                    str(input_file),
                    "--chunk-size",
                    "64",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "MB/s" in out
        assert "code=m" in out

    def test_scan_ledger_and_trace(self, anml_file, input_file, capsys):
        assert (
            main(
                [
                    "scan",
                    str(anml_file),
                    str(input_file),
                    "--ledger",
                    "--ledger-design",
                    "CAMA-T",
                    "--trace",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ledger design=CAMA-T" in out
        assert "pJ/cycle" in out and "occupancy" in out
        assert "trace " in out
        assert "- service.scan" in out
        assert "- ledger.probe" in out

    def test_scan_matches_run_reports(self, anml_file, input_file, capsys):
        main(["run", str(anml_file), str(input_file), "--max-reports", "10"])
        run_out = capsys.readouterr().out.splitlines()
        main(
            [
                "scan",
                str(anml_file),
                str(input_file),
                "--chunk-size",
                "7",
                "--max-reports",
                "10",
            ]
        )
        scan_out = capsys.readouterr().out.splitlines()
        assert run_out[:10] == scan_out[:10]

    @pytest.mark.parametrize("backend", ["sparse", "bitparallel", "auto"])
    def test_run_backend_flag(self, anml_file, input_file, capsys, backend):
        assert (
            main(
                ["run", str(anml_file), str(input_file), "--backend", backend]
            )
            == 0
        )
        assert "backend " in capsys.readouterr().out

    def test_backend_choice_identical_reports(self, anml_file, input_file, capsys):
        outputs = []
        for backend in ("sparse", "bitparallel"):
            main(
                [
                    "scan",
                    str(anml_file),
                    str(input_file),
                    "--backend",
                    backend,
                    "--max-reports",
                    "15",
                ]
            )
            lines = capsys.readouterr().out.splitlines()
            outputs.append([l for l in lines if not l.startswith("#")])
            assert f"backend {backend}" in lines[-1]
        assert outputs[0] == outputs[1]

    def test_scan_max_kept_reports_controls_recording(
        self, anml_file, input_file, capsys
    ):
        # recording cap comes from --max-kept-reports, not --max-reports
        assert (
            main(
                [
                    "scan",
                    str(anml_file),
                    str(input_file),
                    "--max-kept-reports",
                    "5",
                    "--max-reports",
                    "3",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert len([l for l in captured.out.splitlines() if l.startswith("cycle=")]) == 3
        assert "kept-reports cap (5)" in captured.err

    def test_scan_strict_reports_errors_on_truncation(
        self, anml_file, input_file, capsys
    ):
        code = main(
            [
                "scan",
                str(anml_file),
                str(input_file),
                "--max-kept-reports",
                "2",
                "--strict-reports",
            ]
        )
        assert code == 1
        assert "kept-reports cap" in capsys.readouterr().err

    def test_run_strict_reports_errors_on_truncation(
        self, anml_file, input_file, capsys
    ):
        code = main(
            [
                "run",
                str(anml_file),
                str(input_file),
                "--max-kept-reports",
                "1",
                "--strict-reports",
            ]
        )
        assert code == 1
        assert "kept-reports cap" in capsys.readouterr().err

    def test_evaluate(self, anml_file, input_file, capsys):
        assert main(["evaluate", str(anml_file), str(input_file)]) == 0
        out = capsys.readouterr().out
        for design in ("CAMA-E", "CAMA-T", "CA", "eAP"):
            assert design in out

    def test_error_path_returns_nonzero(self, capsys):
        assert main(["compile", "/nonexistent.anml"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_experiments_subset(self, tmp_path, capsys):
        assert (
            main(
                [
                    "experiments",
                    "--only",
                    "table4",
                    "--out",
                    str(tmp_path / "results"),
                ]
            )
            == 0
        )
        assert (tmp_path / "results" / "table4.csv").exists()
