"""Tests for the command-line interface."""

import pytest

from repro.__main__ import load_automaton, main
from repro.automata import dumps_anml, dumps_mnrl, glushkov_nfa
from repro.errors import ReproError


@pytest.fixture()
def anml_file(tmp_path):
    path = tmp_path / "rules.anml"
    path.write_text(dumps_anml(glushkov_nfa("(a|b)e*cd+", report_code="m")))
    return path


@pytest.fixture()
def regex_file(tmp_path):
    path = tmp_path / "rules.regex"
    path.write_text("# comment\nabc\nx+y\n\n")
    return path


@pytest.fixture()
def input_file(tmp_path):
    path = tmp_path / "input.bin"
    path.write_bytes(b"aecdabcxxy" * 40)
    return path


class TestLoaders:
    def test_load_anml(self, anml_file):
        assert len(load_automaton(str(anml_file))) == 5

    def test_load_mnrl(self, tmp_path):
        path = tmp_path / "rules.mnrl"
        path.write_text(dumps_mnrl(glushkov_nfa("abc")))
        assert len(load_automaton(str(path))) == 3

    def test_load_regex_list(self, regex_file):
        nfa = load_automaton(str(regex_file))
        assert len(nfa) == 5  # abc (3) + x+y (2)

    def test_missing_file(self):
        with pytest.raises(ReproError, match="no such file"):
            load_automaton("/nonexistent.anml")

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "rules.yaml"
        path.write_text("x")
        with pytest.raises(ReproError, match="unrecognized"):
            load_automaton(str(path))


class TestCommands:
    def test_compile(self, anml_file, capsys):
        assert main(["compile", str(anml_file)]) == 0
        out = capsys.readouterr().out
        assert "cam_entries" in out

    def test_compile_with_optimize(self, regex_file, capsys):
        assert main(["compile", str(regex_file), "--optimize"]) == 0
        assert "optimized:" in capsys.readouterr().out

    def test_run(self, anml_file, input_file, capsys):
        assert main(["run", str(anml_file), str(input_file)]) == 0
        out = capsys.readouterr().out
        assert "reports over" in out
        assert "code=m" in out

    def test_run_with_limit(self, anml_file, input_file, capsys):
        assert main(["run", str(anml_file), str(input_file), "--limit", "4"]) == 0
        assert "4 cycles" in capsys.readouterr().out

    def test_scan(self, anml_file, input_file, capsys):
        assert (
            main(
                [
                    "scan",
                    str(anml_file),
                    str(input_file),
                    "--chunk-size",
                    "64",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "MB/s" in out
        assert "code=m" in out

    def test_scan_matches_run_reports(self, anml_file, input_file, capsys):
        main(["run", str(anml_file), str(input_file), "--max-reports", "10"])
        run_out = capsys.readouterr().out.splitlines()
        main(
            [
                "scan",
                str(anml_file),
                str(input_file),
                "--chunk-size",
                "7",
                "--max-reports",
                "10",
            ]
        )
        scan_out = capsys.readouterr().out.splitlines()
        assert run_out[:10] == scan_out[:10]

    def test_evaluate(self, anml_file, input_file, capsys):
        assert main(["evaluate", str(anml_file), str(input_file)]) == 0
        out = capsys.readouterr().out
        for design in ("CAMA-E", "CAMA-T", "CA", "eAP"):
            assert design in out

    def test_error_path_returns_nonzero(self, capsys):
        assert main(["compile", "/nonexistent.anml"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_experiments_subset(self, tmp_path, capsys):
        assert (
            main(
                [
                    "experiments",
                    "--only",
                    "table4",
                    "--out",
                    str(tmp_path / "results"),
                ]
            )
            == 0
        )
        assert (tmp_path / "results" / "table4.csv").exists()
