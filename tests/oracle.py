"""A deliberately naive NFA oracle — the differential-testing anchor.

Every production kernel in this repo is optimized somehow: CSR
successor gathers, packed uint64 bitmaps, 2-stride product classes,
connected-component sharding, resumable chunking.  This oracle has
*none* of that on purpose: plain Python sets of state ids, one symbol
at a time, straight off the execution semantics in the docstring of
:mod:`repro.sim.engine`::

    enabled(t) = all-input starts
               | start-of-data starts (t == 0 only)
               | successors(active(t-1))
    active(t)  = { s in enabled(t) : input[t] in C(s) }
    reports(t) = active(t) & reporting

If an optimized engine and this oracle ever disagree, the optimized
engine is wrong.  The property tests in ``test_oracle.py`` drive
randomized automata and inputs through both and assert
report-for-report equality; any future kernel (GPU, SIMD, JIT...) gets
correctness for free by joining that suite.

Deliberate non-goals: speed (this is O(states) per cycle in
interpreted Python), statistics beyond the enabled/active sums, and
any form of resumability beyond being a plain loop you can slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.nfa import Automaton, StartKind
from repro.sim.reports import Report


@dataclass
class OracleResult:
    """What the oracle saw: reports plus the two activity sums."""

    reports: list[Report] = field(default_factory=list)
    num_cycles: int = 0
    num_reports: int = 0
    enabled_states_sum: int = 0
    active_states_sum: int = 0


class NfaOracle:
    """Set-of-states reference simulator for one :class:`Automaton`."""

    def __init__(self, automaton: Automaton) -> None:
        automaton.validate()
        self.automaton = automaton
        self.start_all = {
            s.ste_id
            for s in automaton.states
            if s.start is StartKind.ALL_INPUT
        }
        self.start_sod = {
            s.ste_id
            for s in automaton.states
            if s.start is StartKind.START_OF_DATA
        }
        self.successors = {
            s.ste_id: set(automaton.successors(s.ste_id))
            for s in automaton.states
        }
        self.reporting = {
            s.ste_id for s in automaton.states if s.reporting
        }
        self.codes = {s.ste_id: s.report_code for s in automaton.states}

    def run(self, data: bytes) -> OracleResult:
        """Simulate ``data`` from the start of a stream."""
        result = OracleResult()
        active: set[int] = set()
        for position, symbol in enumerate(data):
            enabled = set(self.start_all)
            if position == 0:
                enabled |= self.start_sod
            for state in active:
                enabled |= self.successors[state]
            active = {
                s
                for s in enabled
                if symbol in self.automaton.states[s].symbol_class
            }
            result.num_cycles += 1
            result.enabled_states_sum += len(enabled)
            result.active_states_sum += len(active)
            for state in sorted(active & self.reporting):
                result.num_reports += 1
                result.reports.append(
                    Report(
                        cycle=position,
                        state_id=state,
                        code=self.codes[state],
                    )
                )
        return result


def oracle_run(automaton: Automaton, data: bytes) -> OracleResult:
    """One-shot convenience: build the oracle and run ``data``."""
    return NfaOracle(automaton).run(data)
