"""Integration tests: the experiment harnesses reproduce the paper's shape.

Run at 1/64 scale with short streams so the whole module stays fast;
the assertions target the *direction and rough magnitude* of each
published claim, which is scale-invariant.
"""

import pytest

from repro.experiments import (
    fig10_area,
    fig11_density_energy_power,
    fig12_energy_breakdown,
    fig13_multistride,
    table1_symbol_classes,
    table2_encoding,
    table4_timing,
    table5_switch_mapping,
)
from repro.experiments.common import ExperimentContext

FAST_BENCHMARKS = (
    "Brill",
    "TCP",
    "SPM",
    "RandomForest",
    "EntityResolution",
    "BlockRings",
    "Ranges1",
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        scale=1.0 / 64.0, stream_length=2000, benchmarks=FAST_BENCHMARKS
    )


class TestTable1:
    def test_rows_cover_benchmarks(self, ctx):
        table = table1_symbol_classes.run(ctx)
        assert len(table.rows) == len(FAST_BENCHMARKS)

    def test_no_reduces_entries_on_negation_heavy(self, ctx):
        table = table1_symbol_classes.run(ctx)
        by_name = {row[0]: row for row in table.rows}
        for name in ("TCP", "SPM"):
            raw_entries, no_entries = by_name[name][7], by_name[name][8]
            assert no_entries < raw_entries, name

    def test_no_neutral_on_singleton_benchmarks(self, ctx):
        table = table1_symbol_classes.run(ctx)
        by_name = {row[0]: row for row in table.rows}
        assert by_name["Brill"][7] == by_name["Brill"][8]


class TestTable2:
    def test_proposed_memory_cheaper_than_fixed32(self, ctx):
        # Table II's claim is about memory = code length x states; the
        # paper's own Ranges1/Bro217 rows have *more* proposed states
        # than the fixed-32-bit flow but half the code length.
        table = table2_encoding.run(ctx)
        for row in table.rows:
            name, fixed32, length, proposed = row[0], row[2], row[3], row[5]
            assert length * proposed <= 32 * fixed32 * 1.02, name
            assert length <= 32

    def test_average_increase_moderate(self, ctx):
        table = table2_encoding.run(ctx)
        increases = [row[6] for row in table.rows]
        avg = sum(increases) / len(increases)
        # paper: +13% on average (21 benchmarks); allow our subset slack
        assert avg < 1.5


class TestTable4:
    def test_matches_paper_within_rounding(self, ctx):
        table = table4_timing.run(ctx)
        for row in table.rows:
            design, f_max, f_paper = row[0], row[5], row[6]
            assert f_max == pytest.approx(f_paper, rel=0.01), design


class TestTable5:
    def test_mode_assignment_shape(self, ctx):
        table = table5_switch_mapping.run(ctx)
        by_name = {row[0]: row for row in table.rows}
        # dense benchmarks: overwhelmingly FCB (a stray small component
        # can stay under the band at tiny scales); strings: all RCB
        assert by_name["RandomForest"][9] > by_name["RandomForest"][5]
        assert by_name["EntityResolution"][9] > by_name["EntityResolution"][5]
        assert by_name["Brill"][9] == 0
        assert by_name["Brill"][5] > 0

    def test_tcp_uses_global(self, ctx):
        table = table5_switch_mapping.run(ctx)
        by_name = {row[0]: row for row in table.rows}
        assert by_name["TCP"][7] >= 1  # proposed global switches


class TestFig10:
    def test_cama_smallest_on_string_benchmarks(self, ctx):
        table = fig10_area.run(ctx)
        by_name = {row[0]: row for row in table.rows}
        for name in ("Brill", "TCP", "SPM", "BlockRings"):
            cama, impala, eap, ca = by_name[name][1:5]
            assert cama < min(impala, eap, ca), name

    def test_area_ratio_magnitudes(self, ctx):
        table = fig10_area.run(ctx)
        by_name = {row[0]: row for row in table.rows}
        ca_ratio = by_name["SPM"][7]
        assert 1.5 < ca_ratio < 4.0  # paper: 2.48x on the largest


class TestFig11:
    def test_cama_e_wins_energy(self, ctx):
        table = fig11_density_energy_power.run(ctx)
        for row in table.rows:
            energy_ratios = row[8:]  # vs CAMA-E, for the other designs
            assert all(r > 1.0 for r in energy_ratios), row[0]

    def test_cama_t_wins_density(self, ctx):
        table = fig11_density_energy_power.run(ctx)
        for row in table.rows:
            name = row[0]
            density_ratios = dict(zip(("CAMA-T", "Impala", "eAP", "CA"), row[4:8]))
            # CAMA-T's ratio to CAMA-E is the frequency gain (~1.77)
            assert density_ratios["CAMA-T"] == pytest.approx(1.77, abs=0.05)
            if name not in ("RandomForest", "EntityResolution"):
                assert density_ratios["CA"] < density_ratios["CAMA-T"], name


class TestFig12:
    def test_fractions_sum_to_100(self, ctx):
        table = fig12_energy_breakdown.run(ctx)
        for row in table.rows:
            assert sum(row[1:4]) == pytest.approx(100, abs=0.5)
            assert sum(row[4:7]) == pytest.approx(100, abs=0.5)

    def test_cama_t_match_heavier_than_cama_e(self, ctx):
        # selective precharge cuts CAMA-E's state-match share
        table = fig12_energy_breakdown.run(ctx)
        for row in table.rows:
            assert row[4] > row[1], row[0]


class TestFig13:
    def test_impala_always_worse(self, ctx):
        table = fig13_multistride.run(ctx)
        for row in table.rows:
            assert row[6] > 1.0 and row[7] > 1.0, row[0]

    def test_cama_e_ratio_exceeds_cama_t_ratio(self, ctx):
        table = fig13_multistride.run(ctx)
        for row in table.rows:
            assert row[6] >= row[7], row[0]

    def test_cama_t_ratio_magnitude(self, ctx):
        from repro.experiments.common import geometric_mean

        table = fig13_multistride.run(ctx)
        ratios = [row[7] for row in table.rows]
        # paper: 2.18x; the raw access ratio is 61.2/22 = 2.78
        assert 1.3 < geometric_mean(ratios) < 3.5


class TestScaleTrend:
    def test_encoder_fraction_shrinks_with_scale(self):
        small = ExperimentContext(
            scale=1.0 / 64.0, stream_length=1500, benchmarks=("Brill",)
        )
        large = ExperimentContext(
            scale=1.0 / 16.0, stream_length=1500, benchmarks=("Brill",)
        )

        def encoder_fraction(ctx):
            build = ctx.build("Brill", "CAMA-E")
            stats = ctx.stats("Brill", "CAMA-E")
            return build.energy(stats).fractions()["encoder"]

        assert encoder_fraction(large) < encoder_fraction(small)


class TestExtraBuffers:
    def test_report_rates_and_hiding(self, ctx):
        from repro.experiments import extra_report_buffers

        table = extra_report_buffers.run(ctx)
        assert len(table.rows) == len(FAST_BENCHMARKS)
        for row in table.rows:
            rate, hidden = row[1], row[5]
            assert rate >= 0.0
            if rate < 0.4:
                assert hidden == "yes", row[0]

    def test_bank_capacity_rollup(self, ctx):
        mapping = ctx.program("Brill").mapping
        assert mapping.num_arrays >= 1
        assert mapping.num_banks == 1  # tiny benchmark: one bank suffices
