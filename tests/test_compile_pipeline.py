"""Tests for the staged compilation pipeline (repro.compile)."""

import pytest

from repro.automata import compile_regex_set
from repro.automata.striding import pad_input
from repro.compile import (
    DEFAULT_PASSES,
    Pipeline,
    PipelineOptions,
    compile_ruleset,
    ruleset_fingerprint,
)
from repro.compile.ir import PipelineState
from repro.compile.passes import EncodingPass, MappingPass, ParsePass
from repro.core.compiler import CamaCompiler, compile_automaton
from repro.errors import ReproError
from repro.sim.engine import Engine, StridedEngine
from repro.workloads.registry import get_benchmark

RULES = {"r1": "(a|b)e*cd+", "r2": "abc", "r3": "x+y"}
STREAM = b"aecdabcxxyaecddabcyx" * 30


@pytest.fixture(scope="module")
def ruleset():
    return compile_regex_set(RULES, name="pipeline-tests")


def report_keys(result):
    return [(r.cycle, r.state_id, r.code) for r in result.reports]


class TestOptions:
    def test_defaults_validate(self):
        PipelineOptions().validate()

    def test_bad_stride_rejected(self):
        with pytest.raises(ReproError, match="stride"):
            PipelineOptions(stride=4).validate()

    def test_bad_backend_rejected(self):
        with pytest.raises(ReproError, match="backend"):
            PipelineOptions(backend="gpu").validate()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ReproError, match="unknown pipeline options"):
            PipelineOptions.from_dict({"optimise": True})

    def test_roundtrip_dict(self):
        options = PipelineOptions(optimize=True, stride=2, backend="sparse")
        assert PipelineOptions.from_dict(options.to_dict()) == options

    def test_digest_covers_every_knob(self):
        base = PipelineOptions()
        variants = [
            base.replace(optimize=True),
            base.replace(stride=2),
            base.replace(backend="bitparallel"),
            base.replace(backend=None),
            base.replace(allow_negation=False),
            base.replace(clustered=False),
            base.replace(fixed_32bit=True),
        ]
        digests = {base.digest(), *[v.digest() for v in variants]}
        assert len(digests) == len(variants) + 1

    def test_fingerprint_covers_options(self, ruleset):
        bare = ruleset_fingerprint(ruleset)
        sparse = ruleset_fingerprint(
            ruleset, PipelineOptions(backend="sparse")
        )
        strided = ruleset_fingerprint(ruleset, PipelineOptions(stride=2))
        assert len({bare, sparse, strided}) == 3


class TestPipelineDriver:
    def test_default_pass_order(self):
        assert Pipeline().pass_names == (
            "parse",
            "optimize",
            "stride",
            "encode",
            "map",
            "kernel",
        )

    def test_every_pass_timed(self, ruleset):
        compiled = compile_ruleset(ruleset)
        assert [t.name for t in compiled.timings] == list(
            Pipeline().pass_names
        )
        for timing in compiled.timings:
            assert timing.seconds >= 0.0
            assert (timing.skipped is None) or (timing.detail == {})

    def test_skipped_passes_record_reasons(self, ruleset):
        compiled = compile_ruleset(ruleset)  # no optimize, stride 1
        skipped = {t.name: t.skipped for t in compiled.timings if t.skipped}
        assert "optimize" in skipped and "stride" in skipped

    def test_requires_contract_enforced(self, ruleset):
        # encode before parse: its required automaton field is missing
        pipeline = Pipeline((EncodingPass(), ParsePass()))
        with pytest.raises(ReproError, match="requires"):
            pipeline.run(ruleset)

    def test_duplicate_pass_names_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            Pipeline((ParsePass(), ParsePass()))

    def test_run_pass_by_name(self, ruleset):
        pipeline = Pipeline()
        state = PipelineState(
            options=PipelineOptions().validate(), source=ruleset
        )
        timing = pipeline.run_pass("parse", state)
        assert timing.detail["states"] == len(ruleset)
        assert state.automaton is ruleset

    def test_unknown_pass_name(self, ruleset):
        state = PipelineState(options=PipelineOptions(), source=ruleset)
        with pytest.raises(ReproError, match="no pass named"):
            Pipeline().run_pass("vectorize", state)

    def test_option_kwargs_front_door(self, ruleset):
        compiled = compile_ruleset(ruleset, backend="bitparallel")
        assert compiled.kernel.name == "bitparallel"

    def test_bad_source_type(self):
        with pytest.raises(ReproError, match="cannot compile"):
            compile_ruleset(42)


class TestPipelineProducts:
    def test_matches_legacy_compiler(self, ruleset):
        compiled = compile_ruleset(ruleset, backend=None)
        legacy = compile_automaton(ruleset)
        assert compiled.program.summary() == legacy.summary()
        assert compiled.program.state_encodings == legacy.state_encodings

    @pytest.mark.parametrize("name", ["TCP", "Bro217", "BlockRings"])
    def test_matches_legacy_on_registry(self, name):
        automaton = get_benchmark(name, scale=1 / 64).automaton
        compiled = compile_ruleset(automaton, backend=None)
        assert compiled.program.summary() == compile_automaton(automaton).summary()

    def test_cama_compiler_is_thin_driver(self, ruleset):
        compiler = CamaCompiler(clustered=False, fixed_32bit=True)
        program = compiler.compile(ruleset)
        assert program.summary()["encoding"].startswith("fixed-")
        options = compiler.options()
        assert options.backend is None and options.fixed_32bit

    def test_engine_from_compiled_kernel(self, ruleset):
        compiled = compile_ruleset(ruleset, backend="sparse")
        engine = compiled.engine(max_kept_reports=5, on_truncation="ignore")
        direct = Engine(ruleset, backend="sparse")
        assert report_keys(engine.run(STREAM, max_reports=10**6)) == report_keys(
            direct.run(STREAM)
        )
        assert engine.max_kept_reports == 5

    def test_engine_requires_kernel(self, ruleset):
        compiled = compile_ruleset(ruleset, backend=None)
        with pytest.raises(ReproError, match="without a kernel"):
            compiled.engine()

    def test_optimize_pass_reduces_and_preserves_reports(self):
        # shared literal prefixes are the prefix-merging sweet spot
        automaton = compile_regex_set(
            {"a": "abcdef", "b": "abcxyz", "c": "abcqrs"}
        )
        compiled = compile_ruleset(automaton, optimize=True, backend="sparse")
        assert compiled.optimization is not None
        assert len(compiled.automaton) < len(automaton)
        data = b"abcdefabcxyzabcqrs" * 5
        optimized = compiled.engine().run(data)
        original = Engine(automaton).run(data)
        assert [r.cycle for r in optimized.reports] == [
            r.cycle for r in original.reports
        ]
        assert [r.code for r in optimized.reports] == [
            r.code for r in original.reports
        ]

    def test_stride2_builds_strided_engine(self, ruleset):
        compiled = compile_ruleset(ruleset, stride=2, backend="sparse")
        assert isinstance(compiled.kernel, StridedEngine)
        assert compiled.program is None
        skipped = {t.name for t in compiled.timings if t.skipped}
        assert {"encode", "map"} <= skipped
        data = pad_input(STREAM)
        strided = compiled.engine().run(data)
        unstrided = Engine(ruleset).run(data)
        assert [(r.cycle, r.state_id) for r in strided.reports] == [
            (r.cycle, r.state_id) for r in unstrided.reports
        ]

    def test_stride2_engine_rejects_engine_kwargs(self, ruleset):
        compiled = compile_ruleset(ruleset, stride=2, backend="sparse")
        with pytest.raises(ReproError, match="already an engine"):
            compiled.engine(max_kept_reports=1)

    def test_timing_rows_render(self, ruleset):
        rows = compile_ruleset(ruleset).timing_rows()
        assert rows[-1][0] == "total"
        assert len(rows) == len(DEFAULT_PASSES) + 1
