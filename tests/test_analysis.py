"""Tests for connected components, BFS ordering and statistics."""

from repro.automata.analysis import (
    automaton_stats,
    bandwidth_under_order,
    bfs_order,
    connected_components,
)
from repro.automata.glushkov import compile_regex_set, glushkov_nfa
from repro.automata.nfa import Automaton, StartKind


def ring(n: int) -> Automaton:
    nfa = Automaton(name=f"ring{n}")
    for i in range(n):
        nfa.add_state(
            "a",
            start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
            reporting=i == n - 1,
        )
    for i in range(n):
        nfa.add_transition(i, (i + 1) % n)
    return nfa


class TestConnectedComponents:
    def test_single_component(self):
        assert len(connected_components(ring(5))) == 1

    def test_multiple_components_largest_first(self):
        nfa = compile_regex_set(["abcde", "xy", "pqr"])
        components = connected_components(nfa)
        assert [len(c) for c in components] == [5, 3, 2]

    def test_isolated_states_are_components(self):
        nfa = Automaton()
        nfa.add_state("a", start=StartKind.ALL_INPUT, reporting=True)
        nfa.add_state("b", start=StartKind.ALL_INPUT, reporting=True)
        assert len(connected_components(nfa)) == 2

    def test_components_partition_states(self):
        nfa = compile_regex_set(["ab(c|d)", "x+y"])
        components = connected_components(nfa)
        all_states = sorted(s for c in components for s in c)
        assert all_states == list(range(len(nfa)))

    def test_undirected_grouping(self):
        # two chains converging on one state are a single weak component
        nfa = Automaton()
        a = nfa.add_state("a", start=StartKind.ALL_INPUT)
        b = nfa.add_state("b", start=StartKind.ALL_INPUT)
        c = nfa.add_state("c", reporting=True)
        nfa.add_transition(a, c)
        nfa.add_transition(b, c)
        assert len(connected_components(nfa)) == 1


class TestBfsOrder:
    def test_is_permutation(self):
        nfa = glushkov_nfa("(a|b)(c|d)(e|f)g")
        component = connected_components(nfa)[0]
        order = bfs_order(nfa, component)
        assert sorted(order) == component

    def test_starts_first(self):
        nfa = glushkov_nfa("ab*c")
        order = bfs_order(nfa, connected_components(nfa)[0])
        assert order[0] == 0

    def test_chain_order_is_linear(self):
        nfa = glushkov_nfa("abcdef")
        order = bfs_order(nfa, connected_components(nfa)[0])
        assert order == list(range(6))

    def test_chain_bandwidth_is_one(self):
        nfa = glushkov_nfa("abcdef")
        order = bfs_order(nfa, connected_components(nfa)[0])
        assert bandwidth_under_order(nfa, order) == 1

    def test_handles_backward_only_states(self):
        # state 1 reaches 0 but nothing reaches 1 => appended at the end
        nfa = Automaton()
        nfa.add_state("a", start=StartKind.ALL_INPUT, reporting=True)
        nfa.add_state("b")
        nfa.add_transition(1, 0)
        order = bfs_order(nfa, [0, 1])
        assert sorted(order) == [0, 1]

    def test_bandwidth_of_ring(self):
        nfa = ring(10)
        order = bfs_order(nfa, connected_components(nfa)[0])
        # the closing edge of the ring spans the whole order
        assert bandwidth_under_order(nfa, order) == 9


class TestStats:
    def test_basic_counts(self):
        nfa = glushkov_nfa("(a|b)e*cd+")
        stats = automaton_stats(nfa)
        assert stats.num_states == 5
        assert stats.num_start == 2
        assert stats.num_reporting == 1
        assert stats.num_components == 1
        assert stats.largest_component == 5

    def test_symbol_class_sizes(self):
        nfa = Automaton(name="x")
        nfa.add_state("[ab]", start=StartKind.ALL_INPUT, reporting=True)
        nfa.add_state("[a-d]")
        nfa.add_transition(0, 1)
        stats = automaton_stats(nfa)
        assert stats.avg_symbol_class_size == 3.0
        assert stats.max_symbol_class_size == 4
        assert stats.alphabet_size == 4

    def test_out_degree(self):
        nfa = ring(4)
        assert automaton_stats(nfa).avg_out_degree == 1.0
