"""Tests anchoring the circuit library and timing model to the paper."""

import pytest

from repro.arch.circuits import (
    CAM_SELECTIVE_FLOOR_PJ,
    CircuitLibrary,
    selective_precharge_energy,
)
from repro.arch.timing import (
    all_timings,
    ap_timing,
    ca_timing,
    cama_timing,
    eap_timing,
    impala_timing,
)
from repro.errors import ModelError


@pytest.fixture(scope="module")
def lib():
    return CircuitLibrary()


class TestTableIIIAnchors:
    """Table III values must be returned verbatim."""

    @pytest.mark.parametrize(
        "family,rows,cols,energy,delay,area,leak",
        [
            ("6T", 256, 256, 19.45, 416, 14877, 532),
            ("6T", 16, 256, 15.3, 317, 3659, 247),
            ("8T", 128, 128, 8.67, 292, 5655, 243),
            ("8T", 256, 256, 17.9, 394, 18153, 584),
            ("CAM", 16, 256, 16.78, 325, 3919, 299),
        ],
    )
    def test_anchor(self, lib, family, rows, cols, energy, delay, area, leak):
        macro = lib.macro(family, rows, cols)
        assert macro.is_anchor
        assert macro.energy_pj == pytest.approx(energy)
        assert macro.delay_ps == pytest.approx(delay)
        assert macro.area_um2 == pytest.approx(area)
        assert macro.leakage_ua == pytest.approx(leak)

    def test_cam_64_row_energy_anchor(self, lib):
        # §VIII.D: 64x256 CAM access is 22 pJ
        assert lib.cam8t(64, 256).energy_pj == pytest.approx(22.0)

    def test_unknown_family_rejected(self, lib):
        with pytest.raises(ModelError):
            lib.macro("10T", 16, 256)

    def test_bad_geometry_rejected(self, lib):
        with pytest.raises(ModelError):
            lib.macro("6T", 0, 256)


class TestScaling:
    def test_interpolated_macro_between_anchors(self, lib):
        macro = lib.sram8t(192, 256)
        low = lib.sram8t(128, 256)
        high = lib.sram8t(256, 256)
        assert low.energy_pj < macro.energy_pj < high.energy_pj

    def test_energy_monotone_in_rows(self, lib):
        energies = [lib.sram8t(r, 128).energy_pj for r in (64, 128, 192, 256)]
        assert energies == sorted(energies)

    def test_energy_linear_in_columns(self, lib):
        half = lib.sram8t(128, 64).energy_pj
        full = lib.sram8t(128, 128).energy_pj
        assert full == pytest.approx(2 * half)

    def test_eap_rcb_smaller_than_cama_switch(self, lib):
        assert lib.eap_rcb().area_um2 < lib.local_switch().area_um2
        assert lib.eap_rcb().energy_pj < lib.local_switch().energy_pj

    def test_encoder_macro_small(self, lib):
        encoder = lib.encoder_sram()
        # must be a tiny fraction of a state-matching access (<= ~15%)
        assert encoder.energy_pj < 0.15 * lib.state_match_cam().energy_pj

    def test_mode32_cam_energy_between_16_and_64(self, lib):
        e16 = lib.state_match_cam().energy_pj
        e32 = lib.state_match_cam_32().energy_pj
        e64 = lib.cam8t(64, 256).energy_pj
        assert e16 < e32 < e64


class TestSelectivePrecharge:
    def test_floor_at_zero_enabled(self):
        assert selective_precharge_energy(16.78, 0) == pytest.approx(
            CAM_SELECTIVE_FLOOR_PJ
        )

    def test_full_at_all_enabled(self):
        assert selective_precharge_energy(16.78, 256) == pytest.approx(16.78)

    def test_paper_fermi_worst_case(self):
        # §VIII.C: Fermi averages 7.8 pJ under selective enabling;
        # that corresponds to ~93 of 256 entries enabled
        energy = selective_precharge_energy(16.78, 93)
        assert energy == pytest.approx(7.8, abs=0.2)

    def test_clamps_out_of_range(self):
        assert selective_precharge_energy(16.78, 400) == pytest.approx(16.78)

    def test_bad_total_rejected(self):
        with pytest.raises(ModelError):
            selective_precharge_energy(16.78, 10, total_entries=0)


class TestTableIV:
    """Table IV's delays and frequencies must reproduce."""

    def test_cama_global_delay(self, lib):
        timing = cama_timing("T", lib)
        assert timing.global_switch_ps == pytest.approx(420.1, abs=0.2)

    def test_impala_global_delay(self, lib):
        assert impala_timing(lib).global_switch_ps == pytest.approx(442.69, abs=0.3)

    def test_eap_global_delay(self, lib):
        assert eap_timing(lib).global_switch_ps == pytest.approx(515.0, abs=1.0)

    def test_ca_global_delay(self, lib):
        assert ca_timing(lib).global_switch_ps == pytest.approx(493.0, abs=0.5)

    def test_cama_t_frequency(self, lib):
        timing = cama_timing("T", lib)
        assert timing.freq_max_ghz == pytest.approx(2.38, abs=0.01)
        assert timing.freq_operated_ghz == pytest.approx(2.14, abs=0.01)

    def test_cama_e_frequency(self, lib):
        timing = cama_timing("E", lib)
        assert timing.freq_max_ghz == pytest.approx(1.34, abs=0.01)
        assert timing.freq_operated_ghz == pytest.approx(1.21, abs=0.01)

    def test_impala_frequency(self, lib):
        assert impala_timing(lib).freq_max_ghz == pytest.approx(2.26, abs=0.01)

    def test_eap_frequency(self, lib):
        assert eap_timing(lib).freq_max_ghz == pytest.approx(1.94, abs=0.01)

    def test_ca_frequency(self, lib):
        assert ca_timing(lib).freq_max_ghz == pytest.approx(2.03, abs=0.01)

    def test_ap_constant(self):
        assert ap_timing().freq_operated_ghz == pytest.approx(0.133)

    def test_state_match_delays(self, lib):
        assert cama_timing("T", lib).state_match_ps == pytest.approx(325)
        assert impala_timing(lib).state_match_ps == pytest.approx(317)
        assert eap_timing(lib).state_match_ps == pytest.approx(394)
        assert ca_timing(lib).state_match_ps == pytest.approx(416)

    def test_throughput_ranking(self, lib):
        # §VIII.A: CAMA-T > Impala > CA > eAP > CAMA-E in throughput
        rows = {t.design: t.throughput_gbps() for t in all_timings(lib)}
        assert rows["CAMA-T"] > rows["2-stride Impala"] > rows["CA"]
        assert rows["CA"] > rows["eAP"] > rows["CAMA-E"]

    def test_cama_t_speedup_over_ap(self, lib):
        # §VIII.A: 16.1x over AP for CAMA-T, 9.1x for CAMA-E
        assert cama_timing("T", lib).freq_operated_ghz / 0.133 == pytest.approx(
            16.1, abs=0.3
        )
        assert cama_timing("E", lib).freq_operated_ghz / 0.133 == pytest.approx(
            9.1, abs=0.3
        )

    def test_unknown_variant_rejected(self, lib):
        with pytest.raises(ModelError):
            cama_timing("Z", lib)
