"""Tests for the VASim-style optimization passes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import compile_regex_set
from repro.automata.nfa import Automaton, StartKind
from repro.automata.optimize import (
    merge_common_prefixes,
    optimize,
    remove_dead_states,
)
from repro.sim.engine import Engine
from repro.sim.reports import report_codes_at


def equivalent(a: Automaton, b: Automaton, data: bytes) -> bool:
    ra = Engine(a).run(data)
    rb = Engine(b).run(data)
    return report_codes_at(ra.reports) == report_codes_at(rb.reports)


def random_text(seed: int, n: int, alphabet=b"abcdx") -> bytes:
    rng = random.Random(seed)
    return bytes(rng.choice(alphabet) for _ in range(n))


class TestPrefixMerging:
    def test_shared_prefix_merges(self):
        # "abcd" and "abce" share a 3-state prefix
        nfa = compile_regex_set(["abcd", "abce"])
        merged, report = merge_common_prefixes(nfa)
        assert len(merged) == 5  # a, b, c, d, e
        assert report.reduction == pytest.approx(3 / 8)

    def test_language_preserved(self):
        nfa = compile_regex_set(["abcd", "abce", "abc"])
        merged, _ = merge_common_prefixes(nfa)
        for seed in range(5):
            data = random_text(seed, 200, b"abcdex")
            assert equivalent(nfa, merged, data)

    def test_distinct_report_codes_not_merged(self):
        nfa = compile_regex_set({"r1": "ab", "r2": "ab"})
        merged, _ = merge_common_prefixes(nfa)
        # final states carry different codes: only the 'a' states merge
        assert len(merged) == 3

    def test_no_merge_when_nothing_shared(self):
        nfa = compile_regex_set(["ab", "cd"])
        merged, report = merge_common_prefixes(nfa)
        assert len(merged) == len(nfa)
        assert report.reduction == 0.0

    def test_iterates_to_fixed_point(self):
        # three identical long patterns collapse into one chain
        nfa = compile_regex_set(["abcdefgh"] * 1)
        big = compile_regex_set(["wxyzabcd", "wxyzabce", "wxyzabcf"])
        merged, report = merge_common_prefixes(big)
        assert len(merged) == 7 + 3
        assert report.passes >= 2

    def test_self_loops_preserved(self):
        nfa = compile_regex_set(["ab*c", "ab*d"])
        merged, _ = merge_common_prefixes(nfa)
        for seed in range(4):
            data = random_text(seed, 150)
            assert equivalent(nfa, merged, data)

    @settings(max_examples=25, deadline=None)
    @given(
        words=st.lists(
            st.text(alphabet="abc", min_size=1, max_size=6), min_size=2, max_size=5
        ),
        seed=st.integers(0, 1000),
    )
    def test_equivalence_property(self, words, seed):
        nfa = compile_regex_set(sorted(set(words)))
        merged, _ = merge_common_prefixes(nfa)
        assert equivalent(nfa, merged, random_text(seed, 120))


class TestDeadStateRemoval:
    def test_dead_tail_removed(self):
        nfa = Automaton(name="dead")
        a = nfa.add_state("a", start=StartKind.ALL_INPUT)
        b = nfa.add_state("b", reporting=True)
        c = nfa.add_state("c")  # reachable but reports nothing
        nfa.add_transition(a, b)
        nfa.add_transition(a, c)
        pruned, report = remove_dead_states(nfa)
        assert len(pruned) == 2
        assert report.reduction == pytest.approx(1 / 3)

    def test_live_automaton_untouched(self):
        nfa = compile_regex_set(["abc"])
        pruned, report = remove_dead_states(nfa)
        assert pruned is nfa
        assert report.reduction == 0.0

    def test_language_preserved(self):
        nfa = Automaton(name="dead2")
        a = nfa.add_state("a", start=StartKind.ALL_INPUT)
        b = nfa.add_state("b", reporting=True, report_code="hit")
        c = nfa.add_state("c")
        d = nfa.add_state("d")
        nfa.add_transition(a, b)
        nfa.add_transition(a, c)
        nfa.add_transition(c, d)
        pruned, _ = remove_dead_states(nfa)
        assert equivalent(nfa, pruned, b"abacbabd" * 10)


class TestPipeline:
    def test_combined_pipeline(self):
        nfa = compile_regex_set(["abcde", "abcdf", "abcdg"])
        optimized, report = optimize(nfa)
        assert len(optimized) == 7
        assert report.states_before == 15
        assert report.states_after == 7

    def test_pipeline_equivalence_on_benchmark(self):
        from repro.workloads import get_benchmark

        automaton = get_benchmark("Brill", scale=1 / 128).automaton
        optimized, report = optimize(automaton)
        assert report.states_after <= report.states_before
        data = get_benchmark("Brill", scale=1 / 128).input_stream(2000)
        assert equivalent(automaton, optimized, data)

    def test_optimized_compiles_to_fewer_entries(self):
        from repro.core.compiler import compile_automaton

        nfa = compile_regex_set([f"sharedprefix{suffix}" for suffix in "abcdef"])
        optimized, _ = optimize(nfa)
        assert (
            compile_automaton(optimized).total_entries
            < compile_automaton(nfa).total_entries
        )
