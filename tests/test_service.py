"""Tests for the streaming, sharded, multi-tenant service layer."""

import gc
import warnings

import numpy as np
import pytest

from repro.automata import balanced_shards, glushkov_nfa
from repro.automata.glushkov import compile_regex_set
from repro.core.compiler import compile_automaton
from repro.core.machine import CamaMachine
from repro.errors import ConfigError, SimulationError
from repro.service import (
    Dispatcher,
    MatchingService,
    RulesetManager,
    accumulate_stats,
    chunked_scan,
    iter_chunks,
    make_shards,
    merge_shard_reports,
    ruleset_fingerprint,
)
from repro.sim.engine import Engine, EngineState
from repro.sim.reports import Report
from repro.sim.trace import TraceStats
from repro.workloads import BENCHMARK_NAMES, get_benchmark, multi_stream_inputs

TEST_SCALE = 1.0 / 64.0
STREAM_LENGTH = 600


def report_keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


@pytest.fixture(scope="module")
def ruleset():
    nfa = compile_regex_set(
        {"r1": "(a|b)e*cd+", "r2": "abc", "r3": "x+y"}, name="svc"
    )
    return nfa


@pytest.fixture(scope="module")
def stream():
    return b"aecdabcxxyaecddabcyx" * 30


class TestChunkedEquivalence:
    """run_chunk over chunks == run over the whole stream, exactly."""

    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_registry_benchmarks(self, name, chunk_size):
        bench = get_benchmark(name, scale=TEST_SCALE)
        data = bench.input_stream(STREAM_LENGTH)
        engine = Engine(bench.automaton)
        one_shot = engine.run(data)
        chunked = chunked_scan(engine, data, chunk_size)
        assert report_keys(chunked.reports) == report_keys(one_shot.reports)
        assert chunked.stats.num_cycles == one_shot.stats.num_cycles
        assert chunked.stats.num_reports == one_shot.stats.num_reports
        assert chunked.stats.enabled_states_sum == one_shot.stats.enabled_states_sum
        assert chunked.stats.active_states_sum == one_shot.stats.active_states_sum

    def test_start_of_data_does_not_refire_at_chunk_boundaries(self):
        engine = Engine(glushkov_nfa("ab", anchored=True))
        one_shot = engine.run(b"abab")
        for chunk_size in (1, 2, 3):
            chunked = chunked_scan(engine, b"abab", chunk_size)
            assert report_keys(chunked.reports) == report_keys(one_shot.reports)
            assert chunked.num_reports == 1

    def test_report_cycles_are_stream_offsets(self, ruleset):
        engine = Engine(ruleset)
        state = engine.initial_state()
        engine.run_chunk(b"aecdabcxx", state)
        late = engine.run_chunk(b"aecd", state)
        # the 'd' of the second chunk completes r1 at absolute offset 12
        assert (12, "r1") in {(r.cycle, r.code) for r in late.reports}

    def test_state_advances_in_place(self, ruleset):
        engine = Engine(ruleset)
        state = engine.initial_state()
        engine.run_chunk(b"aec", state)
        assert state.position == 3
        assert state.active.size > 0

    def test_snapshot_forks_execution(self, ruleset):
        engine = Engine(ruleset)
        state = engine.initial_state()
        engine.run_chunk(b"aec", state)
        fork = state.copy()
        finished = engine.run_chunk(b"d", state)
        assert finished.num_reports == 1
        # the fork still sees the same continuation independently
        assert engine.run_chunk(b"d", fork).num_reports == 1

    def test_empty_chunk_is_a_no_op(self, ruleset):
        engine = Engine(ruleset)
        state = engine.initial_state()
        result = engine.run_chunk(b"", state)
        assert result.num_reports == 0
        assert state.position == 0
        assert state.at_start

    def test_cama_machine_run_chunk_matches_engine(self, ruleset, stream):
        machine = CamaMachine(compile_automaton(ruleset))
        reference = Engine(ruleset).run(stream)
        state = machine.initial_state()
        reports = []
        for chunk in iter_chunks(stream, 17):
            reports.extend(machine.run_chunk(chunk, state).reports)
        assert report_keys(reports) == report_keys(reference.reports)


class TestRulesetManager:
    def test_fingerprint_ignores_names(self):
        a = glushkov_nfa("ab*c")
        b = glushkov_nfa("ab*c")
        b.name = "renamed"
        for ste in b.states:
            ste.name = f"other{ste.ste_id}"
        assert ruleset_fingerprint(a) == ruleset_fingerprint(b)

    def test_fingerprint_sees_language_changes(self):
        assert ruleset_fingerprint(glushkov_nfa("ab")) != ruleset_fingerprint(
            glushkov_nfa("ac")
        )
        anchored = glushkov_nfa("ab", anchored=True)
        assert ruleset_fingerprint(glushkov_nfa("ab")) != ruleset_fingerprint(
            anchored
        )

    def test_cache_hits_and_misses(self):
        manager = RulesetManager(capacity=4)
        nfa = glushkov_nfa("ab*c")
        first = manager.engine(nfa)
        assert manager.engine(nfa) is first
        assert manager.stats.misses == 1
        assert manager.stats.hits == 1

    def test_lru_eviction(self):
        manager = RulesetManager(capacity=2)
        rules = [glushkov_nfa(p) for p in ("ab", "cd", "ef")]
        engines = [manager.engine(nfa) for nfa in rules]
        assert manager.stats.evictions == 1
        # oldest entry was evicted; re-requesting it recompiles
        assert manager.engine(rules[0]) is not engines[0]
        assert manager.engine(rules[2]) is engines[2]

    def test_machine_cache(self):
        manager = RulesetManager()
        nfa = glushkov_nfa("ab")
        machine = manager.machine(nfa)
        assert manager.machine(nfa) is machine

    def test_bad_capacity_rejected(self):
        with pytest.raises(Exception):
            RulesetManager(capacity=0)


class TestSharding:
    def test_balanced_shards_partition_states(self):
        components = [[0, 1], [2, 3, 4], [5], [6, 7]]
        groups = balanced_shards(components, 2)
        assert sorted(s for g in groups for s in g) == list(range(8))
        sizes = sorted(len(g) for g in groups)
        assert sizes == [4, 4]

    def test_balanced_shards_fewer_components_than_shards(self):
        groups = balanced_shards([[0, 1]], 4)
        assert groups == [[0, 1]]

    def test_balanced_shards_rejects_bad_count(self):
        with pytest.raises(ValueError):
            balanced_shards([[0]], 0)

    def test_make_shards_cover_reporting_components(self, ruleset):
        shards = make_shards(ruleset, 3)
        covered = sorted(s for shard in shards for s in shard.global_ids)
        assert covered == list(range(len(ruleset)))
        for shard in shards:
            shard.automaton.validate()

    def test_sharded_scan_equals_monolithic(self, ruleset, stream):
        one_shot = Engine(ruleset).run(stream)
        for num_shards in (1, 2, 3):
            dispatcher = Dispatcher(ruleset, num_shards=num_shards)
            result = dispatcher.scan(stream, chunk_size=50)
            assert report_keys(result.reports) == report_keys(one_shot.reports)
            assert result.stats.num_reports == one_shot.stats.num_reports
            assert (
                result.stats.enabled_states_sum
                == one_shot.stats.enabled_states_sum
            )

    def test_sharded_scan_with_workers(self, ruleset, stream):
        one_shot = Engine(ruleset).run(stream)
        dispatcher = Dispatcher(ruleset, num_shards=3, workers=2)
        try:
            # the pool persists across scans; both must match one-shot
            for _ in range(2):
                result = dispatcher.scan(stream, chunk_size=100)
                assert report_keys(result.reports) == report_keys(
                    one_shot.reports
                )
        finally:
            dispatcher.close()

    def test_sharded_registry_benchmark(self):
        bench = get_benchmark("Snort", scale=TEST_SCALE)
        data = bench.input_stream(STREAM_LENGTH)
        one_shot = Engine(bench.automaton).run(data)
        result = Dispatcher(bench.automaton, num_shards=4).scan(
            data, chunk_size=64
        )
        assert report_keys(result.reports) == report_keys(one_shot.reports)

    def test_run_chunk_state_mismatch_rejected(self, ruleset):
        dispatcher = Dispatcher(ruleset, num_shards=2)
        with pytest.raises(SimulationError):
            dispatcher.run_chunk(b"ab", [EngineState()] * 5)

    def test_iter_chunks_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            list(iter_chunks(b"abc", 0))


class TestMerge:
    def test_accumulate_requires_same_automaton(self):
        with pytest.raises(ValueError):
            accumulate_stats(TraceStats(num_states=2), TraceStats(num_states=3))

    def test_merge_shard_reports_orders_like_monolithic(self):
        per_shard = [
            [Report(cycle=1, state_id=0), Report(cycle=3, state_id=1)],
            [Report(cycle=1, state_id=0)],
        ]
        merged = merge_shard_reports(per_shard, [[5, 6], [2]])
        assert [(r.cycle, r.state_id) for r in merged] == [
            (1, 2),
            (1, 5),
            (3, 6),
        ]


class TestSessions:
    def test_interleaved_sessions_are_independent(self, ruleset, stream):
        service = MatchingService(num_shards=2)
        expected = Engine(ruleset).run(stream)
        a = service.open_session(ruleset, "a")
        b = service.open_session(ruleset, "b")
        # feed the same stream to both, chunks interleaved unevenly
        for chunk in iter_chunks(stream, 13):
            a.feed(chunk)
        b.feed_all(stream, chunk_size=37)
        for session in (a, b):
            assert report_keys(session.reports) == report_keys(expected.reports)
        result = service.close_session("a")
        assert result.stats.num_cycles == len(stream)

    def test_session_feed_returns_only_new_reports(self, ruleset):
        service = MatchingService()
        session = service.open_session(ruleset, "s")
        assert session.feed(b"aec") == []
        new = session.feed(b"d")
        assert [(r.cycle, r.code) for r in new] == [(3, "r1")]
        assert session.position == 4

    def test_closed_session_rejects_feeds(self, ruleset):
        service = MatchingService()
        session = service.open_session(ruleset, "s")
        result = service.close_session("s")
        assert result.num_reports == 0
        assert "s" not in service.sessions
        with pytest.raises(SimulationError):
            session.feed(b"a")

    def test_duplicate_session_name_rejected(self, ruleset):
        service = MatchingService()
        service.open_session(ruleset, "dup")
        with pytest.raises(SimulationError):
            service.open_session(ruleset, "dup")

    def test_unknown_session_close_rejected(self):
        with pytest.raises(SimulationError):
            MatchingService().close_session("ghost")

    def test_session_max_reports_caps_recording(self, ruleset):
        service = MatchingService()
        session = service.open_session(ruleset, "cap", max_reports=2)
        session.feed_all(b"aecd" * 10, chunk_size=4)
        assert len(session.reports) == 2
        assert session.stats.num_reports == 10

    def test_session_cap_holds_across_shards(self):
        # both components fire every cycle; the cap must apply to the
        # merged stream, not per shard
        nfa = compile_regex_set({"ra": "a", "rb": "b"}, name="two")
        service = MatchingService(num_shards=2)
        session = service.open_session(nfa, "cap", max_reports=2)
        session.feed(b"ababab")
        assert len(session.reports) == 2
        assert session.stats.num_reports == 6


class TestMatchingService:
    def test_scan_marks_cache_state(self, ruleset, stream):
        service = MatchingService(num_shards=2)
        cold = service.scan(ruleset, stream)
        warm = service.scan(ruleset, stream)
        assert not cold.cached
        assert warm.cached
        assert report_keys(cold.reports) == report_keys(warm.reports)
        assert warm.bytes_scanned == len(stream)
        assert warm.throughput_mbps >= 0.0

    def test_scan_equals_engine_run(self, ruleset, stream):
        service = MatchingService(num_shards=3, chunk_size=41)
        expected = Engine(ruleset).run(stream)
        result = service.scan(ruleset, stream)
        assert report_keys(result.reports) == report_keys(expected.reports)
        assert result.stats.num_cycles == expected.stats.num_cycles

    def test_scan_many_isolates_streams(self, ruleset):
        service = MatchingService()
        streams = multi_stream_inputs(ruleset, 3, length=200)
        results = service.scan_many(ruleset, streams)
        assert set(results) == set(streams)
        for name, data in streams.items():
            expected = Engine(ruleset).run(data)
            assert report_keys(results[name].reports) == report_keys(
                expected.reports
            )

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigError):
            MatchingService(chunk_size=0)


class TestTeardown:
    """close() must be clean on error paths: no leaked pools, no
    ResourceWarnings, no half-open sessions."""

    def test_close_after_failing_chunk_releases_everything(self, ruleset):
        """A chunk that raises mid-stream must not leak the worker pool."""
        service = MatchingService(num_shards=3, workers=2)
        stream = b"aecdabcxxy" * 20
        service.scan(ruleset, stream)  # builds the multiprocessing pool
        dispatcher = service.dispatcher(ruleset)
        assert dispatcher._pool is not None
        session = service.open_session(
            ruleset, "failing", max_reports=1, on_truncation="error"
        )
        with pytest.raises(SimulationError, match="kept-reports cap"):
            session.feed(stream)  # the failing chunk
        # teardown after the error: pool gone, session closed, quietly
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            service.close()
            gc.collect()
        assert dispatcher._pool is None
        assert session.closed
        assert service.sessions == {}

    def test_close_is_idempotent(self, ruleset):
        service = MatchingService(num_shards=2, workers=2)
        service.scan(ruleset, b"aecd" * 50)
        service.close()
        service.close()

    def test_use_after_close_raises_instead_of_recompiling(self, ruleset):
        service = MatchingService()
        service.scan(ruleset, b"aecd")
        service.close()
        with pytest.raises(SimulationError, match="closed"):
            service.scan(ruleset, b"aecd")
        with pytest.raises(SimulationError, match="closed"):
            service.open_session(ruleset, "late")

    def test_service_context_manager(self, ruleset):
        with MatchingService(num_shards=2) as service:
            result = service.scan(ruleset, b"aecdabc")
            assert result.num_reports > 0
        assert service.closed

    def test_dispatcher_context_manager_closes_pool(self, ruleset):
        with Dispatcher(ruleset, num_shards=3, workers=2) as dispatcher:
            dispatcher.scan(b"aecdabcxxy" * 10, chunk_size=16)
            assert dispatcher._pool is not None
        assert dispatcher._pool is None
        dispatcher.close()  # idempotent

    def test_evicted_dispatcher_with_pool_retires_until_service_close(self):
        # terminating an evicted dispatcher's pool immediately could kill
        # another thread's in-flight scan; it must retire instead and be
        # released by service.close()
        rules_a = compile_regex_set({"a1": "ab", "a2": "cd"}, name="a")
        rules_b = compile_regex_set({"b1": "ef", "b2": "gh"}, name="b")
        service = MatchingService(cache_capacity=1, num_shards=2, workers=2)
        service.scan(rules_a, b"abcd" * 30)
        first = service.dispatcher(rules_a)
        assert first._pool is not None
        service.scan(rules_b, b"efgh" * 30)  # evicts rules_a's dispatcher
        assert first in service._retired
        assert first._pool is not None  # still usable by in-flight scans
        service.close()
        assert first._pool is None
        assert service._retired == []

    def test_evicted_dispatcher_without_pool_closes_immediately(self):
        rules_a = compile_regex_set({"a1": "ab"}, name="a")
        rules_b = compile_regex_set({"b1": "ef"}, name="b")
        service = MatchingService(cache_capacity=1)
        service.scan(rules_a, b"abab")
        service.scan(rules_b, b"efef")  # evicts the (serial) dispatcher
        assert service._retired == []
        service.close()


class TestStridedMaxReports:
    def test_caps_recording_not_counting(self):
        from repro.automata import pad_input, stride2
        from repro.sim.engine import StridedEngine

        strided = stride2(glushkov_nfa("ab"))
        engine = StridedEngine(strided)
        data = pad_input(b"ab" * 50)
        full = engine.run(data)
        capped = engine.run(data, max_reports=5)
        assert len(capped.reports) == 5
        assert capped.stats.num_reports == full.stats.num_reports == 50
        assert capped.reports == full.reports[:5]
