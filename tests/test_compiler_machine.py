"""Integration tests: compiler, mapping, and machine-vs-engine equivalence.

The decisive check: for every benchmark-shaped automaton and input, the
functional CAMA machine (CAM search + inverters + switch routing) must
produce exactly the reference simulator's reports.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import compile_regex_set, glushkov_nfa
from repro.automata.nfa import Automaton, StartKind
from repro.automata.symbols import SymbolClass
from repro.core.compiler import CamaCompiler, compile_automaton
from repro.core.machine import CamaMachine
from repro.core.mapping import map_automaton
from repro.core.rrcb import GLOBAL_PORTS
from repro.errors import MappingError, SimulationError
from repro.sim.engine import Engine
from repro.sim.reports import report_positions


def random_text(seed: int, length: int, alphabet: str = "abcdex") -> bytes:
    rng = random.Random(seed)
    return bytes(ord(rng.choice(alphabet)) for _ in range(length))


def assert_machine_equivalent(automaton: Automaton, data: bytes, variant="E"):
    program = compile_automaton(automaton)
    machine = CamaMachine(program, variant=variant)
    expected = report_positions(Engine(automaton).run(data).reports)
    got = report_positions(machine.run(data).reports)
    assert got == expected


class TestCompiler:
    def test_small_regex_compiles(self):
        program = compile_automaton(glushkov_nfa("(a|b)e*cd+"))
        assert program.code_length >= 2
        assert program.total_entries >= len(program.automaton)

    def test_summary_keys(self):
        program = compile_automaton(glushkov_nfa("ab+c"))
        summary = program.summary()
        assert summary["states"] == 3  # Glushkov positions: a, b, c
        assert summary["tiles"] >= 1

    def test_negation_counted(self):
        nfa = glushkov_nfa("a[^b]c")
        program = compile_automaton(nfa)
        assert program.num_negated_states == 1

    def test_negation_disabled(self):
        nfa = glushkov_nfa("a[^b]c")
        program = CamaCompiler(allow_negation=False).compile(nfa)
        assert program.num_negated_states == 0

    def test_fixed_32bit_mode(self):
        program = CamaCompiler(fixed_32bit=True).compile(glushkov_nfa("abc"))
        assert program.code_length == 32
        assert all(t.mode == "mode32" for t in program.mapping.tiles)

    def test_memory_bits(self):
        program = compile_automaton(glushkov_nfa("abc"))
        assert program.memory_bits == program.total_entries * program.code_length

    def test_invalid_automaton_rejected(self):
        nfa = Automaton()
        nfa.add_state("a")  # no start, no report
        with pytest.raises(Exception):
            compile_automaton(nfa)


class TestMapping:
    def test_small_cc_single_switch(self):
        nfa = glushkov_nfa("abcdef")
        program = compile_automaton(nfa)
        assert program.mapping.num_rcb_switches == 1
        assert program.mapping.num_global_switches == 0

    def test_positions_within_capacity(self):
        nfa = compile_regex_set([f"pat{i}x+y" for i in range(40)])
        program = compile_automaton(nfa)
        mapping = program.mapping
        for state in range(len(nfa)):
            switch = mapping.switches[mapping.state_switch[state]]
            assert 0 <= mapping.state_position[state] < switch.capacity_states

    def test_large_component_spans_switches(self):
        # one linear chain of 600 states: needs >= 3 RCB switches (256 cap)
        nfa = Automaton(name="chain600")
        prev = None
        for i in range(600):
            ste = nfa.add_state(
                "[ab]",
                start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
                reporting=i == 599,
            )
            if prev is not None:
                nfa.add_transition(prev, ste)
            prev = ste
        program = compile_automaton(nfa)
        assert program.mapping.num_rcb_switches >= 3
        assert program.mapping.num_global_switches >= 1
        assert len(program.mapping.cross_edges) == 2

    def test_dense_component_goes_fcb(self):
        # a 60-state clique: bandwidth 59 > 43 -> FCB mode
        nfa = Automaton(name="clique")
        for i in range(60):
            nfa.add_state(
                "[ab]",
                start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
                reporting=i == 59,
            )
        for i in range(60):
            for j in range(60):
                if i != j:
                    nfa.add_transition(i, j)
        program = compile_automaton(nfa)
        assert program.mapping.num_fcb_switches >= 1
        assert program.mapping.num_rcb_switches == 0
        assert all(t.mode == "fcb16" for t in program.mapping.tiles)

    def test_diagonal_component_stays_rcb(self):
        nfa = compile_regex_set(["abcdefghij"])
        program = compile_automaton(nfa)
        assert program.mapping.num_fcb_switches == 0

    def test_port_budget_respected(self):
        nfa = compile_regex_set([f"w{i}xyz" for i in range(100)])
        program = compile_automaton(nfa)
        for switch in program.mapping.switches:
            assert switch.in_signals <= GLOBAL_PORTS
            assert switch.out_signals <= GLOBAL_PORTS

    def test_entry_overflow_detected(self):
        nfa = glushkov_nfa("ab")
        program = compile_automaton(nfa)
        big = [
            type(se)(patterns=tuple(range(1, 300)), negated=False)
            for se in program.state_encodings
        ]
        with pytest.raises(MappingError, match="entries"):
            map_automaton(nfa, program.choice.encoding, big)

    def test_placement_units_dense(self):
        nfa = compile_regex_set(["abc", "de+f", "[xy]z"])
        program = compile_automaton(nfa)
        placement = program.placement("cam")
        assert placement.partition_of.min() >= 0
        assert placement.partition_of.max() < placement.num_partitions

    def test_placement_weights_are_entries(self):
        nfa = glushkov_nfa("a[bc]d")
        program = compile_automaton(nfa)
        placement = program.placement("cam")
        assert placement.weights.sum() == program.total_entries


class TestMachineEquivalence:
    PATTERN_SETS = [
        ["(a|b)e*cd+"],
        ["abc", "bcd", "cde"],
        ["a[^b]c", "x+y"],
        ["[a-e]{2,4}x"],
        ["a.b", ".*cd"],
    ]

    @pytest.mark.parametrize("patterns", PATTERN_SETS)
    @pytest.mark.parametrize("variant", ["E", "T"])
    def test_equivalence(self, patterns, variant):
        nfa = compile_regex_set(patterns)
        data = random_text(hash(tuple(patterns)) & 0xFFFF, 300)
        assert_machine_equivalent(nfa, data, variant)

    def test_negated_heavy_automaton(self):
        nfa = compile_regex_set(["[^a]+b", "c[^d]e"])
        assert_machine_equivalent(nfa, random_text(3, 400))

    def test_out_of_alphabet_symbols_no_false_matches(self):
        # alphabet {a, b}; stream contains bytes outside it
        nfa = compile_regex_set(["ab", "ba"])
        data = b"ab\xf0ba\x00abba"
        assert_machine_equivalent(nfa, data)

    def test_multi_entry_states(self):
        # class spanning clusters -> multiple CAM entries per state
        nfa = glushkov_nfa("a[am]c")  # 'a' and 'm' likely cluster apart
        assert_machine_equivalent(nfa, b"aacamcabc" * 10)

    def test_activity_counters_populated(self):
        nfa = compile_regex_set(["abc", "bcd"])
        program = compile_automaton(nfa)
        machine = CamaMachine(program)
        result = machine.run(b"abcd" * 50)
        assert result.activity.num_cycles == 200
        assert result.activity.entries_enabled_sum > 0
        assert result.activity.switches_active_sum > 0

    def test_unknown_variant_rejected(self):
        program = compile_automaton(glushkov_nfa("ab"))
        with pytest.raises(SimulationError):
            CamaMachine(program, variant="X")

    @settings(max_examples=15, deadline=None)
    @given(
        words=st.lists(
            st.text(alphabet="abcd", min_size=1, max_size=5),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(0, 2**16),
    )
    def test_equivalence_property(self, words, seed):
        nfa = compile_regex_set(sorted(set(words)))
        data = random_text(seed, 120, alphabet="abcdz")
        assert_machine_equivalent(nfa, data)

    def test_fixed_32bit_machine_equivalence(self):
        nfa = compile_regex_set(["abc", "d[ef]g"])
        program = CamaCompiler(fixed_32bit=True).compile(nfa)
        machine = CamaMachine(program)
        data = random_text(9, 200, alphabet="abcdefg")
        expected = report_positions(Engine(nfa).run(data).reports)
        assert report_positions(machine.run(data).reports) == expected
