"""The hardware ledger: differential tests against the paper accounting.

The acceptance property: a *served* scan with
``ScanConfig(hardware_ledger=True)`` must return exactly the modeled
energy the offline Fig. 12 accounting computes for the same workload —
``build_design(...)`` + the sparse engine with the build's placement and
``max_reports=0`` (the ``ExperimentContext.stats`` path behind
``repro.experiments.fig12_energy_breakdown``).  The tests here assert
that equality at every layer: probe vs offline, service vs offline,
streamed session vs one-shot scan, and over the wire through the real
TCP server — plus the stats-frame v2 fields, the Prometheus ``metrics``
op (>= 12 distinct series spanning kernel / cache / compile / server),
and counter exactness under many concurrent clients.
"""

import json
import threading

import pytest

from repro.api import ScanConfig
from repro.arch.designs import build_design
from repro.automata import compile_regex_set
from repro.errors import ConfigError
from repro.service import BackgroundServer, MatchingClient, MatchingService
from repro.service.client import RemoteError
from repro.sim.engine import Engine
from repro.telemetry.ledger import (
    HardwareLedger,
    LedgerAccumulator,
    LedgerProbe,
    check_ledger_design,
)
from repro.telemetry.metrics import default_registry

RULES = {"r1": "(a|b)e*cd+", "r2": "abc", "r3": "x+y"}
STREAM = b"aecdabcxxyaecddabcyx" * 40


@pytest.fixture(scope="module")
def ruleset():
    return compile_regex_set(RULES, name="ledger-tests")


def offline_ledger(automaton, data, design="CAMA-E"):
    """The Fig. 12 accounting path, straight-line (no probe, no service)."""
    build = build_design(design, automaton)
    stats = Engine(automaton, backend="sparse").run(
        data, placement=build.placement, max_reports=0
    ).stats
    return build, build.energy(stats), stats


def assert_ledger_matches(ledger, build, energy, stats, rel=1e-12):
    """One ledger (object or wire dict) equals the offline accounting."""
    get = ledger.get if isinstance(ledger, dict) else (
        lambda k: getattr(ledger, k)
    )
    assert get("design") == build.design
    assert get("num_cycles") == stats.num_cycles
    assert get("total_pj") == pytest.approx(energy.total_pj, rel=rel)
    assert get("state_match_pj") == pytest.approx(
        energy.state_match_pj, rel=rel
    )
    assert get("switch_pj") == pytest.approx(
        energy.local_switch_pj + energy.global_switch_pj, rel=rel
    )
    assert get("wire_pj") == pytest.approx(energy.wire_pj, rel=rel, abs=1e-12)
    assert get("encoder_pj") == pytest.approx(energy.encoder_pj, rel=rel)
    freq = build.timing.freq_operated_ghz
    assert get("freq_ghz") == pytest.approx(freq, rel=rel)
    assert get("modeled_latency_s") == pytest.approx(
        stats.num_cycles / (freq * 1e9), rel=rel
    )
    assert get("num_partitions") == build.placement.num_partitions
    assert get("placed_states") == len(build.placement.partition_of)


class TestLedgerCore:
    def test_check_design_rejects_unknown(self):
        assert check_ledger_design("CAMA-E") == "CAMA-E"
        with pytest.raises(ConfigError, match="unknown ledger design"):
            check_ledger_design("CAMA-X")

    def test_probe_requires_sparse_engine(self, ruleset):
        fast = Engine(ruleset, backend="bitparallel")
        with pytest.raises(ConfigError, match="sparse reference kernel"):
            LedgerProbe(ruleset, engine=fast)

    def test_probe_matches_offline_accounting(self, ruleset):
        ledger = LedgerProbe(ruleset, "CAMA-E").run(STREAM)
        build, energy, stats = offline_ledger(ruleset, STREAM)
        assert_ledger_matches(ledger, build, energy, stats)
        fractions = ledger.fractions()
        expected = energy.fractions()
        assert fractions["state_match"] == pytest.approx(
            expected["state_match"]
        )
        assert fractions["switch_wire"] == pytest.approx(
            expected["switch_wire"]
        )
        assert fractions["encoder"] == pytest.approx(expected["encoder"])

    def test_chunked_probe_equals_one_shot(self, ruleset):
        one_shot = LedgerProbe(ruleset, "CAMA-E").run(STREAM)
        chunked_probe = LedgerProbe(ruleset, "CAMA-E")
        for i in range(0, len(STREAM), 97):  # awkward chunk edges
            chunked_probe.feed(STREAM[i : i + 97])
        chunked = chunked_probe.ledger()
        assert chunked.num_cycles == one_shot.num_cycles
        assert chunked.total_pj == pytest.approx(one_shot.total_pj, rel=1e-12)
        assert chunked.state_match_pj == pytest.approx(
            one_shot.state_match_pj, rel=1e-12
        )

    def test_to_dict_is_json_clean(self, ruleset):
        ledger = LedgerProbe(ruleset, "CAMA-T").run(STREAM[:100])
        payload = json.loads(json.dumps(ledger.to_dict()))
        assert payload["design"] == "CAMA-T"
        assert payload["num_cycles"] == 100
        assert payload["total_pj"] > 0
        assert 0 < payload["tile_occupancy"] <= 1
        assert isinstance(payload["counts"], dict)

    def test_render_mentions_breakdown(self, ruleset):
        text = LedgerProbe(ruleset).run(STREAM[:50]).render()
        assert "ledger design=CAMA-E" in text
        assert "state-match" in text and "switch+wire" in text
        assert "occupancy" in text

    def test_accumulator_sums(self, ruleset):
        first = LedgerProbe(ruleset).run(STREAM[:100])
        second = LedgerProbe(ruleset).run(STREAM[100:300])
        totals = LedgerAccumulator()
        totals.add(first)
        totals.add(second)
        assert totals.scans == 2
        assert totals.cycles == first.num_cycles + second.num_cycles
        assert totals.total_pj == pytest.approx(
            first.total_pj + second.total_pj
        )
        assert set(json.loads(json.dumps(totals.to_dict()))) >= {
            "scans",
            "cycles",
            "total_pj",
        }


class TestServiceLedger:
    def test_served_scan_matches_offline(self, ruleset):
        with MatchingService(
            ScanConfig(hardware_ledger=True, num_shards=2)
        ) as service:
            result = service.scan(ruleset, STREAM)
            assert result.ledger is not None
            build, energy, stats = offline_ledger(ruleset, STREAM)
            assert_ledger_matches(result.ledger, build, energy, stats)
            assert service.ledger_totals.scans == 1
            assert service.ledger_totals.total_pj == pytest.approx(
                result.ledger.total_pj
            )

    def test_per_request_override(self, ruleset):
        # deployment config does not ledger; one request asks for it
        with MatchingService() as service:
            plain = service.scan(ruleset, STREAM[:100])
            assert plain.ledger is None and plain.trace is None
            asked = service.scan(
                ruleset,
                STREAM[:100],
                hardware_ledger=True,
                ledger_design="CAMA-T",
                trace=True,
            )
            assert asked.ledger is not None
            assert asked.ledger.design == "CAMA-T"
            assert asked.trace_id is not None
            names = {span.name for span in asked.trace.spans}
            assert "service.scan" in names
            assert "ledger.probe" in names
            assert service.ledger_totals.scans == 1

    def test_bad_design_override_raises(self, ruleset):
        with MatchingService() as service:
            with pytest.raises(ConfigError, match="unknown ledger design"):
                service.scan(
                    ruleset,
                    STREAM[:50],
                    hardware_ledger=True,
                    ledger_design="nope",
                )

    def test_session_ledger_equals_one_shot(self, ruleset):
        with MatchingService(
            ScanConfig(hardware_ledger=True, num_shards=2)
        ) as service:
            scan = service.scan(ruleset, STREAM)
            session = service.open_session(ruleset, "tenant-a")
            for i in range(0, len(STREAM), 173):
                session.feed(STREAM[i : i + 173])
            streamed = session.ledger()
            service.close_session("tenant-a")
            assert streamed.num_cycles == scan.ledger.num_cycles
            assert streamed.total_pj == pytest.approx(
                scan.ledger.total_pj, rel=1e-12
            )
            # both the scan and the closed session folded into totals
            assert service.ledger_totals.scans == 2
            assert service.ledger_totals.total_pj == pytest.approx(
                2 * scan.ledger.total_pj
            )


@pytest.fixture(scope="module")
def harness():
    with BackgroundServer(
        config=ScanConfig(num_shards=2)
    ) as background:
        yield background


class TestServerLedger:
    def test_wire_ledger_matches_offline(self, harness, ruleset):
        with MatchingClient(port=harness.port) as client:
            handle = client.register(RULES)
            result = client.scan(
                handle, STREAM, hardware_ledger=True, trace=True
            )
        assert result.trace_id is not None and len(result.trace_id) == 32
        build, energy, stats = offline_ledger(ruleset, STREAM)
        # the wire ledger crossed JSON; equality up to float repr
        assert_ledger_matches(result.ledger, build, energy, stats, rel=1e-9)

    def test_unledgered_scan_has_no_ledger(self, harness):
        with MatchingClient(port=harness.port) as client:
            handle = client.register(RULES)
            result = client.scan(handle, STREAM[:100])
        assert result.ledger is None and result.trace_id is None

    def test_bad_wire_design_is_bad_request(self, harness):
        with MatchingClient(port=harness.port) as client:
            handle = client.register(RULES)
            with pytest.raises(RemoteError) as err:
                client.scan(
                    handle,
                    STREAM[:50],
                    hardware_ledger=True,
                    ledger_design="nope",
                )
            assert err.value.code == "bad-request"

    def test_session_ledger_over_wire(self, harness, ruleset):
        with MatchingClient(port=harness.port) as client:
            handle = client.register(RULES)
            scan = client.scan(handle, STREAM, hardware_ledger=True)
            session = client.open_session(
                handle, "wire-ledger", hardware_ledger=True
            )
            half = len(STREAM) // 2
            session.feed(STREAM[:half])
            assert session.ledger is not None  # running ledger mid-stream
            assert session.ledger["num_cycles"] == half
            session.feed(STREAM[half:])
            session.close()
        assert session.ledger["num_cycles"] == len(STREAM)
        assert session.ledger["total_pj"] == pytest.approx(
            scan.ledger["total_pj"], rel=1e-9
        )

    def test_stats_frame_v2(self, harness):
        with MatchingClient(port=harness.port) as client:
            handle = client.register(RULES)
            client.scan(handle, STREAM[:100], hardware_ledger=True)
            stats = client.stats()
        assert stats["stats_version"] == 2
        assert stats["telemetry"]["metrics_enabled"] in (True, False)
        assert stats["telemetry"]["hardware_ledger"] is False
        assert stats["ledger"]["scans"] >= 1
        assert stats["ledger"]["total_pj"] > 0

    def test_metrics_endpoint_spans_every_layer(self, harness):
        with MatchingClient(port=harness.port) as client:
            handle = client.register(RULES)
            client.scan(handle, STREAM[:100])
            text = client.metrics()
        families = {
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        }
        assert len(families) >= 12
        for required in (
            "repro_kernel_chunks_total",
            "repro_kernel_chunk_seconds",
            "repro_ruleset_cache_events_total",
            "repro_compile_pass_runs_total",
            "repro_compile_pass_seconds",
            "repro_dispatcher_scans_total",
            "repro_service_scans_total",
            "repro_service_scan_seconds",
            "repro_server_requests_total",
            "repro_server_request_seconds",
            "repro_server_connections_total",
            "repro_server_inflight_frames",
        ):
            assert required in families, required

    def test_many_clients_exact_request_counters(self, harness):
        """Satellite: hammer scan+stats from N concurrent clients.

        The server-side ``repro_server_requests_total`` deltas must be
        exact: every request counted once under op="scan" / op="stats"
        with outcome="ok".
        """
        registry = default_registry()
        requests = registry.counter(
            "repro_server_requests_total",
            "Requests handled, by op and outcome",
            ("op", "outcome"),
        )
        was_enabled = registry.enabled
        registry.enable()
        scans0 = requests.labels("scan", "ok").value
        stats0 = requests.labels("stats", "ok").value
        clients, per_client = 5, 8
        with MatchingClient(port=harness.port) as primer:
            handle = primer.register(RULES)
        failures = []

        def work():
            try:
                with MatchingClient(port=harness.port) as client:
                    for _ in range(per_client):
                        result = client.scan(handle, STREAM[:200])
                        assert result.num_reports > 0
                        payload = client.stats()
                        assert payload["stats_version"] == 2
            except Exception as exc:  # surfaced after join
                failures.append(exc)

        pool = [threading.Thread(target=work) for _ in range(clients)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        try:
            assert not failures, failures
            total = clients * per_client
            assert requests.labels("scan", "ok").value - scans0 == total
            assert requests.labels("stats", "ok").value - stats0 == total
        finally:
            registry.enabled = was_enabled
