"""Tests for SymbolClass: construction, set algebra, ANML parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.automata.symbols import ALPHABET_SIZE, FULL_MASK, SymbolClass
from repro.errors import AutomatonError

symbol_sets = st.frozensets(
    st.integers(min_value=0, max_value=255), max_size=256
)


class TestConstruction:
    def test_from_symbols(self):
        cls = SymbolClass.from_symbols([1, 5, 255])
        assert 1 in cls and 5 in cls and 255 in cls
        assert 2 not in cls
        assert len(cls) == 3

    def test_from_symbols_rejects_out_of_range(self):
        with pytest.raises(AutomatonError):
            SymbolClass.from_symbols([256])
        with pytest.raises(AutomatonError):
            SymbolClass.from_symbols([-1])

    def test_from_bytes_str(self):
        assert SymbolClass.from_bytes("ab") == SymbolClass.from_symbols([97, 98])

    def test_from_bytes_bytes(self):
        assert SymbolClass.from_bytes(b"\x00\xff") == SymbolClass.from_symbols(
            [0, 255]
        )

    def test_from_ranges(self):
        cls = SymbolClass.from_ranges((10, 12), (250, 255))
        assert set(cls) == {10, 11, 12, 250, 251, 252, 253, 254, 255}

    def test_from_ranges_rejects_reversed(self):
        with pytest.raises(AutomatonError):
            SymbolClass.from_ranges((5, 4))

    def test_universe(self):
        assert len(SymbolClass.universe()) == ALPHABET_SIZE

    def test_empty_falsey(self):
        assert not SymbolClass.empty()
        assert SymbolClass.from_symbols([0])


class TestSetAlgebra:
    def test_union_intersection(self):
        a = SymbolClass.from_symbols([1, 2, 3])
        b = SymbolClass.from_symbols([3, 4])
        assert set(a | b) == {1, 2, 3, 4}
        assert set(a & b) == {3}

    def test_difference(self):
        a = SymbolClass.from_symbols([1, 2, 3])
        b = SymbolClass.from_symbols([3])
        assert set(a - b) == {1, 2}

    def test_negate_involution(self):
        a = SymbolClass.from_symbols([0, 100, 255])
        assert a.negate().negate() == a

    def test_negate_size(self):
        a = SymbolClass.from_symbols(range(10))
        assert len(a.negate()) == ALPHABET_SIZE - 10

    def test_issubset(self):
        small = SymbolClass.from_symbols([5])
        big = SymbolClass.from_symbols([5, 6])
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_hashable_and_ordered(self):
        a = SymbolClass.from_symbols([1])
        b = SymbolClass.from_symbols([2])
        assert len({a, b, SymbolClass.from_symbols([1])}) == 2
        assert (a < b) == (a.mask < b.mask)


class TestAnmlParsing:
    def test_star(self):
        assert SymbolClass.parse("*") == SymbolClass.universe()

    def test_single_char(self):
        assert SymbolClass.parse("a") == SymbolClass.from_symbols([ord("a")])

    def test_bracket_list(self):
        assert set(SymbolClass.parse("[abc]")) == {97, 98, 99}

    def test_bracket_range(self):
        assert set(SymbolClass.parse("[a-e]")) == set(range(97, 102))

    def test_bracket_mixed(self):
        assert set(SymbolClass.parse("[a-cz]")) == {97, 98, 99, 122}

    def test_negated(self):
        cls = SymbolClass.parse("[^a]")
        assert len(cls) == 255
        assert ord("a") not in cls

    def test_hex_escape(self):
        assert set(SymbolClass.parse(r"[\x00-\x03]")) == {0, 1, 2, 3}

    def test_escaped_specials(self):
        assert ord("]") in SymbolClass.parse(r"[\]]")
        assert ord("-") in SymbolClass.parse(r"[\-]")
        assert ord("^") in SymbolClass.parse(r"[a\^]")

    def test_trailing_dash_literal(self):
        assert set(SymbolClass.parse("[a-]")) == {ord("a"), ord("-")}

    def test_newline_escape(self):
        assert set(SymbolClass.parse(r"[\n]")) == {10}

    def test_bad_range_rejected(self):
        with pytest.raises(AutomatonError):
            SymbolClass.parse("[z-a]")

    def test_dangling_escape_rejected(self):
        with pytest.raises(AutomatonError):
            SymbolClass.parse("[\\")

    def test_multichar_non_bracket_rejected(self):
        with pytest.raises(AutomatonError):
            SymbolClass.parse("ab")


class TestRendering:
    def test_universe_renders_star(self):
        assert SymbolClass.universe().to_anml() == "*"

    def test_small_class_not_negated(self):
        assert SymbolClass.parse("[abc]").to_anml() == "[a-c]"

    def test_large_class_negated(self):
        rendered = SymbolClass.parse("[^q]").to_anml()
        assert rendered == "[^q]"

    @given(symbol_sets.filter(lambda s: s))
    def test_roundtrip(self, symbols):
        cls = SymbolClass.from_symbols(symbols)
        assert SymbolClass.parse(cls.to_anml()) == cls


@given(symbol_sets, symbol_sets)
def test_union_size_bounds(a_syms, b_syms):
    a = SymbolClass.from_symbols(a_syms)
    b = SymbolClass.from_symbols(b_syms)
    u = a | b
    assert max(len(a), len(b)) <= len(u) <= len(a) + len(b)


@given(symbol_sets)
def test_negation_partitions_alphabet(symbols):
    cls = SymbolClass.from_symbols(symbols)
    assert (cls | cls.negate()).mask == FULL_MASK
    assert not (cls & cls.negate())
