"""RulesetManager two-level caching, artifact-shipping dispatch, and
service-level artifact registration.

Covers the cache-interplay contract: eviction of a live-referenced
engine leaves the caller's engine working; a disk store turns
evictions and process restarts into loads instead of recompiles;
corrupt or version-skewed artifacts fall back to recompilation (never
a wrong answer); spawn workers fed artifact paths scan byte-identically
to serial dispatch; an uploaded artifact seeds the service cache.
"""

import pytest

from repro.automata import compile_regex_set
from repro.compile import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactStore,
    CompiledArtifact,
    compile_ruleset,
)
from repro.service import Dispatcher, MatchingService, RulesetManager
from repro.sim.engine import Engine

RULES_A = {"r1": "(a|b)e*cd+", "r2": "abc"}
RULES_B = {"r1": "x+y", "r2": "qr*s"}
STREAM = b"aecdabcxxyqrrsaecdqs" * 60


def keys_of(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


@pytest.fixture()
def ruleset_a():
    return compile_regex_set(RULES_A, name="cache-a")


@pytest.fixture()
def ruleset_b():
    return compile_regex_set(RULES_B, name="cache-b")


class TestManagerDiskCache:
    def test_restart_loads_instead_of_recompiling(self, ruleset_a, tmp_path):
        store = ArtifactStore(tmp_path)
        first = RulesetManager(store=store)
        reports = first.engine(ruleset_a, "auto").run(STREAM).reports
        assert first.stats.disk_misses == 1
        assert store.contains(first.artifact_key(ruleset_a, "auto"))

        restarted = RulesetManager(store=store)
        engine = restarted.engine(ruleset_a, "auto")
        assert restarted.stats.disk_hits == 1
        assert restarted.stats.disk_misses == 0
        assert keys_of(engine.run(STREAM).reports) == keys_of(reports)

    def test_eviction_of_live_referenced_engine(self, ruleset_a, ruleset_b, tmp_path):
        manager = RulesetManager(capacity=1, store=ArtifactStore(tmp_path))
        live = manager.engine(ruleset_a, "sparse")
        baseline = keys_of(live.run(STREAM).reports)
        manager.engine(ruleset_b, "sparse")  # evicts ruleset_a's entry
        assert manager.stats.evictions == 1
        # the caller's reference keeps working after eviction
        assert keys_of(live.run(STREAM).reports) == baseline
        # re-requesting reloads from disk, not a recompile
        again = manager.engine(ruleset_a, "sparse")
        assert manager.stats.disk_hits == 1
        assert again is not live
        assert keys_of(again.run(STREAM).reports) == baseline

    def test_eviction_without_store_recompiles(self, ruleset_a, ruleset_b):
        manager = RulesetManager(capacity=1)
        live = manager.engine(ruleset_a, "sparse")
        manager.engine(ruleset_b, "sparse")
        again = manager.engine(ruleset_a, "sparse")
        assert again is not live
        assert manager.stats.misses == 3

    def test_version_mismatch_falls_back_to_recompile(self, ruleset_a, tmp_path):
        store = ArtifactStore(tmp_path)
        manager = RulesetManager(store=store)
        baseline = keys_of(
            manager.engine(ruleset_a, "sparse").run(STREAM).reports
        )
        key = manager.artifact_key(ruleset_a, "sparse")
        # rewrite the stored artifact as a future format version
        artifact = CompiledArtifact.load(store.path(key))
        artifact.manifest["format_version"] = ARTIFACT_FORMAT_VERSION + 1
        artifact.save(store.path(key))

        fresh = RulesetManager(store=store)
        engine = fresh.engine(ruleset_a, "sparse")
        assert store.stats.invalid == 1
        assert fresh.stats.disk_misses == 1  # mismatched file = cache miss
        assert keys_of(engine.run(STREAM).reports) == baseline
        # ... and the store was repaired with a readable artifact
        assert CompiledArtifact.load(store.path(key)).validate()

    def test_corrupt_artifact_falls_back_to_recompile(self, ruleset_a, tmp_path):
        store = ArtifactStore(tmp_path)
        manager = RulesetManager(store=store)
        baseline = keys_of(
            manager.engine(ruleset_a, "sparse").run(STREAM).reports
        )
        key = manager.artifact_key(ruleset_a, "sparse")
        path = store.path(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])

        fresh = RulesetManager(store=store)
        engine = fresh.engine(ruleset_a, "sparse")
        assert store.stats.invalid == 1
        assert keys_of(engine.run(STREAM).reports) == baseline

    def test_instance_backends_bypass_disk(self, ruleset_a, tmp_path):
        from repro.sim.backends import SparseBackend

        store = ArtifactStore(tmp_path)
        manager = RulesetManager(store=store)
        manager.engine(ruleset_a, SparseBackend())
        assert len(store) == 0
        assert manager.stats.disk_hits == manager.stats.disk_misses == 0

    def test_program_round_trips_through_store(self, ruleset_a, tmp_path):
        store = ArtifactStore(tmp_path)
        summary = RulesetManager(store=store).program(ruleset_a).summary()
        fresh = RulesetManager(store=store)
        assert fresh.program(ruleset_a).summary() == summary
        assert fresh.stats.disk_hits == 1

    def test_ensure_artifact_serializes_resident_engine(self, ruleset_a, tmp_path):
        # engine compiled while no store was attached; ensure_artifact
        # must serialize it without recompiling
        manager = RulesetManager()
        manager.engine(ruleset_a, "sparse")
        manager.store = ArtifactStore(tmp_path)
        path = manager.ensure_artifact(ruleset_a, "sparse")
        assert path is not None and path.exists()
        assert manager.stats.disk_misses == 0
        loaded = CompiledArtifact.load(path)
        assert keys_of(loaded.engine().run(STREAM).reports) == keys_of(
            Engine(ruleset_a).run(STREAM).reports
        )


class TestArtifactDispatch:
    def test_spawn_workers_load_artifacts(self, ruleset_a, tmp_path):
        manager = RulesetManager(store=ArtifactStore(tmp_path))
        with Dispatcher(ruleset_a, num_shards=2, manager=manager) as serial:
            expected = serial.scan(STREAM, chunk_size=512)
        with Dispatcher(
            ruleset_a,
            num_shards=2,
            workers=2,
            manager=manager,
            mp_start_method="spawn",
        ) as dispatcher:
            assert dispatcher._shard_artifact_blobs() is not None
            result = dispatcher.scan(STREAM, chunk_size=512)
        assert keys_of(result.reports) == keys_of(expected.reports)
        assert result.stats.num_cycles == expected.stats.num_cycles

    def test_tiny_store_budget_survives_shard_eviction(
        self, ruleset_a, tmp_path
    ):
        # a byte budget too small for the combined shard artifacts: the
        # LRU evicts earlier shards while later ones are written, but
        # workers ship *bytes* captured before the eviction, so the
        # pool neither breaks nor depends on the files surviving
        store = ArtifactStore(tmp_path, max_bytes=1)
        manager = RulesetManager(store=store)
        with Dispatcher(ruleset_a, num_shards=2, manager=manager) as serial:
            expected = serial.scan(STREAM, chunk_size=512)
        with Dispatcher(
            ruleset_a,
            num_shards=2,
            workers=2,
            manager=manager,
            mp_start_method="spawn",
        ) as dispatcher:
            blobs = dispatcher._shard_artifact_blobs()
            assert blobs is not None and len(blobs) == 2
            assert store.stats.evictions >= 1  # the budget really bit
            result = dispatcher.scan(STREAM, chunk_size=512)
        assert keys_of(result.reports) == keys_of(expected.reports)

    def test_spawn_without_store_still_correct(self, ruleset_a):
        # no store: the pool falls back to pickled engines
        with Dispatcher(ruleset_a, num_shards=2) as serial:
            expected = serial.scan(STREAM, chunk_size=512)
        with Dispatcher(
            ruleset_a, num_shards=2, workers=2, mp_start_method="spawn"
        ) as dispatcher:
            assert dispatcher._shard_artifact_blobs() is None
            result = dispatcher.scan(STREAM, chunk_size=512)
        assert keys_of(result.reports) == keys_of(expected.reports)


class TestServiceArtifacts:
    def test_register_artifact_seeds_cache(self, ruleset_a):
        compiled = compile_ruleset(ruleset_a, backend="auto")
        artifact = CompiledArtifact.from_compiled(compiled)
        with MatchingService(num_shards=1) as service:
            handle, automaton = service.register_artifact(artifact.to_bytes())
            assert handle == service.manager.fingerprint(ruleset_a)
            result = service.scan(automaton, STREAM)
            # the seeded engine served the scan: no compile happened
            assert service.manager.stats.misses == 0
            assert service.manager.stats.hits >= 1
        with MatchingService(num_shards=1) as fresh:
            expected = fresh.scan(ruleset_a, STREAM)
        assert keys_of(result.reports) == keys_of(expected.reports)

    def test_register_artifact_persists_to_store(self, ruleset_a, tmp_path):
        artifact = CompiledArtifact.from_compiled(
            compile_ruleset(ruleset_a, backend="auto")
        )
        with MatchingService(artifact_store=tmp_path) as service:
            service.register_artifact(artifact)
            assert service.manager.store.contains(artifact.key)

    def test_service_restart_with_store_is_warm(self, ruleset_a, tmp_path):
        with MatchingService(artifact_store=tmp_path) as service:
            expected = service.scan(ruleset_a, STREAM)
        with MatchingService(artifact_store=tmp_path) as restarted:
            result = restarted.scan(ruleset_a, STREAM)
            assert restarted.manager.stats.disk_hits >= 1
            assert restarted.manager.stats.disk_misses == 0
        assert keys_of(result.reports) == keys_of(expected.reports)
