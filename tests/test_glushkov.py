"""Glushkov construction tests, including equivalence with Python's re.

The cross-check: our engine reports at input offset t iff some
(un)anchored match of the pattern ends at t.  We brute-force that oracle
with re.fullmatch over all substrings, which is exact for the regex
subset we support.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.glushkov import compile_regex_set, glushkov_nfa
from repro.automata.nfa import StartKind
from repro.errors import RegexSyntaxError
from repro.sim.engine import Engine


def oracle_end_positions(pattern: str, text: str, anchored: bool) -> set[int]:
    compiled = re.compile(pattern)
    ends = set()
    for t in range(len(text)):
        starts = [0] if anchored else range(t + 1)
        if any(compiled.fullmatch(text, s, t + 1) for s in starts):
            ends.add(t)
    return ends


def engine_end_positions(pattern: str, text: str, anchored: bool) -> set[int]:
    nfa = glushkov_nfa(pattern, anchored=anchored)
    result = Engine(nfa).run(text.encode("latin-1"))
    return {r.cycle for r in result.reports}


PATTERNS = [
    "a",
    "ab",
    "a|b",
    "(a|b)c",
    "a*b",
    "ab*",
    "a+",
    "ab?c",
    "(ab)+",
    "(a|bc)*d",
    "[ab]c",
    "[^a]b",
    "a.c",
    "a{3}",
    "a{1,3}b",
    "(a|b)e*cd+",  # the paper's running example (Fig. 1)
    "x(yz)*",
    "(ab|cd)(e|f)g?",
    "a(b|c)*a",
]
TEXTS = [
    "",
    "a",
    "ab",
    "abc",
    "aab",
    "abab",
    "aecdd",
    "aeecd",
    "becddd",
    "xyzyz",
    "cdfg",
    "aaaab",
    "abcabcabc",
    "bbbb",
    "acbca",
]


class TestAgainstRe:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("anchored", [False, True])
    def test_matches_re(self, pattern, anchored):
        for text in TEXTS:
            if not text:
                continue
            assert engine_end_positions(pattern, text, anchored) == (
                oracle_end_positions(pattern, text, anchored)
            ), f"pattern={pattern!r} text={text!r} anchored={anchored}"


class TestStructure:
    def test_paper_example_has_four_states(self):
        # (a|b)e*cd+ has positions {a, b, e, c, d} -> 5 Glushkov states;
        # the paper's Fig. 1 draws the merged-[ab] ANML form with 4 STEs.
        nfa = glushkov_nfa("(a|b)e*cd+")
        assert len(nfa) == 5

    def test_start_kind_unanchored(self):
        nfa = glushkov_nfa("ab")
        assert nfa.states[0].start is StartKind.ALL_INPUT
        assert nfa.states[1].start is StartKind.NONE

    def test_start_kind_anchored(self):
        nfa = glushkov_nfa("ab", anchored=True)
        assert nfa.states[0].start is StartKind.START_OF_DATA

    def test_reporting_positions(self):
        nfa = glushkov_nfa("ab|c")
        reporting = {s.ste_id for s in nfa.reporting_states()}
        assert reporting == {1, 2}

    def test_star_loops_back(self):
        nfa = glushkov_nfa("(ab)*x")
        # b loops to a
        assert 0 in nfa.successors(1)

    def test_report_code_attached(self):
        nfa = glushkov_nfa("ab", report_code="rule7")
        assert nfa.states[1].report_code == "rule7"
        assert nfa.states[0].report_code is None

    def test_empty_pattern_rejected(self):
        with pytest.raises(RegexSyntaxError):
            glushkov_nfa("")

    def test_epsilon_only_rejected(self):
        with pytest.raises(RegexSyntaxError):
            glushkov_nfa("a{0,0}")

    def test_validates(self):
        glushkov_nfa("(a|b)e*cd+").validate()


class TestRegexSet:
    def test_components_per_pattern(self):
        from repro.automata.analysis import connected_components

        nfa = compile_regex_set(["abc", "de", "f+g"])
        assert len(connected_components(nfa)) == 3

    def test_report_codes_identify_patterns(self):
        nfa = compile_regex_set({"r1": "ab", "r2": "cd"})
        result = Engine(nfa).run(b"abcd")
        assert {r.code for r in result.reports} == {"r1", "r2"}

    def test_empty_set_rejected(self):
        with pytest.raises(RegexSyntaxError):
            compile_regex_set([])


# hypothesis: random literal patterns over a tiny alphabet, fuzzing both
# the parser path and the automaton semantics.
@settings(max_examples=60, deadline=None)
@given(
    words=st.lists(st.text(alphabet="abc", min_size=1, max_size=4), min_size=1, max_size=3),
    text=st.text(alphabet="abc", min_size=1, max_size=12),
)
def test_alternation_of_literals_matches_re(words, text):
    pattern = "|".join(words)
    assert engine_end_positions(pattern, text, False) == oracle_end_positions(
        pattern, text, False
    )


@settings(max_examples=40, deadline=None)
@given(
    prefix=st.text(alphabet="ab", min_size=1, max_size=3),
    suffix=st.text(alphabet="ab", min_size=1, max_size=3),
    text=st.text(alphabet="ab", min_size=1, max_size=10),
)
def test_dotstar_patterns_match_re(prefix, suffix, text):
    pattern = f"{re.escape(prefix)}.*{re.escape(suffix)}"
    assert engine_end_positions(pattern, text, False) == oracle_end_positions(
        pattern, text, False
    )
