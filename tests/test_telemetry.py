"""Unit tests of the telemetry substrate: metrics, traces, logging.

The metrics registry backs instruments inside kernel chunk loops and
the server's frame dispatch, so the tests here pin down the properties
those call sites rely on: exact counts under thread contention, no-op
behavior when disabled, import-order-independent family declaration,
and a well-formed Prometheus text rendering.  The service-level
concurrency test hammers ``MatchingService`` scans (and
``cache_stats``) from many threads and asserts the counters come out
*exact* — the single-lock design's whole claim.
"""

import io
import json
import logging
import sys
import threading

import pytest

from repro.automata import compile_regex_set
from repro.errors import ConfigError
from repro.service import MatchingService
from repro.telemetry.log import JsonFormatter, check_level, configure, get_logger
from repro.telemetry.metrics import (
    MetricsRegistry,
    default_registry,
    render_prometheus,
)
from repro.telemetry.tracing import (
    MAX_SPANS_PER_TRACE,
    Trace,
    current_trace,
    start_trace,
)


# -- metrics ---------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help").labels()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help").labels()
        with pytest.raises(ConfigError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help").labels()
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1.0
        gauge.set(7)
        assert gauge.value == 7.0

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h_seconds", "help", buckets=(0.1, 1.0)
        ).labels()
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.05)
        assert histogram.bucket_counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf

    def test_labels_cache_children(self):
        registry = MetricsRegistry()
        family = registry.counter("by_backend_total", "help", ("backend",))
        assert family.labels("sparse") is family.labels("sparse")
        family.labels("sparse").inc()
        family.labels("bitparallel").inc(2)
        assert family.labels("sparse").value == 1.0
        assert family.labels("bitparallel").value == 2.0

    def test_label_arity_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("arity_total", "help", ("a", "b"))
        with pytest.raises(ConfigError, match="takes labels"):
            family.labels("only-one")

    def test_redeclare_same_family_returns_existing(self):
        # import order must never matter: two modules declaring the
        # same family get the same object
        registry = MetricsRegistry()
        first = registry.counter("shared_total", "help", ("k",))
        second = registry.counter("shared_total", "other help", ("k",))
        assert first is second

    def test_redeclare_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("clash_total", "help", ("k",))
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge("clash_total", "help", ("k",))
        with pytest.raises(ConfigError, match="already registered"):
            registry.counter("clash_total", "help", ("other",))

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError, match="invalid metric"):
            registry.counter("has space", "help")
        with pytest.raises(ConfigError, match="invalid metric"):
            registry.counter("ok_total", "help", ("bad-label",))

    def test_disabled_registry_is_a_no_op(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total", "help").labels()
        gauge = registry.gauge("g", "help").labels()
        histogram = registry.histogram("h_seconds", "help").labels()
        counter.inc()
        gauge.set(5)
        histogram.observe(1.0)
        assert counter.value == 0.0
        assert gauge.value == 0.0
        assert histogram.count == 0
        registry.enable()
        counter.inc()
        assert counter.value == 1.0

    def test_default_registry_is_process_wide(self):
        assert default_registry() is default_registry()

    def test_thread_hammer_exact_counts(self):
        """N threads x M increments never lose an update."""
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", "help").labels()
        histogram = registry.histogram(
            "hammer_seconds", "help", buckets=(0.5,)
        ).labels()
        threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                counter.inc()
                histogram.observe(0.1)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value == threads * per_thread
        assert histogram.count == threads * per_thread
        assert histogram.bucket_counts[0] == threads * per_thread


class TestPrometheusRendering:
    def test_text_format(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests", ("op",)).labels("scan").inc(3)
        registry.gauge("depth", "Queue depth").labels().set(2)
        hist = registry.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        hist.labels().observe(0.05)
        hist.labels().observe(0.5)
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE req_total counter" in lines
        assert 'req_total{op="scan"} 3' in lines
        assert "depth 2" in lines
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "lat_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_default_registry_covers_every_layer(self):
        # importing the serving stack declares the built-in families;
        # the catalog must span kernel, cache, compile, service and
        # server layers (the >=12-series acceptance floor lives in
        # tests/test_ledger.py against a live server)
        import repro.service.server  # noqa: F401  (declares server metrics)

        families = default_registry().collect().keys()
        for prefix in (
            "repro_kernel_",
            "repro_ruleset_cache_",
            "repro_compile_",
            "repro_dispatcher_",
            "repro_service_",
            "repro_session_",
            "repro_server_",
        ):
            assert any(name.startswith(prefix) for name in families), prefix


class TestServiceCounterExactness:
    def test_concurrent_scans_exact_cache_counters(self):
        """Satellite: hammer one service from N threads; counters exact.

        Both rulesets are primed first, so every threaded scan is a
        dispatcher-cache hit; the ``repro_service_scans_total`` deltas
        must come out exact — no lost updates, no double counts.
        ``cache_stats`` is read concurrently from a spectator thread to
        make sure reading never tears or deadlocks.
        """
        registry = default_registry()
        scans = registry.counter(
            "repro_service_scans_total",
            "One-shot service scans, by dispatcher-cache outcome",
            ("cached",),
        )
        rulesets = [
            compile_regex_set({"r1": "abc"}, name="hammer-a"),
            compile_regex_set({"r1": "xy+z"}, name="hammer-b"),
        ]
        threads, per_thread = 6, 10
        service = MatchingService()
        for ruleset in rulesets:  # compile both outside the race
            service.scan(ruleset, b"abcxyz")
        hits0 = scans.labels("hit").value
        misses0 = scans.labels("miss").value
        stats = service.cache_stats
        compiles0 = (stats.hits, stats.misses)
        stop = threading.Event()
        snapshots = []

        def spectate():
            while not stop.is_set():
                current = service.cache_stats
                snapshots.append((current.hits, current.misses))

        def work(index):
            for i in range(per_thread):
                service.scan(rulesets[(index + i) % 2], b"abcxyz" * 10)

        spectator = threading.Thread(target=spectate)
        spectator.start()
        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        stop.set()
        spectator.join()
        total = threads * per_thread
        assert scans.labels("hit").value - hits0 == total
        assert scans.labels("miss").value - misses0 == 0
        # warm scans never touch the compile-level cache
        stats = service.cache_stats
        assert (stats.hits, stats.misses) == compiles0
        # ledger totals untouched: no scan asked for the ledger
        assert service.ledger_totals.scans == 0
        # spectator snapshots never exceed the final counts
        assert all(
            h <= stats.hits and m <= stats.misses for h, m in snapshots
        )
        service.close()


# -- tracing ---------------------------------------------------------------


class TestTracing:
    def test_span_nesting(self):
        trace = Trace()
        with trace.span("outer", a=1):
            with trace.span("inner"):
                pass
        assert [s.name for s in trace.spans] == ["inner", "outer"]
        inner, outer = trace.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.attrs == {"a": 1}
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_add_span_attaches_pretimed_work(self):
        trace = Trace()
        with trace.span("parent"):
            trace.add_span("compile.map", 0.25, entries=10)
        child = next(s for s in trace.spans if s.name == "compile.map")
        assert child.duration_s == 0.25
        assert child.parent_id is not None
        assert child.attrs == {"entries": 10}

    def test_contextvar_propagation(self):
        assert current_trace() is None
        with start_trace() as trace:
            assert current_trace() is trace
            with start_trace(Trace("a" * 32)) as nested:
                assert current_trace() is nested
            assert current_trace() is trace
        assert current_trace() is None

    def test_span_cap_counts_dropped(self):
        trace = Trace()
        for _ in range(MAX_SPANS_PER_TRACE + 5):
            with trace.span("s"):
                pass
        assert len(trace.spans) == MAX_SPANS_PER_TRACE
        assert trace.dropped == 5
        assert f"{trace.dropped} span(s) dropped" in trace.render()

    def test_merge_child_reparents(self):
        parent = Trace()
        with parent.span("scan") as root:
            pass
        child = Trace()
        with child.span("chunk"):
            pass
        parent.merge_child(child, root.span_id)
        merged = next(s for s in parent.spans if s.name == "chunk")
        assert merged.parent_id == root.span_id
        # ids were offset, not collided
        assert len({s.span_id for s in parent.spans}) == len(parent.spans)

    def test_roundtrip_and_render(self):
        trace = Trace()
        with trace.span("scan", bytes=100):
            with trace.span("shard", shard=0):
                pass
        copy = Trace.from_dict(trace.to_dict())
        assert copy.trace_id == trace.trace_id
        assert [s.name for s in copy.spans] == [s.name for s in trace.spans]
        rendered = copy.render()
        assert rendered.splitlines()[0] == f"trace {trace.trace_id}"
        assert "- scan" in rendered and "- shard" in rendered
        assert "[shard=0]" in rendered


# -- structured logging ----------------------------------------------------


@pytest.fixture
def log_stream():
    stream = io.StringIO()
    handler = configure("debug", stream=stream)
    yield stream
    logging.getLogger("repro").removeHandler(handler)


class TestStructuredLogging:
    def read(self, stream):
        return [json.loads(line) for line in stream.getvalue().splitlines()]

    def test_json_lines(self, log_stream):
        log = get_logger("repro.test")
        log.info("thing.happened", count=3, name="x")
        (record,) = self.read(log_stream)
        assert record["event"] == "thing.happened"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["count"] == 3 and record["name"] == "x"
        assert isinstance(record["ts"], float)

    def test_trace_id_attached_from_context(self, log_stream):
        log = get_logger("repro.test")
        with start_trace() as trace:
            log.info("traced.event")
        log.info("untraced.event")
        traced, untraced = self.read(log_stream)
        assert traced["trace_id"] == trace.trace_id
        assert "trace_id" not in untraced

    def test_level_filtering(self, log_stream):
        logging.getLogger("repro").setLevel(logging.WARNING)
        log = get_logger("repro.test")
        log.debug("quiet")
        log.info("quiet")
        log.warning("loud")
        records = self.read(log_stream)
        assert [r["event"] for r in records] == ["loud"]

    def test_configure_replaces_own_handler(self):
        first = configure("info", stream=io.StringIO())
        second = configure("info", stream=io.StringIO())
        try:
            installed = [
                h
                for h in logging.getLogger("repro").handlers
                if getattr(h, "_repro_telemetry", False)
            ]
            assert installed == [second]
            assert first not in logging.getLogger("repro").handlers
        finally:
            logging.getLogger("repro").removeHandler(second)

    def test_check_level_rejects_junk(self):
        assert check_level("WARNING") == logging.WARNING
        with pytest.raises(ConfigError, match="unknown log level"):
            check_level("chatty")

    def test_exception_field(self):
        formatter = JsonFormatter()
        try:
            raise ValueError("boom")
        except ValueError:
            record = logging.LogRecord(
                "repro.test",
                logging.ERROR,
                __file__,
                1,
                "it.broke",
                None,
                exc_info=sys.exc_info(),
            )
        payload = json.loads(formatter.format(record))
        assert payload["exception"] == "ValueError('boom')"
