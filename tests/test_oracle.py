"""Differential property tests: every engine vs the naive oracle.

``oracle.py`` holds a set-of-states reference simulator with no CSR, no
bit-packing, no striding and no sharding.  These tests generate
randomized regexes, randomized structural automata and profile-matched
workload automata, run random inputs through every production execution
path — ``Engine`` on both backends, chunked resumable execution, the
sharded ``Dispatcher``, the ``MatchingService`` facade and the 2-stride
``StridedEngine`` on both strategies — and assert report-for-report
equality against the oracle.  New kernels join the suite by appearing
in ``ENGINE_FACTORIES`` below.
"""

import random

import pytest

from oracle import NfaOracle, oracle_run
from repro.automata.glushkov import compile_regex_set
from repro.automata.striding import pad_input, stride2
from repro.service import Dispatcher, MatchingService
from repro.sim.engine import Engine, StridedEngine
from repro.workloads import BENCHMARK_NAMES, get_benchmark
from test_backends import random_automaton, random_chunks, random_input

TEST_SCALE = 1.0 / 64.0

#: every non-strided execution path under differential test, by name
#: ("native" degrades to the pure-numpy kernel on compiler-less hosts,
#: so it is always safe to include)
ENGINE_FACTORIES = {
    "sparse": lambda nfa: Engine(nfa, backend="sparse"),
    "bitparallel": lambda nfa: Engine(nfa, backend="bitparallel"),
    "native": lambda nfa: Engine(nfa, backend="native"),
    "auto": lambda nfa: Engine(nfa, backend="auto"),
}


def full_keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def position_keys(reports):
    return [(r.cycle, r.state_id) for r in reports]


# -- randomized regex workloads -------------------------------------------

ALPHABET = "abcd"


def random_regex(rng: random.Random, depth: int = 0) -> str:
    """A random pattern in the repo's regex subset, kept small enough
    that its 2-strided automaton stays tractable."""
    if depth >= 3 or rng.random() < 0.4:
        roll = rng.random()
        if roll < 0.6:
            return rng.choice(ALPHABET)
        if roll < 0.75:
            members = "".join(
                sorted(rng.sample(ALPHABET, rng.randint(1, 3)))
            )
            return f"[{members}]"
        if roll < 0.85:
            return f"[^{rng.choice(ALPHABET)}]"
        return "."
    roll = rng.random()
    if roll < 0.45:
        return "".join(
            random_regex(rng, depth + 1) for _ in range(rng.randint(2, 3))
        )
    if roll < 0.65:
        return (
            f"({random_regex(rng, depth + 1)}|{random_regex(rng, depth + 1)})"
        )
    inner = random_regex(rng, depth + 1)
    quantifier = rng.choice(["*", "+", "?", "{2}", "{1,3}"])
    return f"({inner}){quantifier}"


def random_ruleset(rng: random.Random):
    rules = {
        f"r{i}": random_regex(rng) for i in range(rng.randint(1, 4))
    }
    return rules, compile_regex_set(rules, name="oracle-prop")


def regex_input(rng: random.Random, length: int) -> bytes:
    # biased to the pattern alphabet so matches actually happen
    pool = (ALPHABET * 3) + "xyz"
    return bytes(ord(rng.choice(pool)) for _ in range(length))


class TestRandomRegexesAgainstOracle:
    """Randomized regex rulesets x random inputs, every execution path."""

    @pytest.mark.parametrize("seed", range(25))
    def test_engines_match_oracle(self, seed):
        rng = random.Random(seed)
        _, nfa = random_ruleset(rng)
        data = regex_input(rng, rng.randint(0, 250))
        expected = oracle_run(nfa, data)
        for name, factory in ENGINE_FACTORIES.items():
            result = factory(nfa).run(data)
            assert full_keys(result.reports) == full_keys(expected.reports), name
            assert result.stats.num_reports == expected.num_reports, name
            assert result.stats.num_cycles == expected.num_cycles, name
            assert (
                result.stats.enabled_states_sum == expected.enabled_states_sum
            ), name
            assert (
                result.stats.active_states_sum == expected.active_states_sum
            ), name

    @pytest.mark.parametrize("seed", range(12))
    def test_chunked_execution_matches_oracle(self, seed):
        rng = random.Random(100 + seed)
        _, nfa = random_ruleset(rng)
        data = regex_input(rng, rng.randint(1, 250))
        expected = oracle_run(nfa, data)
        for backend in ("sparse", "bitparallel"):
            engine = Engine(nfa, backend=backend)
            state = engine.initial_state()
            reports = []
            for chunk in random_chunks(rng, data):
                reports.extend(engine.run_chunk(chunk, state).reports)
            assert full_keys(reports) == full_keys(expected.reports), backend

    @pytest.mark.parametrize("seed", range(10))
    def test_sharded_dispatch_matches_oracle(self, seed):
        rng = random.Random(200 + seed)
        _, nfa = random_ruleset(rng)
        data = regex_input(rng, rng.randint(1, 250))
        expected = oracle_run(nfa, data)
        dispatcher = Dispatcher(nfa, num_shards=rng.randint(1, 3))
        result = dispatcher.scan(data, chunk_size=rng.randint(1, 64))
        assert full_keys(result.reports) == full_keys(expected.reports)
        assert result.stats.num_reports == expected.num_reports

    @pytest.mark.parametrize("seed", range(6))
    def test_service_scan_matches_oracle(self, seed):
        rng = random.Random(300 + seed)
        _, nfa = random_ruleset(rng)
        data = regex_input(rng, rng.randint(1, 250))
        expected = oracle_run(nfa, data)
        with MatchingService(num_shards=2, chunk_size=37) as service:
            result = service.scan(nfa, data)
        assert full_keys(result.reports) == full_keys(expected.reports)

    @pytest.mark.parametrize("seed", range(12))
    def test_strided_engines_match_oracle(self, seed):
        """stride2 x {sparse, bitparallel} vs the (unstrided) oracle.

        Strided reports carry the original automaton's state id but no
        code, and the input is padded to even length — so compare
        (cycle, state) pairs below the unpadded length.
        """
        rng = random.Random(400 + seed)
        _, nfa = random_ruleset(rng)
        data = regex_input(rng, rng.randint(1, 120))
        expected = [
            key
            for key in position_keys(oracle_run(nfa, data).reports)
        ]
        strided = stride2(nfa)
        padded = pad_input(data)
        for strategy in ("sparse", "bitparallel"):
            result = StridedEngine(strided, backend=strategy).run(padded)
            got = [
                (cycle, state)
                for cycle, state in position_keys(result.reports)
                if cycle < len(data)
            ]
            assert got == expected, strategy


class TestRandomStructuresAgainstOracle:
    """Random structural automata (not regex-shaped) vs the oracle."""

    @pytest.mark.parametrize("seed", range(15))
    def test_engines_match_oracle(self, seed):
        rng = random.Random(5000 + seed)
        nfa = random_automaton(rng, rng.randint(1, 70))
        data = random_input(rng, rng.randint(0, 250))
        expected = oracle_run(nfa, data)
        for name, factory in ENGINE_FACTORIES.items():
            result = factory(nfa).run(data)
            assert full_keys(result.reports) == full_keys(expected.reports), name
            assert (
                result.stats.enabled_states_sum == expected.enabled_states_sum
            ), name
            assert (
                result.stats.active_states_sum == expected.active_states_sum
            ), name

    @pytest.mark.parametrize("seed", range(8))
    def test_oracle_is_resumable_by_construction(self, seed):
        """Slicing the input and re-running equals the engines' chunked
        path — i.e. the oracle really is the chunk-free ground truth."""
        rng = random.Random(6000 + seed)
        nfa = random_automaton(rng, rng.randint(2, 50))
        data = random_input(rng, 200)
        expected = oracle_run(nfa, data)
        engine = Engine(nfa, backend="sparse")
        state = engine.initial_state()
        reports = []
        for chunk in random_chunks(rng, data):
            reports.extend(engine.run_chunk(chunk, state).reports)
        assert full_keys(reports) == full_keys(expected.reports)


class TestWorkloadsAgainstOracle:
    """Profile-matched workload-generator automata vs the oracle."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark_matches_oracle(self, name):
        bench = get_benchmark(name, scale=TEST_SCALE)
        data = bench.input_stream(250)
        expected = oracle_run(bench.automaton, data)
        for backend in ("sparse", "bitparallel"):
            result = Engine(bench.automaton, backend=backend).run(data)
            assert full_keys(result.reports) == full_keys(
                expected.reports
            ), backend
            assert result.stats.num_reports == expected.num_reports

    @pytest.mark.parametrize("name", ["Snort", "Ranges1", "BlockRings"])
    def test_benchmark_sharded_matches_oracle(self, name):
        bench = get_benchmark(name, scale=TEST_SCALE)
        data = bench.input_stream(250)
        expected = oracle_run(bench.automaton, data)
        result = Dispatcher(bench.automaton, num_shards=4).scan(
            data, chunk_size=61
        )
        assert full_keys(result.reports) == full_keys(expected.reports)


class TestOracleSelfChecks:
    """The oracle itself behaves like the documented semantics."""

    def test_start_of_data_fires_on_first_symbol_only(self):
        nfa = compile_regex_set({"r": "ab"}, name="sod", anchored=True)
        result = oracle_run(nfa, b"abab")
        assert full_keys(result.reports) == [(1, 1, "r")]

    def test_reports_are_cycle_then_state_ordered(self):
        nfa = compile_regex_set({"ra": "a", "rb": "[ab]"}, name="two")
        result = oracle_run(nfa, b"aa")
        cycles_states = position_keys(result.reports)
        assert cycles_states == sorted(cycles_states)

    def test_empty_input_is_empty_result(self):
        nfa = compile_regex_set({"r": "a"}, name="empty")
        result = oracle_run(nfa, b"")
        assert result.reports == []
        assert result.num_cycles == 0

    def test_oracle_reuse_is_stateless(self):
        oracle = NfaOracle(compile_regex_set({"r": "ab"}, name="reuse"))
        first = oracle.run(b"abab")
        second = oracle.run(b"abab")
        assert full_keys(first.reports) == full_keys(second.reports)
