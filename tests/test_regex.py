"""Tests for the regex parser."""

import pytest

from repro.automata.regex import (
    Alt,
    Concat,
    Epsilon,
    Optional_,
    Plus,
    Star,
    Symbol,
    literal,
    parse_regex,
)
from repro.automata.symbols import SymbolClass
from repro.errors import RegexSyntaxError


class TestAtoms:
    def test_single_literal(self):
        node = parse_regex("a")
        assert isinstance(node, Symbol)
        assert set(node.symbol_class) == {ord("a")}

    def test_dot_is_universe(self):
        node = parse_regex(".")
        assert node.symbol_class == SymbolClass.universe()

    def test_bracket_class(self):
        node = parse_regex("[a-c]")
        assert set(node.symbol_class) == {97, 98, 99}

    def test_negated_class(self):
        node = parse_regex("[^a-c]")
        assert len(node.symbol_class) == 253

    def test_shorthand_digit(self):
        node = parse_regex(r"\d")
        assert set(node.symbol_class) == set(range(48, 58))

    def test_shorthand_negated(self):
        node = parse_regex(r"\D")
        assert len(node.symbol_class) == 246

    def test_shorthand_word_and_space(self):
        assert ord("_") in parse_regex(r"\w").symbol_class
        assert ord(" ") in parse_regex(r"\s").symbol_class

    def test_hex_escape(self):
        node = parse_regex(r"\x41")
        assert set(node.symbol_class) == {0x41}

    def test_escaped_metachar(self):
        node = parse_regex(r"\*")
        assert set(node.symbol_class) == {ord("*")}

    def test_class_shorthand_inside_bracket(self):
        node = parse_regex(r"[\d_]")
        assert set(node.symbol_class) == set(range(48, 58)) | {ord("_")}


class TestOperators:
    def test_concat(self):
        node = parse_regex("ab")
        assert isinstance(node, Concat)
        assert len(node.parts) == 2

    def test_alternation(self):
        node = parse_regex("a|b|c")
        assert isinstance(node, Alt)
        assert len(node.options) == 3

    def test_star_plus_optional(self):
        assert isinstance(parse_regex("a*"), Star)
        assert isinstance(parse_regex("a+"), Plus)
        assert isinstance(parse_regex("a?"), Optional_)

    def test_grouping(self):
        node = parse_regex("(ab)+")
        assert isinstance(node, Plus)
        assert isinstance(node.child, Concat)

    def test_empty_alternative(self):
        node = parse_regex("a|")
        assert isinstance(node, Alt)
        assert isinstance(node.options[1], Epsilon)

    def test_precedence_alt_weakest(self):
        node = parse_regex("ab|cd")
        assert isinstance(node, Alt)

    def test_double_quantifier(self):
        node = parse_regex("a*?")  # parsed as (a*)? — no lazy semantics
        assert isinstance(node, Optional_)


class TestCountedRepetition:
    def test_exact(self):
        node = parse_regex("a{3}")
        assert isinstance(node, Concat)
        assert len(node.parts) == 3

    def test_range(self):
        node = parse_regex("a{2,4}")
        assert isinstance(node, Concat)
        assert len(node.parts) == 4
        assert isinstance(node.parts[2], Optional_)
        assert isinstance(node.parts[3], Optional_)

    def test_open_ended(self):
        node = parse_regex("a{2,}")
        assert isinstance(node, Concat)
        assert isinstance(node.parts[-1], Plus)

    def test_zero_min_open(self):
        assert isinstance(parse_regex("a{0,}"), Star)

    def test_zero_zero(self):
        assert isinstance(parse_regex("a{0,0}"), Epsilon)

    def test_reversed_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a{4,2}")

    def test_huge_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a{100000}")


class TestErrors:
    @pytest.mark.parametrize(
        "pattern",
        ["(", ")", "a)", "(a", "[", "[a", "*", "+a|*", "a{", "a{2,", r"\x4g", ""],
    )
    def test_rejected(self, pattern):
        if pattern == "":
            # empty pattern parses to Epsilon; glushkov rejects it later
            from repro.automata.regex import Epsilon as Eps

            assert isinstance(parse_regex(""), Eps)
        else:
            with pytest.raises(RegexSyntaxError):
                parse_regex(pattern)

    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as info:
            parse_regex("ab(cd")
        assert info.value.position >= 2


class TestLiteral:
    def test_literal_escapes_nothing(self):
        node = literal("a*b")
        assert isinstance(node, Concat)
        assert len(node.parts) == 3
        assert set(node.parts[1].symbol_class) == {ord("*")}

    def test_literal_bytes(self):
        node = literal(b"\x00\xff")
        assert set(node.parts[0].symbol_class) == {0}
        assert set(node.parts[1].symbol_class) == {255}

    def test_single_char(self):
        assert isinstance(literal("x"), Symbol)

    def test_empty(self):
        assert isinstance(literal(""), Epsilon)
