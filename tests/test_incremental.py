"""Incremental compilation + versioned ruleset hot-swap.

Three layers under test:

* the compile layer — component fingerprints, composition keys, the
  :class:`IncrementalCompiler`'s reuse accounting, and the oracle
  property that a composed scan is byte-identical to a cold compile;
* the store layer — composition manifests and eviction pins;
* the service/server layers — versioned live rulesets: in-flight
  sessions finish on the engine they opened against while new scans
  bind the hot-swapped version.
"""

import random

import pytest

from repro.api.config import ScanConfig
from repro.automata import compile_regex_set
from repro.automata.analysis import (
    balanced_component_groups,
    balanced_shards,
    connected_components,
)
from repro.compile import (
    ArtifactStore,
    IncrementalCompiler,
    PipelineOptions,
    apply_update,
    component_fingerprint,
    composition_key,
    incremental_compile,
    ruleset_fingerprint,
)
from repro.errors import ConfigError
from repro.service import MatchingService
from repro.sim.engine import Engine
from tests.oracle import oracle_run

RULES = {
    "r1": "ab+c",
    "r2": "de*f",
    "r3": "(gh|ij)k",
    "r4": "lm?n",
}
STREAM = b"zabbcxdefxyzghkijkxlmnlnxdf" * 40

#: a pattern pool for randomized rulesets (kept start-anchor-free so
#: every pattern yields its own reporting component)
POOL = [
    "ab+c",
    "de*f",
    "(gh|ij)k",
    "lm?n",
    "xy+z",
    "(p|q)r+s",
    "tu{2,4}v",
    "w[abc]x",
]


def report_keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def ruleset(rules, name="ruleset"):
    return compile_regex_set(rules, name=name)


# -- fingerprints ----------------------------------------------------------


class TestComponentFingerprints:
    def test_component_fingerprint_equals_subautomaton_fingerprint(self):
        automaton = ruleset(RULES)
        options = PipelineOptions(backend="sparse")
        for comp in connected_components(automaton):
            sub = automaton.subautomaton(comp)
            assert component_fingerprint(
                automaton, comp, options
            ) == ruleset_fingerprint(sub, options)
            # and the no-options form agrees too
            assert component_fingerprint(automaton, comp) == (
                ruleset_fingerprint(sub)
            )

    def test_component_fingerprints_survive_pattern_reordering(self):
        rng = random.Random(7)
        for _trial in range(10):
            picked = rng.sample(POOL, rng.randint(2, len(POOL)))
            rules = {f"r{i}": p for i, p in enumerate(picked)}
            shuffled_items = list(rules.items())
            rng.shuffle(shuffled_items)
            a = ruleset(rules)
            b = ruleset(dict(shuffled_items))

            def keys(automaton):
                return sorted(
                    component_fingerprint(automaton, comp)
                    for comp in connected_components(automaton)
                )

            assert keys(a) == keys(b)

    def test_composition_key_is_order_independent(self):
        rng = random.Random(13)
        keys = [f"{i:064x}" for i in range(9)]
        baseline = composition_key(keys)
        for _trial in range(20):
            shuffled = list(keys)
            rng.shuffle(shuffled)
            assert composition_key(shuffled) == baseline
        # but not content-independent
        assert composition_key(keys[:-1]) != baseline
        assert composition_key(keys + keys[:1]) != baseline

    def test_composition_key_tracks_options(self):
        automaton = ruleset(RULES)
        comps = connected_components(automaton)
        sparse = composition_key(
            component_fingerprint(automaton, c, PipelineOptions(backend="sparse"))
            for c in comps
        )
        bitp = composition_key(
            component_fingerprint(
                automaton, c, PipelineOptions(backend="bitparallel")
            )
            for c in comps
        )
        assert sparse != bitp


# -- the incremental compiler ----------------------------------------------


class TestIncrementalCompiler:
    def test_rejects_optimizing_and_strided_options(self):
        with pytest.raises(ConfigError, match="incremental"):
            IncrementalCompiler(options=PipelineOptions(optimize=True))
        with pytest.raises(ConfigError, match="incremental"):
            IncrementalCompiler(options=PipelineOptions(stride=2))

    def test_cold_then_single_pattern_change_reuses_the_rest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        compiler = IncrementalCompiler(store)
        v1 = compiler.compile(ruleset(RULES))
        assert v1.compiled_components == 4
        assert v1.reused_components == 0
        v2_rules = dict(RULES, r5="xy+z")
        v2 = compiler.compile(ruleset(v2_rules))
        assert v2.reused_components == 4
        assert v2.compiled_components == 1
        # a removal compiles nothing at all
        v3 = compiler.compile(
            ruleset({k: v for k, v in v2_rules.items() if k != "r1"})
        )
        assert v3.compiled_components == 0
        assert v3.reused_components == 4

    def test_disk_cache_survives_process_restart(self, tmp_path):
        store = ArtifactStore(tmp_path)
        incremental_compile(ruleset(RULES), store=store)
        # a fresh compiler (fresh in-memory LRU) hits the disk
        fresh = IncrementalCompiler(ArtifactStore(tmp_path))
        composed = fresh.compile(ruleset(RULES))
        assert composed.reused_components == 4
        assert fresh.stats.reused_disk == 4
        assert fresh.stats.compiled == 0

    def test_manifest_is_persisted_and_readable(self, tmp_path):
        store = ArtifactStore(tmp_path)
        composed = incremental_compile(ruleset(RULES), store=store)
        manifest = store.get_manifest(composed.key)
        assert manifest is not None
        assert manifest["composition_key"] == composed.composition_key
        assert manifest["ruleset_fingerprint"] == composed.fingerprint
        assert sorted(c["key"] for c in manifest["components"]) == sorted(
            composed.component_keys
        )
        assert store.manifest_keys() == [composed.key]
        # manifests are sidecars, not artifacts: the npz key listing
        # holds exactly the four component artifacts
        assert len(store.keys()) == 4

    def test_parallel_fanout_matches_serial(self, tmp_path):
        serial = IncrementalCompiler(ArtifactStore(tmp_path / "serial"))
        fanned = IncrementalCompiler(ArtifactStore(tmp_path / "fanned"))
        a = ruleset(RULES)
        one = serial.compile(a, workers=1)
        many = fanned.compile(a, workers=2)
        assert sorted(one.component_keys) == sorted(many.component_keys)
        assert one.key == many.key
        assert one.composition_key == many.composition_key

    def test_key_matches_classic_artifact_key(self):
        from repro.compile import compile_ruleset

        options = PipelineOptions(backend="sparse")
        automaton = ruleset(RULES)
        composed = IncrementalCompiler(options=options).compile(automaton)
        assert composed.key == compile_ruleset(automaton, options).key


# -- oracle differential: composed == cold == naive ------------------------


class TestComposedOracle:
    @pytest.mark.parametrize("backend", ["sparse", "bitparallel", "auto"])
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_composed_scan_equals_cold_compile(self, backend, num_shards):
        automaton = ruleset(RULES)
        options = PipelineOptions(backend=backend)
        composed = IncrementalCompiler(options=options).compile(automaton)
        shards, engines = composed.build_shards(num_shards)
        from repro.service.sharding import Dispatcher

        incremental = Dispatcher(
            automaton,
            ScanConfig(backend=backend, num_shards=num_shards),
            prebuilt=(shards, engines),
        ).scan(STREAM)
        cold = Dispatcher(
            automaton, ScanConfig(backend=backend, num_shards=num_shards)
        ).scan(STREAM)
        assert report_keys(incremental.reports) == report_keys(cold.reports)

    def test_incremental_recompile_equals_oracle(self):
        rng = random.Random(99)
        compiler = IncrementalCompiler()
        rules = {f"r{i}": p for i, p in enumerate(POOL[:4])}
        for trial in range(6):
            # random edit: add or remove one pattern each round
            if len(rules) > 2 and rng.random() < 0.4:
                rules.pop(rng.choice(sorted(rules)))
            else:
                new = rng.choice(POOL)
                rules[f"t{trial}"] = new
            automaton = ruleset(rules)
            composed = compiler.compile(automaton)
            shards, engines = composed.build_shards(2)
            from repro.service.sharding import Dispatcher

            result = Dispatcher(
                automaton,
                ScanConfig(num_shards=2),
                prebuilt=(shards, engines),
            ).scan(STREAM)
            naive = oracle_run(automaton, STREAM)
            assert report_keys(result.reports) == report_keys(naive.reports)

    def test_group_union_matches_balanced_shards(self):
        rng = random.Random(41)
        for _trial in range(15):
            components = [
                sorted(
                    rng.sample(range(1000), rng.randint(1, 12))
                )
                for _ in range(rng.randint(1, 9))
            ]
            for num_shards in (1, 2, 3, 5):
                flat = balanced_shards(components, num_shards)
                grouped = balanced_component_groups(components, num_shards)
                assert [
                    sorted(x for i in group for x in components[i])
                    for group in grouped
                ] == flat


# -- ruleset edits ---------------------------------------------------------


class TestApplyUpdate:
    def test_add_and_remove(self):
        automaton = ruleset(RULES)
        updated = apply_update(automaton, add={"r5": "xy+z"}, remove=["r2"])
        codes = {
            s.report_code for s in updated.states if s.reporting
        }
        assert codes == {"r1", "r3", "r4", "r5"}
        # untouched components keep their fingerprints
        before = {
            component_fingerprint(automaton, c)
            for c in connected_components(automaton)
        }
        after = {
            component_fingerprint(updated, c)
            for c in connected_components(updated)
        }
        assert len(after & before) == 3

    def test_original_is_untouched(self):
        automaton = ruleset(RULES)
        states = len(automaton)
        apply_update(automaton, remove=["r1"])
        assert len(automaton) == states

    def test_unknown_code_raises(self):
        with pytest.raises(ConfigError, match="unknown report codes"):
            apply_update(ruleset(RULES), remove=["nope"])

    def test_refuses_partial_component_removal(self):
        # two codes sharing one component (an alternation reporting on
        # a shared accept structure is hard to build with this parser,
        # so fuse two patterns into one component via a shared prefix)
        automaton = ruleset({"ra": "ab", "rb": "ab*c"})
        comps = connected_components(automaton)
        codes_per_comp = [
            {
                automaton.states[s].report_code
                for s in comp
                if automaton.states[s].reporting
            }
            for comp in comps
        ]
        if all(len(codes) < 2 for codes in codes_per_comp):
            pytest.skip("parser keeps these patterns in separate components")
        with pytest.raises(ConfigError, match="also reports"):
            apply_update(automaton, remove=["ra"])

    def test_empty_update_raises(self):
        with pytest.raises(ConfigError, match="add= and/or remove="):
            apply_update(ruleset(RULES))
        with pytest.raises(ConfigError, match="every pattern"):
            apply_update(ruleset(RULES), remove=list(RULES))


# -- store pins ------------------------------------------------------------


class TestStorePins:
    def test_pinned_artifacts_survive_byte_pressure(self, tmp_path):
        store = ArtifactStore(tmp_path)
        composed = incremental_compile(ruleset(RULES), store=store)
        keys = list(composed.component_keys)
        store.pin(keys)
        # shrink the budget below one artifact: nothing pinned may go
        store.max_bytes = 1
        filler = incremental_compile(
            ruleset({"f1": "qq+r", "f2": "ss*t"}), store=store
        )
        for key in keys:
            assert store.contains(key), "pinned artifact was evicted"
        # the unpinned filler artifacts absorbed the pressure (the
        # last-written artifact is always kept)
        assert (
            sum(store.contains(k) for k in filler.component_keys) <= 1
        )
        # unpinning returns them to the eviction pool
        store.unpin(keys)
        incremental_compile(
            ruleset({"g1": "uu+v"}), store=store
        )
        assert any(not store.contains(k) for k in keys)

    def test_pins_are_refcounted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.pin(["k1", "k1", "k2"])
        store.unpin(["k1"])
        assert store.pinned_keys() == {"k1", "k2"}
        store.unpin(["k1", "k2"])
        assert store.pinned_keys() == set()


# -- versioned service rulesets --------------------------------------------


class TestServiceHotSwap:
    def test_update_swaps_new_scans_and_drains_old_sessions(self, tmp_path):
        v1_rules = dict(RULES)
        v2_rules = dict(RULES, r5="xy+z")
        v1 = ruleset(v1_rules)
        offline_v1 = Engine(ruleset(v1_rules)).run(STREAM).reports
        offline_v2 = Engine(ruleset(v2_rules)).run(STREAM).reports
        with MatchingService(
            ScanConfig(num_shards=2, artifact_store=tmp_path)
        ) as service:
            record1 = service.register_ruleset(v1)
            assert record1.version == 1
            store = service.manager.store
            assert set(record1.component_keys) <= store.pinned_keys()

            session = service.open_session(v1, "tenant-a")
            assert session.ruleset_version == 1
            half = len(STREAM) // 2
            got = list(session.feed(STREAM[:half]))

            record2 = service.update_ruleset(v1, add={"r5": "xy+z"})
            assert record2.version == 2
            assert record2.reused_components == 4
            assert record2.compiled_components == 1
            # v1 is retiring (a session still holds it), v2 is current
            assert service.version_summary() == {
                "lineages": 1,
                "live": 2,
                "retiring": 1,
            }

            # new scans and sessions bind v2
            result = service.scan(record2.automaton, STREAM)
            assert report_keys(result.reports) == report_keys(offline_v2)

            # the in-flight session still runs v1 engines
            got += list(session.feed(STREAM[half:]))
            service.close_session(session.name)
            assert report_keys(got) == report_keys(offline_v1)

            # ... and draining it retires v1: pins move wholly to v2
            assert service.version_summary() == {
                "lineages": 1,
                "live": 1,
                "retiring": 0,
            }
            assert service.ruleset_version(record1.fingerprint) is None
            v2_only = set(record2.component_keys)
            assert store.pinned_keys() == v2_only
        assert store.pinned_keys() == set()

    def test_identity_update_is_a_noop(self):
        with MatchingService(ScanConfig()) as service:
            v1 = ruleset(RULES)
            record1 = service.register_ruleset(v1)
            again = service.update_ruleset(v1, automaton=ruleset(RULES))
            assert again is record1

    def test_register_is_idempotent(self):
        with MatchingService(ScanConfig()) as service:
            v1 = ruleset(RULES)
            assert service.register_ruleset(v1) is service.register_ruleset(
                ruleset(RULES)
            )

    def test_update_by_lineage_handle(self):
        with MatchingService(ScanConfig()) as service:
            record1 = service.register_ruleset(ruleset(RULES))
            record2 = service.update_ruleset(
                record1.lineage, add={"r5": "xy+z"}
            )
            assert record2.version == 2
            assert record2.lineage == record1.lineage
            record3 = service.update_ruleset(record1.lineage, remove=["r5"])
            assert record3.version == 3
            # the remove round-tripped back to v1's language
            assert record3.fingerprint == record1.fingerprint


# -- the wire --------------------------------------------------------------


class TestServerHotSwap:
    def test_update_over_the_wire(self):
        from repro.service import BackgroundServer, MatchingClient

        v1_rules = dict(RULES)
        v2_rules = dict(RULES, r5="xy+z")
        offline_v1 = Engine(ruleset(v1_rules)).run(STREAM).reports
        offline_v2 = Engine(ruleset(v2_rules)).run(STREAM).reports

        def keys(reports):
            return [(r.cycle, r.code) for r in reports]

        with BackgroundServer(config=ScanConfig(num_shards=2)) as bg:
            with MatchingClient(port=bg.port) as client:
                handle = client.register(v1_rules)
                session = client.open_session(handle, "tenant-a")
                half = len(STREAM) // 2
                got = list(session.feed(STREAM[:half]))

                resp = client.update(handle, add={"r5": "xy+z"})
                assert resp["version"] == 2
                assert resp["reused_components"] == 4
                assert resp["compiled_components"] == 1

                # new scans against the same handle see v2 ...
                result = client.scan(handle, STREAM)
                assert keys(result.reports) == keys(offline_v2)

                # ... while the in-flight stream drains on v1
                got += list(session.feed(STREAM[half:]))
                session.close()
                assert keys(got) == keys(offline_v1)

                # fresh sessions bind v2
                s2 = client.open_session(handle, "tenant-b")
                got2 = list(s2.feed(STREAM))
                s2.close()
                assert keys(got2) == keys(offline_v2)

                stats = client.stats()
                assert stats["ruleset_versions"] == {
                    "lineages": 1,
                    "live": 1,
                    "retiring": 0,
                }

    def test_update_validation_errors(self):
        from repro.service import BackgroundServer, MatchingClient
        from repro.service.client import RemoteError

        with BackgroundServer(config=ScanConfig()) as bg:
            with MatchingClient(port=bg.port) as client:
                handle = client.register(RULES)
                with pytest.raises(RemoteError) as excinfo:
                    client._request({"op": "update", "handle": handle})
                assert excinfo.value.code == "bad-request"
                with pytest.raises(RemoteError) as excinfo:
                    client.update(handle, remove=["nope"])
                assert excinfo.value.code == "bad-request"


# -- the api facade --------------------------------------------------------


class TestFacadeUpdate:
    def test_ruleset_update_is_pure(self):
        from repro.api import Ruleset

        rs = Ruleset.from_regexes(RULES)
        before = len(rs.automaton)
        rs2 = rs.update(add={"r5": "xy+z"}, remove=["r2"])
        assert len(rs.automaton) == before
        codes = {s.report_code for s in rs2.automaton.states if s.reporting}
        assert codes == {"r1", "r3", "r4", "r5"}

    def test_handle_update_hot_swaps_in_place(self):
        from repro.api import Ruleset

        v2_rules = dict(RULES, r5="xy+z")
        offline_v1 = Engine(ruleset(RULES)).run(STREAM).reports
        offline_v2 = Engine(ruleset(v2_rules)).run(STREAM).reports
        with Ruleset.from_regexes(RULES).compile(
            scan=ScanConfig(num_shards=2)
        ) as handle:
            with handle.stream("t1") as session:
                half = len(STREAM) // 2
                got = list(session.feed(STREAM[:half]))
                record = handle.update(add={"r5": "xy+z"})
                assert record.version == 2
                result = handle.scan(STREAM)
                assert report_keys(result.reports) == report_keys(offline_v2)
                got += list(session.feed(STREAM[half:]))
            assert report_keys(got) == report_keys(offline_v1)
            assert handle.fingerprint == record.fingerprint
