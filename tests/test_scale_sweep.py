"""Scale-invariance checks (DESIGN.md §6).

The paper's reported quantities are *ratios between designs*; the
reproduction's scale knob shrinks the synthetic benchmarks, so these
tests assert that the key ratios stay in a stable band across scales —
i.e. nothing about the comparison hinges on the 1/16 default.
"""

import pytest

from repro.experiments.common import ExperimentContext


def ratios_at(scale: float, name: str) -> dict[str, float]:
    ctx = ExperimentContext(scale=scale, stream_length=1500, benchmarks=(name,))
    cama = ctx.build(name, "CAMA-E")
    ca = ctx.build(name, "CA")
    area_ratio = ca.area_mm2 / cama.area_mm2
    energy_ratio = ctx.energy_per_cycle(name, "CA") / ctx.energy_per_cycle(
        name, "CAMA-E"
    )
    return {"area": area_ratio, "energy": energy_ratio}


class TestScaleSweep:
    @pytest.mark.parametrize("name", ["Brill", "TCP"])
    def test_area_ratio_stable(self, name):
        small = ratios_at(1 / 128, name)
        large = ratios_at(1 / 32, name)
        assert small["area"] == pytest.approx(large["area"], rel=0.45)
        assert small["area"] > 1.0 and large["area"] > 1.0

    @pytest.mark.parametrize("name", ["Brill", "TCP"])
    def test_energy_ratio_direction_stable(self, name):
        small = ratios_at(1 / 128, name)
        large = ratios_at(1 / 32, name)
        # CAMA-E always wins; the magnitude moves with scale (selective
        # precharge) but stays in one band
        assert small["energy"] > 1.0 and large["energy"] > 1.0
        assert 0.3 < small["energy"] / large["energy"] < 3.0

    def test_state_counts_scale_linearly(self):
        from repro.workloads import get_benchmark

        small = len(get_benchmark("Brill", scale=1 / 64).automaton)
        large = len(get_benchmark("Brill", scale=1 / 16).automaton)
        assert large / small == pytest.approx(4.0, rel=0.2)
