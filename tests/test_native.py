"""The native compiled kernel: differential, degradation, packaging.

The C step loop in ``cama_kernel.c`` must be byte-identical to the
pure-numpy bit-parallel kernel on every path — full runs, chunked
resumes, report caps (including the pause/resume dance when a chunk
fires more reports than the C-side buffer holds), batched stepping and
artifact round trips.  It must also *degrade* identically: with
``REPRO_NATIVE=0`` (or no compiler) ``backend="native"`` silently hands
out the numpy kernel, so requesting it is always safe.
"""

import pickle
import random
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from oracle import oracle_run
from repro.api.config import CompileConfig, ScanConfig
from repro.automata.glushkov import compile_regex_set
from repro.compile import CompiledArtifact, compile_ruleset
from repro.sim.backends import BACKEND_NAMES, get_backend, native
from repro.sim.backends.bitparallel import BitParallelKernel
from repro.sim.backends.native import (
    NativeBackend,
    NativeKernel,
    dense_backend,
    native_available,
    native_status,
)
from repro.sim.engine import Engine
from test_backends import (
    dense_activity_automaton,
    random_automaton,
    random_chunks,
    random_input,
)

RULES = {
    "r0": "abc[a-f]{2}x",
    "r1": "foo(bar|baz)+",
    "r2": "[0-9]{3}z",
    "r3": "q.*nd",
    "r4": "(a|b)c*d",
}

needs_native = pytest.mark.skipif(
    not native_available(),
    reason=f"compiled kernel not loadable here ({native_status()})",
)


def _keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def _active(state):
    return sorted(int(s) for s in state.active)


@pytest.fixture
def no_native(monkeypatch):
    """Force the compiler-less world for one test, then re-probe."""
    monkeypatch.setenv(native.ENV_SWITCH, "0")
    native._reset_probe_cache()
    yield
    monkeypatch.undo()
    native._reset_probe_cache()


# -- registry / config surface ---------------------------------------------


def test_native_is_a_first_class_backend_name():
    assert "native" in BACKEND_NAMES
    assert isinstance(get_backend("native"), NativeBackend)
    # config validation accepts it everywhere a backend is selectable
    assert ScanConfig(backend="native").backend == "native"
    assert CompileConfig(backend="native").backend == "native"


def test_native_status_is_one_line():
    line = native_status()
    assert "\n" not in line
    assert "native kernel" in line


@needs_native
def test_native_engine_reports_native_kernel():
    nfa = compile_regex_set(RULES, name="native-name")
    engine = Engine(nfa, backend="native")
    assert engine.backend_name == "native"
    assert isinstance(engine._kernel, NativeKernel)


# -- differential correctness ----------------------------------------------


@pytest.mark.parametrize("seed", range(15))
def test_native_engine_matches_oracle(seed):
    """Random structural automata x random inputs vs the naive oracle.

    Runs in both worlds: with the C loop when loadable, through the
    degradation path otherwise — either way the answer must be exact.
    """
    rng = random.Random(9000 + seed)
    nfa = random_automaton(rng, rng.randint(1, 70))
    data = random_input(rng, rng.randint(0, 250))
    expected = oracle_run(nfa, data)
    result = Engine(nfa, backend="native").run(data)
    assert _keys(result.reports) == _keys(expected.reports)
    assert result.stats.num_reports == expected.num_reports
    assert result.stats.num_cycles == expected.num_cycles
    assert result.stats.enabled_states_sum == expected.enabled_states_sum
    assert result.stats.active_states_sum == expected.active_states_sum


@pytest.mark.parametrize("seed", range(10))
def test_native_chunked_resume_matches_bitparallel(seed):
    """Chunked execution with report caps: reports, truncation flags,
    stats and the resumable state itself all match the numpy kernel."""
    rng = random.Random(7100 + seed)
    nfa = random_automaton(rng, rng.randint(2, 60))
    data = random_input(rng, 300)
    cap = rng.choice([0, 1, 3, 10, 10_000])
    reference = Engine(nfa, backend="bitparallel")
    candidate = Engine(nfa, backend="native")
    ref_state = reference.initial_state()
    cand_state = candidate.initial_state()
    for chunk in random_chunks(rng, data):
        ref = reference.run_chunk(chunk, ref_state, max_reports=cap)
        cand = candidate.run_chunk(chunk, cand_state, max_reports=cap)
        assert _keys(cand.reports) == _keys(ref.reports)
        assert cand.truncated == ref.truncated
        assert cand.stats.num_reports == ref.stats.num_reports
        assert cand.stats.enabled_states_sum == ref.stats.enabled_states_sum
        assert cand.stats.active_states_sum == ref.stats.active_states_sum
        assert _active(cand_state) == _active(ref_state)
        assert cand_state.position == ref_state.position


def test_native_report_buffer_pause_resume():
    """A chunk firing more reports than the C report buffer holds
    (> 4096) forces the pause/drain/resume path; results stay exact."""
    nfa = compile_regex_set({"r": "a"}, name="buffer-resume")
    data = b"a" * 9000
    cap = 8000
    ref = Engine(nfa, backend="bitparallel").run(data, max_reports=cap)
    got = Engine(nfa, backend="native").run(data, max_reports=cap)
    assert len(got.reports) == cap
    assert got.truncated is True
    assert got.stats.num_reports == 9000
    assert _keys(got.reports) == _keys(ref.reports)
    assert got.stats.num_reports == ref.stats.num_reports


def test_native_keep_per_cycle_and_placement_still_work():
    """Features the C loop doesn't implement fall back to numpy and
    keep their full semantics."""
    nfa = compile_regex_set(RULES, name="fallback-features")
    data = b"abcddxfoobar123zqnd" * 10
    ref = Engine(nfa, backend="bitparallel").run(data, keep_per_cycle=True)
    got = Engine(nfa, backend="native").run(data, keep_per_cycle=True)
    assert _keys(got.reports) == _keys(ref.reports)
    assert got.stats.enabled_per_cycle == ref.stats.enabled_per_cycle
    assert got.stats.active_per_cycle == ref.stats.active_per_cycle


@needs_native
def test_native_kernel_is_thread_safe():
    """Server executor threads share one kernel; concurrent run_chunk
    calls must not corrupt each other (per-call buffers)."""
    rng = random.Random(4242)
    nfa = compile_regex_set(RULES, name="threads")
    engine = Engine(nfa, backend="native")
    pool = b"abcdfoobarbaz0123qndxz"
    streams = [
        bytes(rng.choice(pool) for _ in range(2000)) for _ in range(8)
    ]
    expected = [_keys(engine.run(data).reports) for data in streams]

    def scan(data):
        return _keys(engine.run(data).reports)

    with ThreadPoolExecutor(max_workers=4) as executor:
        got = list(executor.map(scan, streams))
    assert got == expected


# -- degradation -----------------------------------------------------------


def test_env_switch_degrades_to_pure_numpy(no_native):
    """REPRO_NATIVE=0 (CI's compiler-less stand-in): the native backend
    hands out plain BitParallelKernel objects and stays correct."""
    assert native_available() is False
    assert "unavailable" in native_status()
    assert dense_backend().name == "bitparallel"
    nfa = compile_regex_set(RULES, name="degraded")
    kernel = get_backend("native").compile(nfa)
    assert type(kernel) is BitParallelKernel
    assert kernel.name == "bitparallel"
    data = b"abcddxfoobarbaz123zqnd" * 5
    expected = oracle_run(nfa, data)
    result = Engine(nfa, backend="native").run(data)
    assert _keys(result.reports) == _keys(expected.reports)


@needs_native
def test_dense_backend_prefers_native():
    assert dense_backend().name == "native"


@needs_native
def test_native_engine_pickle_round_trip():
    """The ctypes handle is dropped on pickle and re-probed on load."""
    nfa = compile_regex_set(RULES, name="pickle")
    engine = Engine(nfa, backend="native")
    data = b"abcddxfoobar123z" * 20
    expected = engine.run(data)
    clone = pickle.loads(pickle.dumps(engine))
    assert clone.backend_name == "native"
    result = clone.run(data)
    assert _keys(result.reports) == _keys(expected.reports)
    assert result.stats.num_reports == expected.stats.num_reports


# -- tables / artifact interchange -----------------------------------------


def test_exported_tables_carry_packed_successor_rows():
    """export_tables ships succ_words and a tables-built kernel uses
    them verbatim instead of re-deriving the packed rows."""
    nfa = compile_regex_set(RULES, name="tables")
    kernel = get_backend("bitparallel").compile(nfa)
    tables = kernel.export_tables()
    assert tables.succ_words is not None
    assert tables.succ_words.shape == kernel._succ_rows.shape
    rebuilt = BitParallelKernel(nfa, tables=tables)
    assert np.array_equal(rebuilt._succ_rows, kernel._succ_rows)
    data = b"abcddxfoobarbaz123zqnd" * 5
    assert _keys(rebuilt.run_chunk(data, rebuilt.initial_state()).reports) == (
        _keys(kernel.run_chunk(data, kernel.initial_state()).reports)
    )


def test_artifact_round_trip_with_native_backend():
    """compile -> artifact bytes -> engine, recorded backend "native":
    succ_words ships in the .npz and the loaded engine is exact (even
    when the loading host must degrade to the numpy kernel)."""
    nfa = compile_regex_set(RULES, name="native-artifact")
    compiled = compile_ruleset(nfa, backend="native")
    artifact = CompiledArtifact.from_compiled(compiled)
    loaded = CompiledArtifact.from_bytes(artifact.to_bytes()).validate()
    assert "succ_words" in loaded.arrays
    tables = loaded.kernel_tables()
    assert tables.succ_words is not None
    expected_name = "native" if native_available() else "bitparallel"
    engine = loaded.engine()
    assert engine.backend_name == expected_name
    data = b"abcddxfoobarbaz123zqnd" * 10
    expected = oracle_run(nfa, data)
    result = engine.run(data)
    assert _keys(result.reports) == _keys(expected.reports)
    assert result.stats.num_reports == expected.num_reports


def test_auto_artifact_engine_upgrades_dense_family():
    """An artifact compiled with backend="auto" resolves its dense
    choice through dense_backend() at load time."""
    # a dense-activity automaton, so the family choice is bitparallel
    nfa = dense_activity_automaton(48, chain_length=16, match_width=230)
    compiled = compile_ruleset(nfa, backend="auto")
    loaded = CompiledArtifact.from_bytes(
        CompiledArtifact.from_compiled(compiled).to_bytes()
    )
    engine = loaded.engine()
    assert engine.backend_name == dense_backend().name
