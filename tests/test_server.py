"""End-to-end tests of the network matching server and its clients.

The server runs in-process on a background thread (its own asyncio
loop); tests drive it through the real TCP clients and assert the
results are byte-identical to an offline ``MatchingService.scan`` on
the same ruleset and input — including chunked sessions split at
pathological boundaries, protocol-violation handling, and the
kept-reports cap policies travelling across the wire.
"""

import asyncio
import json
import socket
import struct
import threading
import time
import warnings

import pytest

from repro.api import ScanConfig
from repro.automata import compile_regex_set
from repro.errors import SimulationError
from repro.service import (
    AsyncMatchingClient,
    BackgroundServer,
    MatchingClient,
    MatchingService,
    RemoteError,
)
from repro.service.protocol import PROTOCOL_VERSION, encode_frame
from repro.sim.engine import Engine, ReportTruncationWarning

RULES = {"r1": "(a|b)e*cd+", "r2": "abc", "r3": "x+y"}
STREAM = b"aecdabcxxyaecddabcyx" * 40


def full_keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


class ServerHarness(BackgroundServer):
    """BackgroundServer plus a connected-client convenience."""

    def client(self, **kwargs) -> MatchingClient:
        return MatchingClient(port=self.port, **kwargs)


@pytest.fixture(scope="module")
def ruleset():
    return compile_regex_set(RULES, name="server-tests")


@pytest.fixture(scope="module")
def offline(ruleset):
    # the ground truth every server-side result must reproduce
    service = MatchingService(num_shards=2)
    result = service.scan(ruleset, STREAM)
    yield result
    service.close()


@pytest.fixture(scope="module")
def harness():
    with ServerHarness(config=ScanConfig(num_shards=2)) as h:
        yield h


class TestEndToEnd:
    def test_scan_is_byte_identical_to_offline(self, harness, offline):
        with harness.client() as client:
            handle = client.register(RULES)
            result = client.scan(handle, STREAM)
        assert full_keys(result.reports) == full_keys(offline.reports)
        assert result.num_reports == offline.num_reports
        assert result.bytes_scanned == len(STREAM)
        assert not result.truncated

    def test_register_automaton_via_mnrl_aliases_regex_handle(
        self, harness, ruleset
    ):
        with harness.client() as client:
            by_rules = client.register(RULES)
            by_automaton = client.register(ruleset)
        # same language -> same fingerprint -> same compiled artifacts
        assert by_rules == by_automaton

    def test_session_one_byte_chunks(self, harness, offline):
        """Pathological boundaries: every report spans a chunk edge."""
        with harness.client() as client:
            handle = client.register(RULES)
            session = client.open_session(handle, "tiny-chunks")
            reports = []
            for i in range(0, 200):
                reports.extend(session.feed(STREAM[i : i + 1]))
            assert session.position == 200
            summary = session.close()
        expected = [k for k in full_keys(offline.reports) if k[0] < 200]
        assert full_keys(reports) == expected
        assert summary["cycles"] == 200

    def test_session_split_mid_report(self, harness, offline):
        """A chunk boundary inside a match body must not lose the report."""
        # 'abc' completes at absolute offset 6; split between 'b' and 'c'
        with harness.client() as client:
            handle = client.register(RULES)
            session = client.open_session(handle, "mid-report")
            head = session.feed(STREAM[:6])
            tail = session.feed(STREAM[6:40])
            session.close()
        got = full_keys(head) + full_keys(tail)
        expected = [k for k in full_keys(offline.reports) if k[0] < 40]
        assert got == expected

    def test_scan_many_matches_offline(self, harness, ruleset):
        streams = {"a": STREAM[:100], "b": STREAM[100:300], "c": b""}
        with MatchingService(num_shards=2) as service:
            expected = service.scan_many(ruleset, streams)
        with harness.client() as client:
            handle = client.register(RULES)
            results = client.scan_many(handle, streams)
        assert set(results) == set(streams)
        for name in streams:
            assert full_keys(results[name].reports) == full_keys(
                expected[name].reports
            )

    def test_sessions_are_scoped_per_connection(self, harness):
        with harness.client() as one, harness.client() as two:
            handle = one.register(RULES)
            s1 = one.open_session(handle, "same-name")
            s2 = two.open_session(handle, "same-name")
            r1 = s1.feed(b"abc")
            r2 = s2.feed(b"xxabc")
            # independent streams: same name, different positions/reports
            assert s1.position == 3
            assert s2.position == 5
            assert [r.cycle for r in r1] == [2]
            assert [r.cycle for r in r2] == [4]
            s1.close()
            s2.close()

    def test_dropped_connection_releases_its_sessions(self, harness):
        with harness.client() as client:
            handle = client.register(RULES)
            client.open_session(handle, "orphan")
            assert client.stats()["active_sessions"] >= 1
        # the context exit closed the socket; the server must reap
        with harness.client() as client:
            for _ in range(50):
                if client.stats()["active_sessions"] == 0:
                    break
            assert client.stats()["active_sessions"] == 0

    def test_ping_and_stats_frames(self, harness):
        with harness.client() as client:
            pong = client.ping()
            assert pong["pong"] is True and pong["version"] == PROTOCOL_VERSION
            handle = client.register(RULES)
            client.scan(handle, STREAM[:64])
            stats = client.stats()
        assert stats["rulesets"] >= 1
        assert stats["frames"] >= 2
        assert stats["connections"]["total"] >= 1
        backends = stats["backends"]
        assert backends, "per-backend throughput missing"
        for entry in backends.values():
            assert entry["bytes"] >= 0 and entry["scans"] >= 1

    def test_async_client_round_trip(self, harness, offline):
        async def drive():
            async with AsyncMatchingClient(port=harness.port) as client:
                handle = await client.register(RULES)
                result = await client.scan(handle, STREAM)
                session = await client.open_session(handle, "async")
                fed = []
                for start in range(0, 120, 7):
                    fed.extend(await session.feed(STREAM[start : start + 7]))
                await session.close()
                return result, fed

        result, fed = asyncio.run(drive())
        assert full_keys(result.reports) == full_keys(offline.reports)
        # the last chunk starts at 119 and carries 7 bytes -> 126 fed
        expected = [k for k in full_keys(offline.reports) if k[0] < 126]
        assert full_keys(fed) == expected


class TestProtocolViolations:
    def test_malformed_frame_keeps_connection(self, harness):
        with socket.create_connection(("127.0.0.1", harness.port), 5) as sock:
            file = sock.makefile("rb")
            sock.sendall(b"not json at all\n")
            response = json.loads(file.readline())
            assert response["ok"] is False
            assert response["code"] == "bad-frame"
            # the connection survives a malformed frame
            sock.sendall(encode_frame({"id": 1, "op": "ping"}))
            response = json.loads(file.readline())
            assert response["ok"] is True and response["pong"] is True

    def test_non_object_frame_rejected(self, harness):
        with socket.create_connection(("127.0.0.1", harness.port), 5) as sock:
            file = sock.makefile("rb")
            sock.sendall(b"[1,2,3]\n")
            response = json.loads(file.readline())
            assert response["ok"] is False
            assert response["code"] == "bad-frame"

    def test_oversized_frame_closes_connection(self):
        with ServerHarness(max_frame_bytes=2048) as harness:
            with socket.create_connection(
                ("127.0.0.1", harness.port), 5
            ) as sock:
                file = sock.makefile("rb")
                sock.sendall(b"x" * 5000 + b"\n")
                response = json.loads(file.readline())
                assert response["ok"] is False
                assert response["code"] == "frame-too-large"
                assert file.readline() == b""  # EOF: connection closed

    def test_oversized_response_is_replaced_with_error(self):
        # tiny frame budget: a scan whose report list exceeds it must
        # produce an error frame, not a torn response.  1000 input
        # bytes fit the request budget; the 1000-report response does
        # not (its request id is preserved in the error frame).
        with ServerHarness(max_frame_bytes=2048) as harness:
            with harness.client() as client:
                handle = client.register({"r": "a"})
                with pytest.raises(RemoteError) as excinfo:
                    client.scan(handle, b"a" * 1000)
                assert excinfo.value.code == "frame-too-large"
                # the connection is still usable afterwards
                assert client.ping()["pong"] is True

    def test_unknown_op_and_missing_fields(self, harness):
        with harness.client() as client:
            client.connect()
            with pytest.raises(RemoteError) as excinfo:
                client._request({"op": "teleport"})
            assert excinfo.value.code == "unknown-op"
            with pytest.raises(RemoteError) as excinfo:
                client._request({"op": "scan"})
            assert excinfo.value.code == "bad-request"

    def test_unknown_handle_and_session(self, harness):
        with harness.client() as client:
            with pytest.raises(RemoteError) as excinfo:
                client.scan("deadbeef", b"abc")
            assert excinfo.value.code == "unknown-handle"
            with pytest.raises(RemoteError) as excinfo:
                client._request({"op": "feed", "session": "ghost", "data": ""})
            assert excinfo.value.code == "unknown-session"

    def test_bad_base64_rejected(self, harness):
        with harness.client() as client:
            handle = client.register(RULES)
            with pytest.raises(RemoteError) as excinfo:
                client._request(
                    {"op": "scan", "handle": handle, "data": "!!!not-b64"}
                )
            assert excinfo.value.code == "bad-request"

    def test_pipelined_disconnect_does_not_wedge_the_server(self):
        """Regression: a client that pipelines slow scans past
        max_inflight and resets without reading responses must not
        deadlock the connection task (and with it, drain/stop): the
        response write fails, and with the reader blocked on the full
        queue a processor that simply exits would strand it forever."""
        from repro.service.protocol import encode_data

        with ServerHarness(max_inflight=2) as harness:
            with harness.client() as setup:
                handle = setup.register(RULES)
            for _ in range(2):
                sock = socket.create_connection(
                    ("127.0.0.1", harness.port), 5
                )
                # slow frames (real scans) so the queue fills while the
                # processor is busy; never read a byte of response
                scan = encode_frame(
                    {
                        "op": "scan",
                        "handle": handle,
                        "data": encode_data(STREAM * 4),
                    }
                )
                sock.sendall(scan * 20)
                # let the reader fill the bounded queue and block on it
                # while the processor is still mid-scan, then reset
                time.sleep(0.4)
                # abrupt close (RST where the platform produces one)
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                sock.close()
            # the server must still answer, and stop() must not hang
            # (ServerHarness.__exit__ asserts the thread stops in time)
            with harness.client() as client:
                assert client.ping()["pong"] is True

    def test_duplicate_session_name_rejected(self, harness):
        with harness.client() as client:
            handle = client.register(RULES)
            client.open_session(handle, "dup")
            with pytest.raises(RemoteError) as excinfo:
                client.open_session(handle, "dup")
            assert excinfo.value.code == "bad-request"


class TestReportCapPolicies:
    """max_kept_reports warn vs strict across the service and the wire."""

    def test_scan_many_default_cap_warns(self, ruleset):
        with MatchingService(default_max_reports=3) as service:
            with pytest.warns(ReportTruncationWarning):
                results = service.scan_many(
                    ruleset, {"a": STREAM, "b": STREAM[:4]}
                )
        assert results["a"].truncated
        assert len(results["a"].reports) == 3
        # counting continues past the cap, like the engine
        assert results["a"].num_reports == Engine(ruleset).run(
            STREAM
        ).stats.num_reports
        assert not results["b"].truncated

    def test_scan_many_strict_raises(self, ruleset):
        with MatchingService(
            default_max_reports=3, on_truncation="error"
        ) as service:
            with pytest.raises(SimulationError, match="kept-reports cap"):
                service.scan_many(ruleset, {"a": STREAM})

    def test_scan_explicit_cap_is_silent(self, ruleset):
        with MatchingService(on_truncation="error") as service:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                result = service.scan(ruleset, STREAM, max_reports=2)
        assert result.truncated and len(result.reports) == 2

    def test_server_scan_default_cap_warns_client_side(self):
        with ServerHarness(config=ScanConfig(max_reports=3)) as harness:
            with harness.client() as client:
                handle = client.register(RULES)
                with pytest.warns(ReportTruncationWarning):
                    result = client.scan(handle, STREAM)
                assert result.truncated
                assert len(result.reports) == 3
                assert result.warnings

    def test_server_scan_strict_raises_like_engine(self):
        with ServerHarness(config=ScanConfig(max_reports=3)) as harness:
            with harness.client() as client:
                handle = client.register(RULES)
                with pytest.raises(SimulationError, match="kept-reports cap"):
                    client.scan(handle, STREAM, on_truncation="error")
                # explicit caps stay silent, mirroring Engine.run
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    result = client.scan(handle, STREAM, max_reports=2)
                assert result.truncated

    def test_server_scan_many_policies(self):
        with ServerHarness(config=ScanConfig(max_reports=3)) as harness:
            with harness.client() as client:
                handle = client.register(RULES)
                with pytest.warns(ReportTruncationWarning):
                    results = client.scan_many(
                        handle, {"long": STREAM, "short": STREAM[:4]}
                    )
                assert results["long"].truncated
                assert not results["short"].truncated
                with pytest.raises(SimulationError):
                    client.scan_many(
                        handle, {"long": STREAM}, on_truncation="error"
                    )

    def test_server_session_warn_policy(self, harness):
        with harness.client() as client:
            handle = client.register(RULES)
            session = client.open_session(handle, "cap-warn", max_reports=2)
            with pytest.warns(ReportTruncationWarning):
                session.feed(b"aecd" * 10)
            assert session.truncated
            # the warning fires once (on the transition), like Session
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                session.feed(b"aecd")
            session.close()

    def test_server_session_strict_policy(self, harness):
        with harness.client() as client:
            handle = client.register(RULES)
            session = client.open_session(
                handle, "cap-strict", max_reports=2, on_truncation="error"
            )
            with pytest.raises(SimulationError, match="kept-reports cap"):
                session.feed(b"aecd" * 10)
            # the stream stays open and consistent after the error
            session.feed(b"aecd")
            assert session.position == 44
            summary = session.close()
            assert summary["truncated"]

    def test_truncated_flags_match_engine_behaviour(self, ruleset):
        engine_result = Engine(ruleset).run(STREAM, max_reports=3)
        with ServerHarness() as harness:
            with harness.client() as client:
                handle = client.register(RULES)
                remote = client.scan(handle, STREAM, max_reports=3)
        assert remote.truncated == engine_result.truncated
        assert full_keys(remote.reports) == full_keys(engine_result.reports)
        assert remote.num_reports == engine_result.stats.num_reports


class TestArtifactUpload:
    """``register_artifact``: precompiled rulesets over the wire."""

    @pytest.fixture(scope="class")
    def artifact(self, ruleset):
        from repro.compile import CompiledArtifact, compile_ruleset

        return CompiledArtifact.from_compiled(
            compile_ruleset(ruleset, backend="auto")
        )

    def test_uploaded_artifact_scans_byte_identical(
        self, harness, artifact, offline
    ):
        with harness.client() as client:
            handle = client.register_artifact(artifact)
            result = client.scan(handle, STREAM)
        assert full_keys(result.reports) == full_keys(offline.reports)
        assert result.num_reports == offline.num_reports

    def test_artifact_handle_aliases_source_registration(
        self, harness, artifact
    ):
        # same rules, registered by source and by artifact -> one handle
        with harness.client() as client:
            by_source = client.register(RULES)
            by_artifact = client.register_artifact(artifact.to_bytes())
        assert by_source == by_artifact

    def test_uploaded_artifact_drives_sessions(self, harness, artifact, offline):
        with harness.client() as client:
            handle = client.register_artifact(artifact)
            session = client.open_session(handle, "via-artifact")
            reports = session.feed(STREAM[:300])
            session.close()
        expected = [k for k in full_keys(offline.reports) if k[0] < 300]
        assert full_keys(reports) == expected

    def test_poisoned_key_rejected(self, harness, artifact):
        # an artifact whose manifest key claims another ruleset's cache
        # slot must be rejected before it can reach any shared store
        from repro.compile import CompiledArtifact

        poisoned = CompiledArtifact.from_bytes(artifact.to_bytes())
        poisoned.manifest["key"] = "0" * 64
        with harness.client() as client:
            with pytest.raises(RemoteError, match="key") as exc_info:
                client.register_artifact(poisoned.to_bytes())
            assert exc_info.value.code == "bad-artifact"

    def test_corrupt_artifact_rejected_cleanly(self, harness, artifact):
        blob = artifact.to_bytes()
        with harness.client() as client:
            with pytest.raises(RemoteError, match="corrupt") as exc_info:
                client.register_artifact(blob[: len(blob) // 2])
            assert exc_info.value.code == "bad-artifact"
            assert client.ping()["pong"] is True  # connection survives

    def test_empty_artifact_rejected(self, harness):
        with harness.client() as client:
            with pytest.raises(RemoteError, match="needs 'data'"):
                client.register_artifact(b"")

    def test_async_client_uploads(self, harness, artifact, offline):
        async def run():
            async with AsyncMatchingClient(port=harness.port) as client:
                handle = await client.register_artifact(artifact)
                return await client.scan(handle, STREAM)

        result = asyncio.run(run())
        assert full_keys(result.reports) == full_keys(offline.reports)


class TestDrain:
    def test_shutdown_finishes_inflight_work_then_closes(self):
        with ServerHarness() as harness:
            with harness.client() as client:
                handle = client.register(RULES)
                assert client.shutdown()["draining"] is True
                # queued-before-drain frames still get responses; once
                # drained the connection closes (EOF -> RemoteError)
                with pytest.raises(RemoteError, match="closed"):
                    for _ in range(100):
                        client.ping()
            # new connections are refused after the drain completes
            for _ in range(100):
                try:
                    socket.create_connection(
                        ("127.0.0.1", harness.port), 0.2
                    ).close()
                except OSError:
                    break
            else:
                pytest.fail("server kept accepting after drain")

    def test_shutdown_can_be_disabled(self):
        with ServerHarness(allow_shutdown=False) as harness:
            with harness.client() as client:
                with pytest.raises(RemoteError):
                    client.shutdown()
                assert client.ping()["pong"] is True


class TestConcurrentClients:
    def test_parallel_streams_are_isolated_and_correct(self, harness, offline):
        errors = []

        def worker(index: int):
            try:
                with harness.client() as client:
                    handle = client.register(RULES)
                    session = client.open_session(handle, f"w{index}")
                    reports = []
                    step = 11 + index
                    for start in range(0, len(STREAM), step):
                        reports.extend(
                            session.feed(STREAM[start : start + step])
                        )
                    session.close()
                    assert full_keys(reports) == full_keys(offline.reports)
            except Exception as exc:  # noqa: BLE001 — collected for the main thread
                errors.append((index, exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors, errors
