"""Tests for the code families: One-Zero, Multi-Zeros, prefix schemes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.symbols import SymbolClass
from repro.core.encoding.base import cam_match
from repro.core.encoding.multi_zeros import MultiZerosEncoding, multi_zeros_length
from repro.core.encoding.one_zero import OneZeroEncoding
from repro.core.encoding.prefix import (
    build_prefix_encoding,
    one_zero_prefix_params,
    two_zeros_prefix_params,
)
from repro.errors import EncodingError
from repro.utils.bitvec import popcount


def ascii_alphabet(n: int) -> SymbolClass:
    return SymbolClass.from_symbols(range(n))


class TestCamMatch:
    def test_equal_codes_match(self):
        assert cam_match(0b0111, 0b0111)

    def test_stored_zero_is_dont_care(self):
        assert cam_match(0b0011, 0b0111)

    def test_stored_one_requires_input_one(self):
        assert not cam_match(0b0111, 0b0011)

    def test_fixed_weight_codes_never_cross_match(self):
        # pigeonhole: two distinct equal-weight codes mismatch both ways
        a, b = 0b01011, 0b01101
        assert not cam_match(a, b)
        assert not cam_match(b, a)


class TestOneZero:
    def test_code_length_equals_alphabet(self):
        enc = OneZeroEncoding(ascii_alphabet(7))
        assert enc.code_length == 7

    def test_single_zero_per_code(self):
        enc = OneZeroEncoding(ascii_alphabet(5))
        for symbol in enc.alphabet:
            assert popcount(enc.symbol_code(symbol)) == 4

    def test_validates(self):
        OneZeroEncoding(ascii_alphabet(16)).validate()

    def test_distinct_codes(self):
        enc = OneZeroEncoding(ascii_alphabet(10))
        codes = {enc.symbol_code(s) for s in enc.alphabet}
        assert len(codes) == 10

    def test_unencodable_symbol_rejected(self):
        enc = OneZeroEncoding(ascii_alphabet(4))
        with pytest.raises(EncodingError):
            enc.symbol_code(200)

    def test_match_set_of_single_code(self):
        enc = OneZeroEncoding(ascii_alphabet(6))
        assert set(enc.match_set(enc.symbol_code(3))) == {3}

    def test_match_set_of_merged_codes(self):
        enc = OneZeroEncoding(ascii_alphabet(6))
        merged = enc.symbol_code(1) & enc.symbol_code(4)
        assert set(enc.match_set(merged)) == {1, 4}

    def test_empty_alphabet_rejected(self):
        with pytest.raises(EncodingError):
            OneZeroEncoding(SymbolClass.empty())


class TestMultiZeros:
    def test_eq1_paper_value(self):
        # the paper's Brill/Hamming/Levenshtein code length for A=256
        assert multi_zeros_length(256) == 11

    def test_eq1_small(self):
        assert multi_zeros_length(2) == 2
        assert multi_zeros_length(6) == 4
        assert multi_zeros_length(252) == 10

    def test_balanced_weight(self):
        enc = MultiZerosEncoding(ascii_alphabet(256))
        assert enc.code_length == 11
        for symbol in [0, 100, 255]:
            assert popcount(enc.symbol_code(symbol)) == 11 - 5

    def test_validates(self):
        MultiZerosEncoding(ascii_alphabet(256)).validate()

    def test_explicit_length(self):
        enc = MultiZerosEncoding(ascii_alphabet(4), length=4)
        assert enc.code_length == 4

    def test_too_short_length_rejected(self):
        with pytest.raises(EncodingError):
            MultiZerosEncoding(ascii_alphabet(256), length=10)

    def test_match_set_singleton(self):
        enc = MultiZerosEncoding(ascii_alphabet(64))
        assert set(enc.match_set(enc.symbol_code(17))) == {17}


class TestPrefixEncodings:
    def build(self, zeros: int = 2, ls: int = 4, lp: int = 5, n: int = 24):
        symbols = list(range(n))
        clusters = [symbols[i : i + ls] for i in range(0, n, ls)]
        return build_prefix_encoding(clusters, ls, lp, zeros)

    def test_code_length(self):
        assert self.build().code_length == 9

    def test_fixed_weight(self):
        enc = self.build()
        weights = {popcount(enc.symbol_code(s)) for s in enc.alphabet}
        assert weights == {9 - 3}  # ls-1 suffix ones + lp-2 prefix ones... total

    def test_validates_both_shapes(self):
        self.build(zeros=2).validate()
        self.build(zeros=1, lp=6).validate()

    def test_same_cluster_shares_prefix(self):
        enc = self.build()
        mask = ((1 << 5) - 1) << 4
        assert enc.symbol_code(0) & mask == enc.symbol_code(3) & mask
        assert enc.symbol_code(0) & mask != enc.symbol_code(4) & mask

    def test_cluster_of(self):
        enc = self.build()
        assert enc.cluster_of(0) == 0
        assert enc.cluster_of(5) == 1

    def test_oversized_cluster_rejected(self):
        with pytest.raises(EncodingError):
            build_prefix_encoding([[0, 1, 2]], 2, 4, 2)

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(EncodingError):
            build_prefix_encoding([[1], [1]], 2, 4, 2)

    def test_cluster_budget_enforced(self):
        # lp=3, two zeros -> C(3,2)=3 clusters max
        clusters = [[i] for i in range(4)]
        with pytest.raises(EncodingError):
            build_prefix_encoding(clusters, 2, 3, 2)

    def test_match_set_suffix_merge(self):
        enc = self.build()
        merged = enc.symbol_code(0) & enc.symbol_code(1)
        assert set(enc.match_set(merged)) == {0, 1}

    def test_compress_groups_by_prefix(self):
        enc = self.build(ls=4)
        codes = [enc.symbol_code(s) for s in [0, 1, 4, 5]]
        groups = enc.compress_groups(codes)
        assert sorted(len(g) for g in groups) == [2, 2]


class TestEq2:
    def test_paper_example_s5_a256(self):
        # §V.B: S=5, A=256 -> L=16
        ls, lp = two_zeros_prefix_params(256, 5.0)
        assert ls + lp == 16

    def test_tcp_like(self):
        ls, lp = two_zeros_prefix_params(256, 1.28)
        assert ls + lp == 16

    def test_ranges1_like(self):
        # A=115, S=1.29 -> 13 (Table II)
        ls, lp = two_zeros_prefix_params(115, 1.29)
        assert ls + lp == 13

    def test_ranges05_like(self):
        # A=107, S=1.21 -> 12 (Table II)
        ls, lp = two_zeros_prefix_params(107, 1.21)
        assert ls + lp == 12

    def test_infeasible_when_s_exceeds_sqrt_a(self):
        # RandomForest: S ~ 51.55 > sqrt(256)
        assert two_zeros_prefix_params(256, 51.55) is None

    def test_one_zero_prefix_256(self):
        ls, lp = one_zero_prefix_params(256)
        assert (ls, lp) == (16, 16)

    def test_one_zero_prefix_capacity(self):
        for a in [4, 30, 100, 200]:
            ls, lp = one_zero_prefix_params(a)
            assert ls * lp >= a

    def test_capacity_invariant_two_zeros(self):
        from math import comb

        for a, s in [(256, 2.0), (115, 1.3), (200, 4.0)]:
            ls, lp = two_zeros_prefix_params(a, s)
            assert comb(lp, 2) * ls >= a


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=256))
def test_eq1_is_minimal(alphabet_size):
    from math import comb

    length = multi_zeros_length(alphabet_size)
    assert comb(length, length // 2) >= alphabet_size
    if length > 1:
        assert comb(length - 1, (length - 1) // 2) < alphabet_size
