"""Tests for the homogeneous NFA model."""

import pytest

from repro.automata.nfa import Automaton, StartKind
from repro.automata.symbols import SymbolClass
from repro.errors import AutomatonError


def chain(text: str, name: str = "chain") -> Automaton:
    """Linear automaton matching `text` (anchored), reporting at the end."""
    nfa = Automaton(name=name)
    prev = None
    for i, ch in enumerate(text):
        ste = nfa.add_state(
            SymbolClass.from_bytes(ch),
            start=StartKind.START_OF_DATA if i == 0 else StartKind.NONE,
            reporting=i == len(text) - 1,
        )
        if prev is not None:
            nfa.add_transition(prev, ste)
        prev = ste
    return nfa


class TestConstruction:
    def test_ids_are_dense(self):
        nfa = chain("abc")
        assert [s.ste_id for s in nfa.states] == [0, 1, 2]

    def test_add_state_parses_strings(self):
        nfa = Automaton()
        ste = nfa.add_state("[0-9]", start=StartKind.ALL_INPUT, reporting=True)
        assert len(ste.symbol_class) == 10

    def test_empty_class_rejected(self):
        nfa = Automaton()
        with pytest.raises(AutomatonError):
            nfa.add_state(SymbolClass.empty())

    def test_transition_unknown_state_rejected(self):
        nfa = chain("ab")
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, 5)

    def test_transition_idempotent(self):
        nfa = chain("ab")
        nfa.add_transition(0, 1)
        nfa.add_transition(0, 1)
        assert nfa.num_transitions() == 1

    def test_accepts_ste_objects(self):
        nfa = Automaton()
        a = nfa.add_state("a", start=StartKind.ALL_INPUT)
        b = nfa.add_state("b", reporting=True)
        nfa.add_transition(a, b)
        assert nfa.successors(0) == frozenset([1])


class TestAccessors:
    def test_successors_predecessors(self):
        nfa = chain("abc")
        assert nfa.successors(0) == frozenset([1])
        assert nfa.predecessors(2) == frozenset([1])
        assert nfa.predecessors(0) == frozenset()

    def test_transitions_sorted(self):
        nfa = Automaton()
        s = [nfa.add_state("a", start=StartKind.ALL_INPUT) for _ in range(3)]
        s[0].reporting = True
        nfa.add_transition(0, 2)
        nfa.add_transition(0, 1)
        assert list(nfa.transitions()) == [(0, 1), (0, 2)]

    def test_start_and_reporting_lists(self):
        nfa = chain("ab")
        assert [s.ste_id for s in nfa.start_states()] == [0]
        assert [s.ste_id for s in nfa.reporting_states()] == [1]

    def test_alphabet_union(self):
        nfa = chain("ab")
        assert set(nfa.alphabet()) == {ord("a"), ord("b")}

    def test_average_symbol_class_size(self):
        nfa = Automaton()
        nfa.add_state("[ab]", start=StartKind.ALL_INPUT, reporting=True)
        nfa.add_state("[abcd]")
        nfa.add_transition(0, 1)
        assert nfa.average_symbol_class_size() == 3.0


class TestValidation:
    def test_valid_chain_passes(self):
        chain("hello").validate()

    def test_empty_rejected(self):
        with pytest.raises(AutomatonError, match="no states"):
            Automaton().validate()

    def test_no_start_rejected(self):
        nfa = Automaton()
        nfa.add_state("a", reporting=True)
        with pytest.raises(AutomatonError, match="no start state"):
            nfa.validate()

    def test_no_report_rejected(self):
        nfa = Automaton()
        nfa.add_state("a", start=StartKind.ALL_INPUT)
        with pytest.raises(AutomatonError, match="no reporting state"):
            nfa.validate()

    def test_unreachable_rejected(self):
        nfa = chain("ab")
        nfa.add_state("z")  # orphan
        with pytest.raises(AutomatonError, match="unreachable"):
            nfa.validate()

    def test_unreachable_states_reported(self):
        nfa = chain("ab")
        nfa.add_state("z")
        assert nfa.unreachable_states() == {2}


class TestMergeAndSub:
    def test_merge_remaps_ids(self):
        a = chain("ab", name="a")
        b = chain("cd", name="b")
        remap = a.merge(b)
        assert remap == {0: 2, 1: 3}
        assert a.successors(2) == frozenset([3])
        assert len(a) == 4

    def test_merge_preserves_flags(self):
        a = chain("ab")
        b = chain("cd")
        a.merge(b)
        assert a.states[2].start is StartKind.START_OF_DATA
        assert a.states[3].reporting

    def test_subautomaton(self):
        nfa = chain("abcd")
        sub = nfa.subautomaton([1, 2])
        assert len(sub) == 2
        assert sub.successors(0) == frozenset([1])
        assert set(sub.states[0].symbol_class) == {ord("b")}

    def test_subautomaton_drops_external_edges(self):
        nfa = chain("abcd")
        sub = nfa.subautomaton([0, 3])
        assert sub.num_transitions() == 0
