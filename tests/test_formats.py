"""ANML and MNRL round-trip and error-path tests."""

import pytest

from repro.automata.anml import dump_anml, dumps_anml, load_anml, loads_anml
from repro.automata.glushkov import compile_regex_set, glushkov_nfa
from repro.automata.mnrl import dump_mnrl, dumps_mnrl, load_mnrl, loads_mnrl
from repro.automata.nfa import Automaton, StartKind
from repro.errors import ParseError
from repro.sim.engine import Engine
from repro.sim.reports import report_positions


def sample_nfa() -> Automaton:
    nfa = glushkov_nfa("(a|b)e*cd+", name="paper-example", report_code="m")
    return nfa


def assert_equivalent(a: Automaton, b: Automaton, data: bytes) -> None:
    ra = Engine(a).run(data)
    rb = Engine(b).run(data)
    assert report_positions(ra.reports) == report_positions(rb.reports)


class TestAnmlRoundTrip:
    def test_roundtrip_preserves_structure(self):
        nfa = sample_nfa()
        back = loads_anml(dumps_anml(nfa))
        assert len(back) == len(nfa)
        assert back.num_transitions() == nfa.num_transitions()
        assert [s.start for s in back.states] == [s.start for s in nfa.states]
        assert [s.reporting for s in back.states] == [
            s.reporting for s in nfa.states
        ]

    def test_roundtrip_behaviour(self):
        nfa = sample_nfa()
        back = loads_anml(dumps_anml(nfa))
        assert_equivalent(nfa, back, b"aecdabecddd")

    def test_report_code_preserved(self):
        back = loads_anml(dumps_anml(sample_nfa()))
        codes = {s.report_code for s in back.reporting_states()}
        assert codes == {"m"}

    def test_file_io(self, tmp_path):
        path = tmp_path / "x.anml"
        dump_anml(sample_nfa(), path)
        assert len(load_anml(path)) == 5

    def test_multi_component(self):
        nfa = compile_regex_set(["ab", "cd+"])
        back = loads_anml(dumps_anml(nfa))
        assert_equivalent(nfa, back, b"abxcddd")


class TestAnmlErrors:
    def test_malformed_xml(self):
        with pytest.raises(ParseError, match="malformed"):
            loads_anml("<anml><oops")

    def test_missing_network(self):
        with pytest.raises(ParseError, match="automata-network"):
            loads_anml("<anml/>")

    def test_no_elements(self):
        with pytest.raises(ParseError, match="no state-transition-element"):
            loads_anml('<automata-network id="x"/>')

    def test_missing_symbol_set(self):
        doc = (
            '<automata-network id="x">'
            '<state-transition-element id="a" start="all-input"/>'
            "</automata-network>"
        )
        with pytest.raises(ParseError, match="symbol-set"):
            loads_anml(doc)

    def test_unknown_start_kind(self):
        doc = (
            '<automata-network id="x">'
            '<state-transition-element id="a" symbol-set="a" start="maybe"/>'
            "</automata-network>"
        )
        with pytest.raises(ParseError, match="start kind"):
            loads_anml(doc)

    def test_dangling_edge(self):
        doc = (
            '<automata-network id="x">'
            '<state-transition-element id="a" symbol-set="a" start="all-input">'
            '<activate-on-match element="ghost"/>'
            "</state-transition-element></automata-network>"
        )
        with pytest.raises(ParseError, match="unknown STE"):
            loads_anml(doc)

    def test_duplicate_id(self):
        doc = (
            '<automata-network id="x">'
            '<state-transition-element id="a" symbol-set="a"/>'
            '<state-transition-element id="a" symbol-set="b"/>'
            "</automata-network>"
        )
        with pytest.raises(ParseError, match="duplicate"):
            loads_anml(doc)


class TestMnrlRoundTrip:
    def test_roundtrip_preserves_structure(self):
        nfa = sample_nfa()
        back = loads_mnrl(dumps_mnrl(nfa))
        assert len(back) == len(nfa)
        assert back.num_transitions() == nfa.num_transitions()

    def test_roundtrip_behaviour(self):
        nfa = sample_nfa()
        back = loads_mnrl(dumps_mnrl(nfa))
        assert_equivalent(nfa, back, b"aecdabecddd")

    def test_start_kinds_mapped(self):
        nfa = Automaton(name="starts")
        nfa.add_state("a", start=StartKind.ALL_INPUT)
        nfa.add_state("b", start=StartKind.START_OF_DATA, reporting=True)
        nfa.add_transition(0, 1)
        back = loads_mnrl(dumps_mnrl(nfa))
        assert back.states[0].start is StartKind.ALL_INPUT
        assert back.states[1].start is StartKind.START_OF_DATA

    def test_file_io(self, tmp_path):
        path = tmp_path / "x.mnrl"
        dump_mnrl(sample_nfa(), path)
        assert len(load_mnrl(path)) == 5

    def test_report_id_preserved(self):
        back = loads_mnrl(dumps_mnrl(sample_nfa()))
        assert {s.report_code for s in back.reporting_states()} == {"m"}


class TestMnrlErrors:
    def test_malformed_json(self):
        with pytest.raises(ParseError, match="malformed"):
            loads_mnrl("{nope")

    def test_missing_nodes(self):
        with pytest.raises(ParseError, match="nodes"):
            loads_mnrl("{}")

    def test_unsupported_node_type(self):
        with pytest.raises(ParseError, match="unsupported"):
            loads_mnrl('{"nodes": [{"id": "a", "type": "upCounter"}]}')

    def test_missing_symbol_set(self):
        with pytest.raises(ParseError, match="symbolSet"):
            loads_mnrl('{"nodes": [{"id": "a", "type": "hState"}]}')

    def test_unknown_enable(self):
        doc = (
            '{"nodes": [{"id": "a", "type": "hState", "enable": "never",'
            ' "attributes": {"symbolSet": "a"}}]}'
        )
        with pytest.raises(ParseError, match="enable"):
            loads_mnrl(doc)

    def test_dangling_activation(self):
        doc = (
            '{"nodes": [{"id": "a", "type": "hState",'
            ' "attributes": {"symbolSet": "a"},'
            ' "outputDefs": [{"activate": [{"id": "ghost"}]}]}]}'
        )
        with pytest.raises(ParseError, match="unknown node"):
            loads_mnrl(doc)


class TestCrossFormat:
    def test_anml_to_mnrl_to_anml(self):
        nfa = sample_nfa()
        via = loads_mnrl(dumps_mnrl(loads_anml(dumps_anml(nfa))))
        assert_equivalent(nfa, via, b"becdaecddabc")
