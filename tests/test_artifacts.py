"""Tests for serialized compiled-ruleset artifacts and the disk store.

The acceptance property: a ruleset compiled and saved in one process,
loaded in another, produces *byte-identical* reports to an in-process
compile — checked here against both a fresh engine and the naive
differential oracle, including a genuine cross-process round trip.
Corruption, truncation and format-version skew must surface as
:class:`ArtifactError` (never a wrong answer), and the on-disk store
must hold its LRU byte budget.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from oracle import oracle_run
from repro.automata import compile_regex_set
from repro.automata.nfa import Automaton, StartKind
from repro.compile import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactStore,
    CompiledArtifact,
    PipelineOptions,
    compile_ruleset,
)
from repro.core.machine import CamaMachine
from repro.errors import ArtifactError
from repro.sim.engine import Engine
from repro.workloads.registry import get_benchmark

RULES = {"r1": "(a|b)e*cd+", "r2": "abc", "r3": "x+y"}
STREAM = b"aecdabcxxyaecddabcyx" * 50


def manual_automaton() -> Automaton:
    """Start kinds, negated classes, report codes, multiple components."""
    a = Automaton(name="manual")
    s0 = a.add_state("[ab]", start=StartKind.START_OF_DATA)
    s1 = a.add_state("[^ab]", reporting=True, report_code="neg")
    s2 = a.add_state("*", start=StartKind.ALL_INPUT, name="anything")
    s3 = a.add_state("[a-m]", reporting=True, report_code="lower")
    s4 = a.add_state("[xyz]", start=StartKind.ALL_INPUT, reporting=True)
    a.add_transition(s0, s1)
    a.add_transition(s1, s1)
    a.add_transition(s2, s3)
    a.add_transition(s3, s3)
    a.add_transition(s4, s4)
    return a


def rulesets():
    return [
        ("regex", compile_regex_set(RULES, name="artifact-tests")),
        ("manual", manual_automaton()),
        ("registry", get_benchmark("Bro217", scale=1 / 64).automaton),
    ]


def keys_of(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


@pytest.fixture(scope="module")
def compiled_regex():
    return compile_ruleset(
        compile_regex_set(RULES, name="artifact-tests"), backend="auto"
    )


@pytest.fixture(scope="module")
def artifact_bytes(compiled_regex):
    return CompiledArtifact.from_compiled(compiled_regex).to_bytes()


class TestRoundTrip:
    @pytest.mark.parametrize("label,automaton", rulesets())
    def test_reports_identical_and_oracle_checked(self, label, automaton):
        compiled = compile_ruleset(automaton, backend="auto")
        loaded = CompiledArtifact.from_bytes(
            CompiledArtifact.from_compiled(compiled).to_bytes()
        )
        fresh = loaded.engine().run(STREAM)
        direct = Engine(automaton).run(STREAM)
        oracle = oracle_run(automaton, STREAM)
        assert keys_of(fresh.reports) == keys_of(direct.reports)
        assert keys_of(fresh.reports) == keys_of(oracle.reports)
        assert fresh.stats.num_reports == oracle.num_reports

    @pytest.mark.parametrize("backend", ["sparse", "bitparallel"])
    def test_backend_override_on_load(self, artifact_bytes, backend):
        loaded = CompiledArtifact.from_bytes(artifact_bytes)
        engine = loaded.engine(backend=backend)
        assert engine.backend_name == backend
        direct = Engine(loaded.automaton(), backend=backend)
        assert keys_of(engine.run(STREAM).reports) == keys_of(
            direct.run(STREAM).reports
        )

    def test_file_round_trip(self, compiled_regex, tmp_path):
        path = CompiledArtifact.from_compiled(compiled_regex).save(
            tmp_path / "rules.npz"
        )
        loaded = CompiledArtifact.load(path)
        assert loaded.key == compiled_regex.key
        assert loaded.verify() is loaded

    def test_automaton_reconstruction_is_faithful(self, compiled_regex):
        loaded = CompiledArtifact.from_bytes(
            CompiledArtifact.from_compiled(compiled_regex).to_bytes()
        )
        original = compiled_regex.automaton
        rebuilt = loaded.automaton()
        assert rebuilt.name == original.name
        assert len(rebuilt) == len(original)
        assert list(rebuilt.transitions()) == list(original.transitions())
        for a, b in zip(original.states, rebuilt.states):
            assert a.symbol_class == b.symbol_class
            assert a.start is b.start
            assert a.reporting == b.reporting
            assert a.report_code == b.report_code
            assert a.name == b.name

    @pytest.mark.parametrize("label,automaton", rulesets())
    def test_program_reconstruction_lock_step(self, label, automaton):
        compiled = compile_ruleset(automaton, backend=None)
        loaded = CompiledArtifact.from_bytes(
            CompiledArtifact.from_compiled(compiled).to_bytes()
        )
        program = loaded.program()
        assert program.summary() == compiled.program.summary()
        assert program.state_encodings == compiled.program.state_encodings
        data = STREAM[:200]
        machine_reports = CamaMachine(program).run(data).reports
        direct_reports = CamaMachine(compiled.program).run(data).reports
        assert keys_of(machine_reports) == keys_of(direct_reports)

    def test_engine_only_artifact_has_no_program(self, compiled_regex):
        compiled = compile_ruleset(
            compiled_regex.automaton, PipelineOptions(backend="sparse")
        )
        compiled.program = None  # serialize a kernel-only compilation
        artifact = CompiledArtifact.from_compiled(compiled)
        loaded = CompiledArtifact.from_bytes(artifact.to_bytes())
        with pytest.raises(ArtifactError, match="no CAMA program"):
            loaded.program()
        loaded.engine()  # the kernel tables are still there

    def test_stride2_not_serializable(self, compiled_regex):
        compiled = compile_ruleset(
            compiled_regex.automaton, stride=2, backend="sparse"
        )
        with pytest.raises(ArtifactError, match="stride-2"):
            CompiledArtifact.from_compiled(compiled)


class TestCorruption:
    def test_truncated_bytes_rejected(self, artifact_bytes):
        for cut in (0, 10, len(artifact_bytes) // 2, len(artifact_bytes) - 7):
            with pytest.raises(ArtifactError, match="corrupt|artifact"):
                CompiledArtifact.from_bytes(artifact_bytes[:cut])

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ArtifactError):
            CompiledArtifact.from_bytes(b"\x00\x01garbage" * 100)

    def test_non_artifact_npz_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, data=np.arange(5))
        with pytest.raises(ArtifactError, match="not a compiled artifact"):
            CompiledArtifact.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such artifact"):
            CompiledArtifact.load(tmp_path / "absent.npz")

    def test_version_mismatch_rejected(self, artifact_bytes):
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        artifact.manifest["format_version"] = ARTIFACT_FORMAT_VERSION + 1
        with pytest.raises(ArtifactError, match="format version"):
            CompiledArtifact.from_bytes(artifact.to_bytes())

    def test_missing_array_rejected(self, artifact_bytes):
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        del artifact.arrays["match_words"]
        with pytest.raises(ArtifactError, match="lacks required arrays"):
            CompiledArtifact.from_bytes(artifact.to_bytes())

    def test_inconsistent_shapes_rejected(self, artifact_bytes):
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        artifact.arrays["state_reporting"] = artifact.arrays[
            "state_reporting"
        ][:-1]
        with pytest.raises(ArtifactError, match="inconsistent"):
            CompiledArtifact.from_bytes(artifact.to_bytes())

    def test_verify_detects_content_tamper(self, artifact_bytes):
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        reporting = artifact.arrays["state_reporting"].copy()
        reporting[0] = not reporting[0]
        artifact.arrays["state_reporting"] = reporting
        tampered = CompiledArtifact.from_bytes(artifact.to_bytes())
        with pytest.raises(ArtifactError, match="fingerprint"):
            tampered.verify()

    def test_verify_detects_match_table_tamper(self, artifact_bytes):
        # match words are derived data outside the fingerprint: verify
        # must re-derive them, not trust them
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        artifact.arrays["match_words"] = np.zeros_like(
            artifact.arrays["match_words"]
        )
        tampered = CompiledArtifact.from_bytes(artifact.to_bytes())
        with pytest.raises(ArtifactError, match="match tables"):
            tampered.verify()

    def test_verify_detects_key_swap(self, artifact_bytes):
        # a manifest key pointing at some other ruleset's cache slot
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        artifact.manifest["key"] = "f" * 64
        swapped = CompiledArtifact.from_bytes(artifact.to_bytes())
        with pytest.raises(ArtifactError, match="key"):
            swapped.verify()

    def test_truncated_transition_targets_rejected(self, artifact_bytes):
        # silently sliced-short successor lists would mean *wrong
        # matches*, not a crash — validate() must refuse them
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        artifact.arrays["succ_targets"] = artifact.arrays["succ_targets"][:-1]
        with pytest.raises(ArtifactError, match="transition tables"):
            CompiledArtifact.from_bytes(artifact.to_bytes())

    def test_out_of_range_transition_target_rejected(self, artifact_bytes):
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        targets = artifact.arrays["succ_targets"].copy()
        targets[0] = artifact.num_states + 5
        artifact.arrays["succ_targets"] = targets
        with pytest.raises(ArtifactError, match="transition tables"):
            CompiledArtifact.from_bytes(artifact.to_bytes())

    def test_wrong_match_word_count_rejected(self, artifact_bytes):
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        artifact.arrays["match_words"] = np.zeros((256, 99), dtype=np.uint64)
        with pytest.raises(ArtifactError, match="inconsistent"):
            CompiledArtifact.from_bytes(artifact.to_bytes())

    def test_unknown_option_field_is_artifact_error(self, artifact_bytes):
        # a future build's option without a format bump must read as
        # "unreadable artifact" (a cache miss), not escape as ReproError
        artifact = CompiledArtifact.from_bytes(artifact_bytes)
        artifact.manifest["options"]["vectorize"] = True
        with pytest.raises(ArtifactError, match="options"):
            CompiledArtifact.from_bytes(artifact.to_bytes())


class TestStore:
    def test_put_get_round_trip(self, compiled_regex, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = CompiledArtifact.from_compiled(compiled_regex)
        store.put(artifact)
        assert store.contains(artifact.key)
        loaded = store.get(artifact.key)
        assert loaded is not None and loaded.key == artifact.key
        assert store.stats.hits == 1

    def test_get_missing_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("f" * 64) is None
        assert store.stats.misses == 1

    def test_bad_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(Exception, match="bad artifact key"):
            store.path("../escape")

    def test_corrupt_entry_deleted_and_counted(self, compiled_regex, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = CompiledArtifact.from_compiled(compiled_regex)
        path = store.put(artifact)
        path.write_bytes(path.read_bytes()[:100])  # truncate in place
        assert store.get(artifact.key) is None
        assert store.stats.invalid == 1
        assert not path.exists(), "corrupt artifact should be deleted"

    def test_lru_byte_budget_eviction(self, tmp_path):
        automata = {
            name: compile_regex_set({name: pattern}, name=name)
            for name, pattern in (
                ("one", "abc+de"),
                ("two", "(x|y)z*w"),
                ("three", "q+rs"),
            )
        }
        artifacts = {
            name: CompiledArtifact.from_compiled(
                compile_ruleset(a, backend="sparse")
            )
            for name, a in automata.items()
        }
        one_size = len(artifacts["one"].to_bytes())
        store = ArtifactStore(tmp_path, max_bytes=int(one_size * 2.5))
        store.put(artifacts["one"])
        store.put(artifacts["two"])
        assert store.get(artifacts["one"].key) is not None  # refresh LRU
        store.put(artifacts["three"])  # over budget: evict LRU = "two"
        assert store.stats.evictions >= 1
        assert store.contains(artifacts["three"].key)
        assert store.contains(artifacts["one"].key)
        assert not store.contains(artifacts["two"].key)

    def test_clear(self, compiled_regex, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(CompiledArtifact.from_compiled(compiled_regex))
        store.clear()
        assert len(store) == 0 and store.total_bytes() == 0


class TestCrossProcess:
    def test_save_in_one_process_load_in_another(self, tmp_path):
        """The acceptance flow: compile+save in a *fresh* interpreter,
        load here, byte-identical reports vs in-process compile."""
        out = tmp_path / "xproc.npz"
        script = f"""
import json, sys
from repro.automata import compile_regex_set
from repro.compile import CompiledArtifact, compile_ruleset

rules = json.loads({json.dumps(json.dumps(RULES))})
automaton = compile_regex_set(rules, name="artifact-tests")
compiled = compile_ruleset(automaton, backend="auto")
CompiledArtifact.from_compiled(compiled).save({str(out)!r})
print(compiled.key)
"""
        src_dir = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_dir}{os.pathsep}" + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        loaded = CompiledArtifact.load(out)
        assert loaded.key == result.stdout.strip()
        automaton = compile_regex_set(RULES, name="artifact-tests")
        fresh = loaded.engine().run(STREAM)
        direct = Engine(automaton).run(STREAM)
        oracle = oracle_run(automaton, STREAM)
        assert keys_of(fresh.reports) == keys_of(direct.reports)
        assert keys_of(fresh.reports) == keys_of(oracle.reports)
