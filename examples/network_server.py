"""Network matching service: serve rulesets to remote clients over TCP.

    python examples/network_server.py

The deployment shape the paper motivates — one shared matching
accelerator behind a network front end, many tenants — using the
in-process :class:`BackgroundServer` so the walkthrough is
self-contained.  A real deployment runs the same server standalone::

    python -m repro serve --port 8765 --shards 4

and clients connect with :class:`repro.service.MatchingClient` (or
``AsyncMatchingClient``) from any process or machine.

Shown here:

1. register — rules ship as regexes (or MNRL / an Automaton); the
   server fingerprints, compiles, shards and caches them once;
2. one-shot scans — base64 payloads in, report triples out,
   byte-identical to an in-process ``Engine.run``;
3. streaming sessions — chunks arrive as frames, reports come back
   with stream-absolute offsets, even across chunk boundaries;
4. stats — cache hit rates and per-backend throughput, then a
   graceful drain via the ``shutdown`` frame.
"""

from repro.automata import compile_regex_set
from repro.api import ScanConfig
from repro.service import BackgroundServer, MatchingClient
from repro.sim import Engine


def main() -> None:
    rules = {
        "shell": r"/bin/(sh|bash)",
        "hex-blob": r"0x[0-9a-f]{4}",
        "beacon": r"PING[0-9]+PONG",
    }
    with BackgroundServer(config=ScanConfig(num_shards=2)) as background:
        print(f"server listening on 127.0.0.1:{background.port}")

        with MatchingClient(port=background.port) as client:
            # 1. register once; every later scan is a cache hit
            handle = client.register(rules)
            print(f"registered ruleset -> handle {handle[:16]}...")

            # 2. one-shot scan, identical to the in-process engine
            traffic = b"GET /bin/bash 0xdead PING42PONG " * 20
            remote = client.scan(handle, traffic)
            local = Engine(compile_regex_set(rules, name="local")).run(traffic)
            assert [(r.cycle, r.code) for r in remote.reports] == [
                (r.cycle, r.code) for r in local.reports
            ]
            print(
                f"scan: {remote.num_reports} reports over "
                f"{remote.bytes_scanned} bytes, backends {remote.backends}, "
                f"identical to the local engine"
            )

            # 3. a streaming session; the beacon match spans two chunks
            session = client.open_session(handle, "sensor-7")
            first = session.feed(b"syslog: PING4")
            second = session.feed(b"2PONG and more")
            print(
                f"session: chunk 1 -> {[(r.cycle, r.code) for r in first]}, "
                f"chunk 2 -> {[(r.cycle, r.code) for r in second]} "
                f"(offsets are stream-absolute)"
            )
            print(f"session summary: {session.close()}")

            # 4. service statistics, then a graceful drain
            stats = client.stats()
            print(
                f"stats: cache {stats['cache']}, "
                f"{stats['frames']} frames over "
                f"{stats['connections']['total']} connection(s)"
            )
            for name, entry in stats["backends"].items():
                print(
                    f"  backend {name}: {entry['scans']} scans, "
                    f"{entry['bytes']} bytes, "
                    f"{entry['throughput_mbps']:.2f} MB/s"
                )
            print(f"shutdown: {client.shutdown()}")
    print("server drained and stopped")


if __name__ == "__main__":
    main()
