"""The hardware ledger: modeled CAMA cost attached to live scans.

    python examples/hardware_ledger.py

The paper's headline numbers are an energy/latency model (Fig. 12,
Table IV); the serving stack's output is scan results.  The ledger
joins them: ask for ``ScanConfig(hardware_ledger=True)`` and every
result carries the modeled energy breakdown, cycle latency and tile
occupancy of running that exact workload on the chosen CAMA design —
computed by the same accounting path as the offline experiments, so
the numbers agree to the last bit.

Shown here:

1. a one-shot ledgered (and traced) service scan;
2. the running ledger of a streamed session, equal to the one-shot;
3. design comparison (CAMA-E vs CAMA-T) on the same traffic;
4. the differential property: served ledger == offline Fig. 12
   accounting.
"""

from repro.api import Ruleset, ScanConfig
from repro.arch.designs import build_design
from repro.service import MatchingService
from repro.sim import Engine

RULES = {
    "shell": r"/bin/(sh|bash)",
    "hex-blob": r"0x[0-9a-f]{4}",
    "beacon": r"PING[0-9]+PONG",
}
TRAFFIC = b"GET /bin/bash 0xdead PING42PONG " * 200


def main() -> None:
    automaton = Ruleset.from_regexes(RULES, name="ledger-demo").automaton

    # 1. One-shot scan: the ledger and a span trace ride the result.
    config = ScanConfig(hardware_ledger=True, trace=True, num_shards=2)
    with MatchingService(config) as service:
        result = service.scan(automaton, TRAFFIC)
        print(f"{result.num_reports} reports over {len(TRAFFIC)} bytes\n")
        print(result.ledger.render())
        print()
        print(result.trace.render())
        print()

        # 2. A streamed session carries a *running* ledger: read it at
        # any chunk boundary; closing folds it into service totals.
        session = service.open_session(automaton, "tenant-a")
        for start in range(0, len(TRAFFIC), 512):
            session.feed(TRAFFIC[start : start + 512])
        streamed = session.ledger()
        service.close_session("tenant-a")
        drift = abs(streamed.total_pj - result.ledger.total_pj)
        print(
            f"streamed session: {streamed.total_pj:.1f} pJ over "
            f"{streamed.num_cycles} cycles "
            f"(vs one-shot drift {drift:.2e} pJ)"
        )
        totals = service.ledger_totals.to_dict()
        print(
            f"service totals: {totals['scans']} ledgered scans, "
            f"{totals['total_pj']:.1f} pJ, "
            f"{totals['modeled_latency_s'] * 1e6:.2f} us modeled\n"
        )

    # 3. Same traffic, both CAMA variants: E trades energy for the
    # transposed layout's density, T flips the breakdown toward state
    # matching (the Fig. 12 shape).
    with MatchingService() as service:
        for design in ("CAMA-E", "CAMA-T"):
            ledger = service.scan(
                automaton,
                TRAFFIC,
                hardware_ledger=True,
                ledger_design=design,
            ).ledger
            fractions = ledger.fractions()
            print(
                f"{design}: {ledger.per_cycle_pj:6.3f} pJ/cycle at "
                f"{ledger.freq_ghz:.2f} GHz — match "
                f"{fractions['state_match']:5.1%}, switch+wire "
                f"{fractions['switch_wire']:5.1%}, encoder "
                f"{fractions['encoder']:5.1%}"
            )

    # 4. The differential property the test suite pins down: the served
    # ledger IS the offline Fig. 12 accounting for this workload.
    build = build_design("CAMA-E", automaton)
    stats = Engine(automaton, backend="sparse").run(
        TRAFFIC, placement=build.placement, max_reports=0
    ).stats
    offline = build.energy(stats).total_pj
    assert abs(offline - result.ledger.total_pj) < 1e-6
    print(f"\noffline Fig. 12 accounting agrees: {offline:.1f} pJ")


if __name__ == "__main__":
    main()
