"""Encoding ablation: sweep the four code families over one workload.

    python examples/encoding_tradeoffs.py

Reproduces the trade-off of paper §V (Fig. 6's intuition, Table II's
numbers) on a single benchmark: One-Zero maximizes compression but its
code length equals the alphabet; Multi-Zeros minimizes length but
barely compresses; the prefix schemes sit in between, and clustering
decides how often suffix compression succeeds.
"""

from repro.core.encoding import (
    MultiZerosEncoding,
    OneZeroEncoding,
    build_prefix_encoding,
    cluster_symbols,
    encode_state_class,
    identity_clusters,
    select_encoding,
)
from repro.utils.tables import format_table
from repro.workloads import get_benchmark


def evaluate(encoding, classes):
    entries = sum(
        encode_state_class(encoding, symbol_class).num_entries
        for symbol_class in classes
    )
    return entries, entries * encoding.code_length


def main() -> None:
    benchmark = get_benchmark("Snort", scale=1 / 64)
    automaton = benchmark.automaton
    classes = [s.symbol_class for s in automaton.states]
    alphabet = automaton.alphabet()
    print(f"{automaton}: alphabet {len(alphabet)}\n")

    rows = []

    def row(label, encoding):
        entries, bits = evaluate(encoding, classes)
        rows.append(
            [label, encoding.code_length, entries,
             round(entries / len(classes), 3), bits]
        )

    row("one-zero (AP/CA one-hot)", OneZeroEncoding(alphabet))
    row("multi-zeros (Eq. 1)", MultiZerosEncoding(alphabet))

    clustered = cluster_symbols(classes, alphabet, 6, 45)
    row("two-zeros-prefix + clustering",
        build_prefix_encoding(clustered, 6, 10, 2))
    row("two-zeros-prefix, no clustering",
        build_prefix_encoding(identity_clusters(alphabet, 6), 6, 10, 2))

    clustered16 = cluster_symbols(classes, alphabet, 16, 16)
    row("one-zero-prefix 32b + clustering",
        build_prefix_encoding(clustered16, 16, 16, 1))
    row("one-zero-prefix 32b, no clustering",
        build_prefix_encoding(identity_clusters(alphabet, 16), 16, 16, 1))

    print(
        format_table(
            ["encoding", "L", "CAM entries", "entries/state", "memory bits"],
            rows,
        )
    )
    choice = select_encoding(automaton)
    print(f"\nselection algorithm picks: {choice}")


if __name__ == "__main__":
    main()
