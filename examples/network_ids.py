"""Network intrusion detection: a Snort-like rule set on CAMA vs CA.

    python examples/network_ids.py

The motivating workload of the paper's intro: signature matching over
a packet stream.  Compiles a rule set with literals, classes and
negations, streams synthetic traffic with injected attacks, and
compares CAMA-E against the Cache Automaton baseline on energy, area
and compute density using the 28 nm models of Table III.
"""

import random

from repro.arch import build_ca, build_cama
from repro.automata import compile_regex_set
from repro.sim import Engine

RULES = {
    "shellcode-nop-sled": "\\x90{8,16}",
    "http-traversal": r"\.\./\.\./",
    "sql-injection": r"('|%27)\s*(or|OR)\s*1=1",
    "exe-download": r"MZ[^\x00]{2,6}PE",
    "irc-botnet": r"(NICK|JOIN) #[a-z0-9]{4,8}",
    "suspicious-ua": r"User-Agent: (sqlmap|nikto|nmap)",
}


def synth_traffic(length: int, seed: int = 7) -> bytes:
    rng = random.Random(seed)
    attacks = [
        b"\x90" * 12 + b"\xcc\xcc",
        b"../../../etc/passwd",
        b"' or 1=1 --",
        b"MZxPxPE",
        b"NICK #bot42",
        b"User-Agent: sqlmap/1.0",
    ]
    body = bytearray()
    while len(body) < length:
        if rng.random() < 0.01:
            body.extend(rng.choice(attacks))
        else:
            body.append(rng.randrange(32, 127))
    return bytes(body[:length])


def main() -> None:
    ruleset = compile_regex_set(RULES, name="mini-snort")
    print(f"rule set: {len(RULES)} rules -> {len(ruleset)} STEs")

    traffic = synth_traffic(20_000)
    cama = build_cama(ruleset, "E")
    ca = build_ca(ruleset)

    engine = Engine(ruleset)
    cama_stats = engine.run(traffic, placement=cama.placement).stats
    ca_stats = engine.run(traffic, placement=ca.placement).stats

    alerts = engine.run(traffic).reports
    print(f"traffic: {len(traffic)} bytes, {len(alerts)} alerts")
    hits = {}
    for report in alerts:
        hits[report.code] = hits.get(report.code, 0) + 1
    for rule, count in sorted(hits.items()):
        print(f"  {rule:22s} {count:4d} hits")

    print("\n              CAMA-E        CA         ratio")
    cama_energy = cama.energy(cama_stats).per_cycle_pj()
    ca_energy = ca.energy(ca_stats).per_cycle_pj()
    print(
        f"energy/cyc  {cama_energy:8.2f} pJ {ca_energy:8.2f} pJ   "
        f"{ca_energy / cama_energy:5.2f}x"
    )
    print(
        f"area        {cama.area_mm2:8.4f} mm2{ca.area_mm2:8.4f} mm2  "
        f"{ca.area_mm2 / cama.area_mm2:5.2f}x"
    )
    cama_density = cama.compute_density_gbps_mm2()
    ca_density = ca.compute_density_gbps_mm2()
    print(
        f"density     {cama_density:8.1f} G/mm2{ca_density:7.1f} G/mm2 "
        f"{cama_density / ca_density:5.2f}x"
    )


if __name__ == "__main__":
    main()
