"""Quickstart: compile a regex set to CAMA and run it on a stream.

    python examples/quickstart.py

Walks the full pipeline on the paper's running example (Fig. 1):
regex -> homogeneous NFA -> encoding selection -> CAM compression ->
fabric mapping -> functional execution, cross-checked against the
reference simulator.
"""

from repro.automata import compile_regex_set
from repro.core import CamaMachine, compile_automaton
from repro.sim import Engine, report_positions


def main() -> None:
    # 1. A small rule set, including the paper's (a|b)e*cd+ example.
    rules = {
        "paper": "(a|b)e*cd+",
        "hex": r"0x[0-9a-f]{2,4}",
        "word": r"c(at|ow|amel)s?",
    }
    nfa = compile_regex_set(rules, name="quickstart")
    print(f"automaton: {nfa}")

    # 2. Compile: encoding selection + negation optimization + mapping.
    program = compile_automaton(nfa)
    for key, value in program.summary().items():
        print(f"  {key:16s} {value}")

    # 3. Execute on an input stream, on both the reference simulator and
    #    the CAM-level machine; their reports must agree.
    data = b"the cats saw 0x1f44 cows by aecddd river"
    reference = Engine(nfa).run(data)
    machine = CamaMachine(program, variant="E").run(data)
    assert report_positions(reference.reports) == report_positions(machine.reports)

    print(f"\ninput: {data.decode()!r}")
    for report in reference.reports:
        print(
            f"  matched rule {report.code!r} ending at byte {report.cycle} "
            f"({data[max(0, report.cycle - 9) : report.cycle + 1].decode()!r})"
        )
    print(
        f"\nCAM activity: {machine.activity.avg_entries_enabled():.1f} "
        f"entries precharged per cycle (of {program.total_entries} total) — "
        "this sparsity is what CAMA-E's selective precharge exploits."
    )


if __name__ == "__main__":
    main()
