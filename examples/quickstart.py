"""Quickstart: the repro.api front door, then the layers underneath.

    python examples/quickstart.py

Walks the paper's running example (Fig. 1) through the public API:
regex -> ``Ruleset.compile`` -> scan / save / load, then drops one
level to the CAMA machine (encoding selection -> CAM compression ->
fabric mapping) and cross-checks it against the reference simulator.
"""

import tempfile
from pathlib import Path

from repro.api import CompileConfig, Ruleset, ScanConfig
from repro.core import CamaMachine, compile_automaton
from repro.sim import report_positions


def main() -> None:
    # 1. A small rule set, including the paper's (a|b)e*cd+ example.
    rules = {
        "paper": "(a|b)e*cd+",
        "hex": r"0x[0-9a-f]{2,4}",
        "word": r"c(at|ow|amel)s?",
    }
    data = b"the cats saw 0x1f44 cows by aecddd river"

    # 2. The one-call path: compile under typed configs, scan.
    handle = Ruleset.from_regexes(rules, name="quickstart").compile(
        CompileConfig(backend="auto"),
        scan=ScanConfig(chunk_size=16),  # deliberately tiny: streaming
    )
    result = handle.scan(data)
    print(f"automaton: {handle.automaton}")
    print(f"\ninput: {data.decode()!r}")
    for report in result.reports:
        print(
            f"  matched rule {report.code!r} ending at byte {report.cycle} "
            f"({data[max(0, report.cycle - 9) : report.cycle + 1].decode()!r})"
        )

    # 3. Compile once, load anywhere: the artifact round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = handle.save(Path(tmp) / "quickstart.npz")
        warm = Ruleset.from_artifact(path).compile()
        again = warm.scan(data)
        assert report_positions(again.reports) == report_positions(
            result.reports
        )
        print(
            f"\nartifact: {path.stat().st_size} bytes, "
            f"key {handle.key[:16]}..., reloaded scan identical"
        )
        warm.close()
    handle.close()

    # 4. One level down: the CAMA program (encoding selection + negation
    #    optimization + mapping) and the CAM-level machine; its reports
    #    must agree with the reference simulator behind handle.scan.
    program = compile_automaton(handle.automaton)
    for key, value in program.summary().items():
        print(f"  {key:16s} {value}")
    machine = CamaMachine(program, variant="E").run(data)
    assert report_positions(machine.reports) == report_positions(
        result.reports
    )
    print(
        f"\nCAM activity: {machine.activity.avg_entries_enabled():.1f} "
        f"entries precharged per cycle (of {program.total_entries} total) — "
        "this sparsity is what CAMA-E's selective precharge exploits."
    )


if __name__ == "__main__":
    main()
