"""Approximate DNA motif search with Hamming-distance automata.

    python examples/bioinformatics_motif.py

Bioinformatics is one of the paper's target domains (motif discovery on
automata processors, Roy & Aluru).  This example builds
mismatch-tolerant automata for DNA motifs, scans a synthetic genome,
and shows how CAMA's Multi-Zeros encoding (selected because every state
matches exactly one nucleotide) shrinks the matching memory versus the
256-bit one-hot representation.
"""

import random

from repro.automata import Automaton, StartKind, SymbolClass
from repro.core import compile_automaton
from repro.sim import Engine


def hamming_automaton(motif: bytes, distance: int, name: str) -> Automaton:
    """Grid automaton reporting matches of ``motif`` within ``distance``."""
    nfa = Automaton(name=name)
    grid: dict[tuple[int, int], int] = {}
    m = len(motif)
    for errors in range(distance + 1):
        for i in range(errors, m):
            ste = nfa.add_state(
                SymbolClass.from_symbols([motif[i]]),
                start=StartKind.ALL_INPUT if i == 0 and errors == 0 else StartKind.NONE,
                reporting=i == m - 1,
                report_code=f"{name}:d{errors}" if i == m - 1 else None,
            )
            grid[(i, errors)] = ste.ste_id
    for (i, errors), state in list(grid.items()):
        if (i + 1, errors) in grid:
            nfa.add_transition(state, grid[(i + 1, errors)])
        if (i + 1, errors + 1) in grid:
            nfa.add_transition(state, grid[(i + 1, errors + 1)])
    return nfa


def main() -> None:
    rng = random.Random(42)
    motifs = {"TATA-box": b"TATAAA", "CAAT-box": b"GGCCAATCT", "GC-box": b"GGGCGG"}

    combined = Automaton(name="motifs")
    for name, motif in motifs.items():
        combined.merge(hamming_automaton(motif, distance=1, name=name))
    print(f"{len(motifs)} motifs -> {len(combined)} STEs (distance <= 1)")

    genome = bytearray(rng.choice(b"ACGT") for _ in range(50_000))
    # plant a few exact and one-mismatch occurrences
    for position, motif in [(1200, b"TATAAA"), (9000, b"TATCAA"), (30000, b"GGGCGG")]:
        genome[position : position + len(motif)] = motif
    reports = Engine(combined).run(bytes(genome)).reports

    print(f"genome: {len(genome)} bp, {len(reports)} motif hits")
    for report in reports[:12]:
        print(f"  {report.code:14s} ends at {report.cycle}")

    program = compile_automaton(combined)
    print(f"\nencoding selected: {program.choice}")
    onehot_bits = 256 * len(combined)
    print(
        f"matching memory: {program.memory_bits} bits vs {onehot_bits} bits "
        f"one-hot ({onehot_bits / program.memory_bits:.1f}x smaller)"
    )


if __name__ == "__main__":
    main()
