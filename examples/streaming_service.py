"""Streaming service through repro.api: caching, shards, sessions.

    python examples/streaming_service.py

Shows the three service-layer ideas on a network-flavoured rule set,
driven entirely through the ``repro.api`` facade:

1. ruleset caching — repeat scans skip compilation entirely;
2. sharded dispatch — a multi-pattern ruleset splits into independent
   connected-component shards that reproduce the monolithic reports;
3. sessions — concurrent tenants feed chunks as they arrive, each with
   its own stream position and START_OF_DATA semantics.
"""

from repro.api import Ruleset, ScanConfig
from repro.sim import Engine
from repro.workloads import multi_stream_inputs


def main() -> None:
    rules = {
        "shell": r"/bin/(sh|bash)",
        "hex-blob": r"0x[0-9a-f]{4}",
        "beacon": r"PING[0-9]+PONG",
        "paper": "(a|b)e*cd+",
    }
    handle = Ruleset.from_regexes(rules, name="streaming-demo").compile(
        scan=ScanConfig(num_shards=4, chunk_size=64)
    )

    # 1. One-shot scans: the first compiles, the rest hit the cache.
    traffic = b"GET /bin/bash 0xdead PING42PONG aecdd " * 40
    cold = handle.scan(traffic)
    warm = handle.scan(traffic)
    print(f"ruleset: {handle.automaton}")
    print(
        f"cold scan: {cold.num_reports} reports, cached={cold.cached}, "
        f"{cold.elapsed_s * 1e3:.1f} ms"
    )
    print(
        f"warm scan: {warm.num_reports} reports, cached={warm.cached}, "
        f"{warm.elapsed_s * 1e3:.1f} ms "
        f"({cold.elapsed_s / max(warm.elapsed_s, 1e-9):.1f}x faster)"
    )

    # 2. Shards reproduce the monolithic engine byte-for-byte.
    monolithic = Engine(handle.automaton).run(traffic)
    assert [(r.cycle, r.state_id) for r in warm.reports] == [
        (r.cycle, r.state_id) for r in monolithic.reports
    ]
    print(f"shards: {warm.num_shards}, reports identical to one-shot run")

    # 3. Concurrent sessions: two tenants, chunks interleaved arbitrarily.
    with handle.stream("alice") as alice, handle.stream("bob") as bob:
        alice.feed(b"PING7")          # no report yet: pattern incomplete
        bob.feed(b"/bin/s")
        alice_hits = alice.feed(b"7PONG and more")  # completes across chunks
        bob_hits = bob.feed(b"h --version")
        print(
            f"alice: {[(r.cycle, r.code) for r in alice_hits]} at "
            f"position {alice.position}"
        )
        print(
            f"bob:   {[(r.cycle, r.code) for r in bob_hits]} at "
            f"position {bob.position}"
        )

    # 4. Batch entry point: many named streams, one compiled ruleset.
    streams = multi_stream_inputs(handle.automaton, 4, length=400)
    results = handle.scan_many(streams)
    for name, result in results.items():
        print(
            f"{name}: {result.num_reports} reports, "
            f"{result.throughput_mbps:.2f} MB/s"
        )
    print(f"cache after batch: {handle.service.cache_stats}")
    handle.close()


if __name__ == "__main__":
    main()
