"""Compile once, load anywhere: the staged pipeline + artifact flow.

    python examples/compile_once.py

Walks the deployment shape the artifact layer exists for:

1. compile a ruleset through the staged pipeline (per-pass timings);
2. serialize it to a single ``.npz`` artifact;
3. "cold-start" a second consumer from the artifact alone — no
   parsing, no encoding selection, no mapping — and check the reports
   are byte-identical;
4. run a service with a persistent artifact cache, restart it, and
   watch the restart skip compilation;
5. upload the artifact to a network server so *registration* costs an
   upload instead of a compile.
"""

import tempfile
import time
from pathlib import Path

from repro.automata import compile_regex_set
from repro.compile import CompiledArtifact, compile_ruleset
from repro.service import BackgroundServer, MatchingClient, MatchingService
from repro.sim import Engine

RULES = {
    "paper": "(a|b)e*cd+",
    "hex": r"0x[0-9a-f]{2,4}",
    "word": r"c(at|ow|amel)s?",
}
PAYLOAD = b"aecd 0xbeef cats camels abcd" * 500


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-artifacts-"))
    ruleset = compile_regex_set(RULES, name="compile-once")

    # 1. The staged pipeline, timed pass by pass.
    start = time.perf_counter()
    compiled = compile_ruleset(ruleset, backend="auto")
    cold = time.perf_counter() - start
    print(f"cold compile: {cold * 1e3:.1f} ms")
    for name, ms, note in compiled.timing_rows():
        print(f"  {name:9s} {ms:>7s} ms  {note}")

    # 2. Serialize.  The key is content-addressed: language fingerprint
    #    mixed with the pipeline options.
    artifact_path = CompiledArtifact.from_compiled(compiled).save(
        workdir / "ruleset.npz"
    )
    print(f"\nartifact: {artifact_path.name} "
          f"({artifact_path.stat().st_size} bytes)")

    # 3. A second consumer loads the artifact instead of compiling.
    start = time.perf_counter()
    loaded = CompiledArtifact.load(artifact_path)
    engine = loaded.engine()
    warm = time.perf_counter() - start
    print(f"warm load:    {warm * 1e3:.1f} ms "
          f"({cold / warm:.0f}x faster than compiling)")
    fresh = engine.run(PAYLOAD)
    direct = Engine(ruleset).run(PAYLOAD)
    assert [(r.cycle, r.state_id) for r in fresh.reports] == [
        (r.cycle, r.state_id) for r in direct.reports
    ]
    print(f"reports byte-identical: {fresh.stats.num_reports} reports")

    # 4. A service with a persistent artifact cache survives restarts warm.
    cache = workdir / "cache"
    with MatchingService(artifact_store=cache) as service:
        service.scan(ruleset, PAYLOAD)
    with MatchingService(artifact_store=cache) as restarted:
        restarted.scan(ruleset, PAYLOAD)
        stats = restarted.manager.stats
        print(f"service restart: disk_hits={stats.disk_hits}, "
              f"disk_misses={stats.disk_misses} (0 = nothing recompiled)")

    # 5. Upload the precompiled artifact to a server.
    with BackgroundServer() as server:
        with MatchingClient(port=server.port) as client:
            handle = client.register_artifact(artifact_path)
            result = client.scan(handle, PAYLOAD)
            print(f"server upload: handle {handle[:12]}..., "
                  f"{result.num_reports} reports over the wire")


if __name__ == "__main__":
    main()
