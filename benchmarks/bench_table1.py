"""Bench: regenerate Table I (symbol classes and CAM entries)."""

from repro.experiments import table1_symbol_classes


def test_table1_symbol_classes(benchmark, ctx):
    table = benchmark(table1_symbol_classes.run, ctx)
    assert len(table.rows) == len(ctx.benchmarks)
