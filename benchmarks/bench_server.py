"""Bench: the network matching server under concurrent client load.

A load generator for :class:`repro.service.server.MatchingServer`: N
concurrent clients x M streams each, every stream fed over TCP in
chunks through its own session, with per-request latency percentiles
and aggregate throughput — and every stream's reports asserted
byte-identical to an offline ``MatchingService.scan`` of the same
ruleset and input.  Run under pytest (as CI does) or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_server.py -q -s
    PYTHONPATH=src python benchmarks/bench_server.py --clients 16
"""

import argparse
import threading
import time
from dataclasses import dataclass, field

from repro.automata import compile_regex_set
from repro.api import ScanConfig
from repro.service import BackgroundServer, MatchingClient, MatchingService
from repro.workloads import multi_stream_inputs

RULES = {
    "shell": r"/bin/(sh|bash)",
    "hex-blob": r"0x[0-9a-f]{4}",
    "beacon": r"PING[0-9]+PONG",
    "paper": "(a|b)e*cd+",
}

NUM_CLIENTS = 8
STREAMS_PER_CLIENT = 2
STREAM_BYTES = 4096
CHUNK_BYTES = 512


def full_keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def percentile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) of ``samples`` by nearest-rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class LoadReport:
    """What one load run measured (and verified)."""

    num_streams: int
    total_bytes: int
    elapsed_s: float
    feed_latencies_s: list[float] = field(default_factory=list)
    errors: list = field(default_factory=list)

    @property
    def throughput_mbps(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.total_bytes / self.elapsed_s / 1e6

    def summary(self) -> str:
        lat = self.feed_latencies_s
        return (
            f"{self.num_streams} concurrent streams, "
            f"{self.total_bytes / 1e6:.2f} MB in {self.elapsed_s:.3f} s "
            f"({self.throughput_mbps:.2f} MB/s aggregate) | "
            f"feed latency p50 {percentile(lat, 0.50) * 1e3:.2f} ms, "
            f"p95 {percentile(lat, 0.95) * 1e3:.2f} ms, "
            f"p99 {percentile(lat, 0.99) * 1e3:.2f} ms "
            f"({len(lat)} requests)"
        )


def make_streams(nfa, num_clients: int, per_client: int) -> dict[str, bytes]:
    """Named input streams with real matches, one set per client."""
    return multi_stream_inputs(
        nfa, num_clients * per_client, length=STREAM_BYTES
    )


def run_load(
    port: int,
    streams: dict[str, bytes],
    expected: dict[str, list],
    *,
    num_clients: int,
    chunk_bytes: int = CHUNK_BYTES,
) -> LoadReport:
    """Drive ``streams`` through ``num_clients`` concurrent TCP clients.

    Each client registers the ruleset (a cache hit after the first),
    opens one session per assigned stream, feeds it in ``chunk_bytes``
    pieces, and checks the collected reports against ``expected``.
    """
    names = sorted(streams)
    assignments = [names[i::num_clients] for i in range(num_clients)]
    report = LoadReport(
        num_streams=len(names),
        total_bytes=sum(len(streams[name]) for name in names),
        elapsed_s=0.0,
    )
    lock = threading.Lock()
    barrier = threading.Barrier(num_clients)

    def client_worker(assigned: list[str]) -> None:
        latencies: list[float] = []
        try:
            with MatchingClient(port=port) as client:
                handle = client.register(RULES)
                barrier.wait(timeout=30)  # all clients hit at once
                for name in assigned:
                    data = streams[name]
                    session = client.open_session(handle, name)
                    reports = []
                    for start in range(0, len(data), chunk_bytes):
                        begin = time.perf_counter()
                        reports.extend(
                            session.feed(data[start : start + chunk_bytes])
                        )
                        latencies.append(time.perf_counter() - begin)
                    session.close()
                    if full_keys(reports) != expected[name]:
                        raise AssertionError(
                            f"stream {name!r}: server reports diverge from "
                            f"offline scan"
                        )
        except Exception as exc:  # noqa: BLE001 — re-raised by the caller
            with lock:
                report.errors.append(exc)
        finally:
            with lock:
                report.feed_latencies_s.extend(latencies)

    threads = [
        threading.Thread(target=client_worker, args=(assigned,))
        for assigned in assignments
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    report.elapsed_s = time.perf_counter() - begin
    return report


def test_concurrent_streams_byte_identical_to_offline(bench_json):
    """The acceptance run: >= 8 concurrent client streams, all correct."""
    nfa = compile_regex_set(RULES, name="bench-server")
    streams = make_streams(nfa, NUM_CLIENTS, STREAMS_PER_CLIENT)
    with MatchingService(ScanConfig(num_shards=2)) as offline:
        expected = {
            name: full_keys(offline.scan(nfa, data).reports)
            for name, data in streams.items()
        }
    with BackgroundServer(config=ScanConfig(num_shards=2), executor_workers=8) as bg:
        report = run_load(
            bg.port, streams, expected, num_clients=NUM_CLIENTS
        )
    assert not report.errors, report.errors
    assert report.num_streams >= 8
    assert report.feed_latencies_s, "no requests measured"
    lat = report.feed_latencies_s
    bench_json(
        "server",
        {
            "workload": {
                "clients": NUM_CLIENTS,
                "streams": report.num_streams,
                "stream_bytes": STREAM_BYTES,
                "chunk_bytes": CHUNK_BYTES,
            },
            "total_bytes": report.total_bytes,
            "elapsed_s": round(report.elapsed_s, 6),
            "throughput_mbps": round(report.throughput_mbps, 3),
            "requests": len(lat),
            # per-request feed turnaround over TCP (client-observed)
            "feed_latency_p50_ms": round(percentile(lat, 0.50) * 1e3, 3),
            "feed_latency_p95_ms": round(percentile(lat, 0.95) * 1e3, 3),
            "feed_latency_p99_ms": round(percentile(lat, 0.99) * 1e3, 3),
        },
    )
    print(f"\nbench_server: {report.summary()}")


def test_one_shot_scan_throughput(benchmark):
    """Warm single-client scan RPC, for the latency trend line."""
    nfa = compile_regex_set(RULES, name="bench-server")
    data = next(iter(make_streams(nfa, 1, 1).values()))
    with BackgroundServer(config=ScanConfig(num_shards=2)) as bg:
        with MatchingClient(port=bg.port) as client:
            handle = client.register(RULES)
            client.scan(handle, data)  # warm
            result = benchmark(client.scan, handle, data)
            assert result.bytes_scanned == len(data)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=NUM_CLIENTS)
    parser.add_argument("--streams", type=int, default=STREAMS_PER_CLIENT)
    parser.add_argument("--chunk", type=int, default=CHUNK_BYTES)
    parser.add_argument("--shards", type=int, default=2)
    args = parser.parse_args()

    nfa = compile_regex_set(RULES, name="bench-server")
    streams = make_streams(nfa, args.clients, args.streams)
    with MatchingService(ScanConfig(num_shards=args.shards)) as offline:
        expected = {
            name: full_keys(offline.scan(nfa, data).reports)
            for name, data in streams.items()
        }
    with BackgroundServer(
        config=ScanConfig(num_shards=args.shards),
        executor_workers=max(4, args.clients),
    ) as bg:
        report = run_load(
            bg.port,
            streams,
            expected,
            num_clients=args.clients,
            chunk_bytes=args.chunk,
        )
    for error in report.errors:
        print(f"error: {error}")
    print(report.summary())
    return 1 if report.errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
