"""Bench: the staged compilation pipeline vs warm artifact loads.

The economics the artifact layer exists for: a ruleset is compiled
(parse -> encode -> map -> kernel) once, serialized, and every later
process start — service restart, spawn worker, remote upload — loads
the artifact instead.  The acceptance ratio asserts warm loads are
>= 5x faster than cold compiles across the registry corpus, and every
run writes machine-readable ``BENCH_compile.json`` results.  Run
directly:

    PYTHONPATH=src python -m pytest benchmarks/bench_compile.py -q -s
"""

import time

import pytest

from repro.compile import (
    ArtifactStore,
    CompiledArtifact,
    PipelineOptions,
    compile_ruleset,
    ruleset_fingerprint,
)
from repro.workloads.registry import get_benchmark

#: a cross-family slice of the registry corpus (strings, negated
#: strings, dotstar, ranges) — big enough that compile time dominates
CORPUS = ("Snort", "TCP", "Dotstar03", "Ranges1", "Bro217")
SCALE = 1.0 / 32.0
OPTIONS = PipelineOptions(backend="auto")

#: acceptance floor: warm artifact load vs cold pipeline compile
TARGET_SPEEDUP = 5.0


def _corpus():
    return [get_benchmark(name, SCALE).automaton for name in CORPUS]


def _prime_store(store, automata) -> list[str]:
    keys = []
    for automaton in automata:
        compiled = compile_ruleset(automaton, OPTIONS)
        store.put(CompiledArtifact.from_compiled(compiled))
        keys.append(compiled.key)
    return keys


def _cold_all(automata) -> None:
    for automaton in automata:
        compile_ruleset(automaton, OPTIONS).engine()


def _warm_all(store, keys) -> None:
    for key in keys:
        store.get(key).engine()


def test_cold_pipeline_compile(benchmark):
    automata = _corpus()
    benchmark(_cold_all, automata)


def test_warm_artifact_load(benchmark, tmp_path):
    automata = _corpus()
    store = ArtifactStore(tmp_path)
    keys = _prime_store(store, automata)
    benchmark(_warm_all, store, keys)


def test_pass_timings_cover_pipeline():
    """Every pass is individually timed (the inspectability contract)."""
    compiled = compile_ruleset(_corpus()[0], OPTIONS)
    names = [t.name for t in compiled.timings]
    assert names == ["parse", "optimize", "stride", "encode", "map", "kernel"]
    ran = {t.name for t in compiled.timings if t.skipped is None}
    assert {"parse", "encode", "map", "kernel"} <= ran


def test_warm_load_beats_cold_compile_5x(tmp_path, bench_json):
    """The acceptance ratio: artifact loads >= 5x faster than compiles.

    Medians over interleaved rounds absorb scheduler noise; one retry
    keeps an unlucky burst on a shared CI runner from failing an
    unrelated change.  Always writes BENCH_compile.json, win or lose.
    """
    automata = _corpus()
    store = ArtifactStore(tmp_path)
    keys = _prime_store(store, automata)
    per_bench: dict[str, dict] = {}
    best = (0.0, 0.0, 0.0)  # (speedup, cold median, warm median)
    for _attempt in range(2):
        cold_times, warm_times = [], []
        for _round in range(3):
            start = time.perf_counter()
            _cold_all(automata)
            cold_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            _warm_all(store, keys)
            warm_times.append(time.perf_counter() - start)
        cold = sorted(cold_times)[len(cold_times) // 2]
        warm = sorted(warm_times)[len(warm_times) // 2]
        best = max(best, (cold / warm, cold, warm))
        if best[0] >= TARGET_SPEEDUP:
            break
    speedup, cold, warm = best
    # per-benchmark breakdown (single measured round; the aggregate
    # acceptance above is what gates)
    for name, automaton, key in zip(CORPUS, automata, keys):
        start = time.perf_counter()
        compile_ruleset(automaton, OPTIONS).engine()
        cold_one = time.perf_counter() - start
        start = time.perf_counter()
        store.get(key).engine()
        warm_one = time.perf_counter() - start
        per_bench[name] = {
            "states": len(automaton),
            "cold_compile_s": round(cold_one, 6),
            "warm_load_s": round(warm_one, 6),
            "speedup": round(cold_one / warm_one, 2) if warm_one else None,
        }
    bench_json(
        "compile",
        {
            "scale": SCALE,
            "options": OPTIONS.to_dict(),
            "corpus": per_bench,
            "aggregate": {
                # the medians behind the recorded speedup (same attempt)
                "cold_median_s": round(cold, 6),
                "warm_median_s": round(warm, 6),
                "speedup": round(speedup, 2),
                "target": TARGET_SPEEDUP,
            },
        },
    )
    assert speedup >= TARGET_SPEEDUP, f"warm speedup only {speedup:.2f}x"


def test_artifact_key_covers_backend_options(tmp_path):
    """Same ruleset, different pipeline options -> different artifacts."""
    automaton = _corpus()[-1]
    sparse_key = ruleset_fingerprint(
        automaton, OPTIONS.replace(backend="sparse")
    )
    bitp_key = ruleset_fingerprint(
        automaton, OPTIONS.replace(backend="bitparallel")
    )
    assert sparse_key != bitp_key
    assert sparse_key != ruleset_fingerprint(automaton)


@pytest.mark.parametrize("name", CORPUS)
def test_roundtrip_reports_identical(name, tmp_path):
    """Loaded artifacts scan byte-identically to the in-process compile."""
    bench = get_benchmark(name, SCALE)
    automaton = bench.automaton
    data = bench.input_stream(2000)
    compiled = compile_ruleset(automaton, OPTIONS)
    path = CompiledArtifact.from_compiled(compiled).save(
        tmp_path / f"{name}.npz"
    )
    fresh = CompiledArtifact.load(path).engine().run(data)
    direct = compiled.engine().run(data)
    assert [(r.cycle, r.state_id, r.code) for r in fresh.reports] == [
        (r.cycle, r.state_id, r.code) for r in direct.reports
    ]
