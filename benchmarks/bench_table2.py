"""Bench: regenerate Table II (encoding comparison)."""

from repro.experiments import table2_encoding


def test_table2_encoding(benchmark, ctx):
    table = benchmark(table2_encoding.run, ctx)
    assert any(row[3] == 32 for row in table.rows)  # RandomForest's 32-bit
