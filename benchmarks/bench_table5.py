"""Bench: regenerate Table V (switch mapping results)."""

from repro.experiments import table5_switch_mapping


def test_table5_switch_mapping(benchmark, ctx):
    table = benchmark(table5_switch_mapping.run, ctx)
    by_name = {row[0]: row for row in table.rows}
    assert by_name["RandomForest"][9] > 0  # FCB-mode switches
