"""Bench: regenerate Table IV (delays and frequencies, analytic)."""

from repro.experiments import table4_timing


def test_table4_timing(benchmark, ctx):
    table = benchmark(table4_timing.run, ctx)
    designs = {row[0] for row in table.rows}
    assert {"CAMA-E", "CAMA-T", "CA", "eAP", "2-stride Impala", "AP"} == designs
