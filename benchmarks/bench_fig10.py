"""Bench: regenerate Fig 10 (chip area per benchmark)."""

from repro.experiments import fig10_area


def test_fig10_area(benchmark, ctx):
    table = benchmark(fig10_area.run, ctx)
    by_name = {row[0]: row for row in table.rows}
    cama, impala, eap, ca = by_name["SPM"][1:5]
    assert cama < min(impala, eap, ca)
