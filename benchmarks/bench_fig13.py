"""Bench: regenerate Fig 13 (2-stride CAMA vs 4-stride Impala)."""

from repro.experiments import fig13_multistride


def test_fig13_multistride(benchmark, ctx):
    table = benchmark(fig13_multistride.run, ctx)
    for row in table.rows:
        assert row[6] > 1.0  # Impala always costs more energy than CAMA-E
