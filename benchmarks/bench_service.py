"""Bench: the matching-service layer (repro.service).

Measures the service economics the subsystem exists for: warm (cached)
vs cold (recompile-every-request) scans on a repeat-ruleset workload,
sharded vs monolithic dispatch, and streaming-session overhead.  Run
directly:

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

import time

from repro.service import Dispatcher, MatchingService
from repro.workloads import multi_stream_inputs

REQUEST_BYTES = 256
NUM_REQUESTS = 8


def _request_streams(ctx, name="Snort"):
    automaton = ctx.benchmark(name).automaton
    return automaton, multi_stream_inputs(
        automaton, NUM_REQUESTS, length=REQUEST_BYTES
    )


def _cold_batch(automaton, streams) -> None:
    # a fresh service per request: every scan pays sharding + compile
    for data in streams.values():
        MatchingService().scan(automaton, data)


def _warm_batch(service, automaton, streams, latencies=None) -> None:
    for data in streams.values():
        start = time.perf_counter()
        service.scan(automaton, data)
        if latencies is not None:
            latencies.append(time.perf_counter() - start)


def _percentile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) of ``samples`` by nearest-rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def test_cold_scan(benchmark, ctx):
    automaton, streams = _request_streams(ctx)
    benchmark(_cold_batch, automaton, streams)


def test_warm_scan(benchmark, ctx):
    automaton, streams = _request_streams(ctx)
    service = MatchingService()
    service.scan(automaton, next(iter(streams.values())))  # prime the cache
    benchmark(_warm_batch, service, automaton, streams)


def test_warm_beats_cold_2x(ctx, bench_json):
    """The acceptance ratio: cached scans >= 2x faster than cold scans.

    Medians over 5 interleaved rounds absorb scheduler noise; one retry
    keeps a single unlucky burst on a shared CI runner from failing an
    unrelated change.  Always writes BENCH_service.json, win or lose.
    """
    automaton, streams = _request_streams(ctx)
    warm_service = MatchingService()
    warm_service.scan(automaton, next(iter(streams.values())))
    best = (0.0, 0.0, 0.0)  # (speedup, cold median, warm median)
    warm_latencies: list[float] = []
    for _ in range(2):
        cold_times, warm_times = [], []
        for _ in range(5):
            start = time.perf_counter()
            _cold_batch(automaton, streams)
            cold_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            _warm_batch(warm_service, automaton, streams, warm_latencies)
            warm_times.append(time.perf_counter() - start)
        cold = sorted(cold_times)[len(cold_times) // 2]
        warm = sorted(warm_times)[len(warm_times) // 2]
        best = max(best, (cold / warm, cold, warm))
        if best[0] >= 2.0:
            break
    speedup, cold, warm = best
    bench_json(
        "service",
        {
            "workload": {
                "benchmark": "Snort",
                "requests": NUM_REQUESTS,
                "request_bytes": REQUEST_BYTES,
            },
            # the medians behind the recorded speedup (same attempt)
            "cold_median_s": round(cold, 6),
            "warm_median_s": round(warm, 6),
            "speedup": round(speedup, 2),
            "target": 2.0,
            # per-request warm-scan latency across every measured round
            "warm_requests": len(warm_latencies),
            "warm_latency_p50_ms": round(
                _percentile(warm_latencies, 0.50) * 1e3, 3
            ),
            "warm_latency_p95_ms": round(
                _percentile(warm_latencies, 0.95) * 1e3, 3
            ),
        },
    )
    assert speedup >= 2.0, f"warm speedup only {speedup:.2f}x"


def test_monolithic_scan(benchmark, ctx):
    automaton = ctx.benchmark("Snort").automaton
    data = ctx.stream("Snort")
    dispatcher = Dispatcher(automaton, num_shards=1)
    dispatcher.engines  # compile outside the measured region
    result = benchmark(dispatcher.scan, data, chunk_size=512)
    assert result.stats.num_cycles == len(data)


def test_sharded_scan(benchmark, ctx):
    automaton = ctx.benchmark("Snort").automaton
    data = ctx.stream("Snort")
    dispatcher = Dispatcher(automaton, num_shards=4)
    dispatcher.engines
    result = benchmark(dispatcher.scan, data, chunk_size=512)
    assert result.stats.num_cycles == len(data)


def test_session_streaming(benchmark, ctx):
    automaton = ctx.benchmark("Snort").automaton
    data = ctx.stream("Snort")[:2000]
    service = MatchingService()
    service.scan(automaton, data[:64])  # prime

    def stream_once():
        session = service.open_session(automaton, "bench")
        session.feed_all(data, chunk_size=256)
        return service.close_session("bench")

    result = benchmark(stream_once)
    assert result.stats.num_cycles == len(data)


def test_scan_many_tenants(benchmark, ctx):
    automaton, streams = _request_streams(ctx)
    service = MatchingService()
    service.scan(automaton, next(iter(streams.values())))
    results = benchmark(service.scan_many, automaton, streams)
    assert len(results) == NUM_REQUESTS
