"""Bench: the cluster router scaling a Snort fleet, with quotas on.

The cluster acceptance run, in three measured claims:

1. **Fleet scaling** — 64 Snort streams over a 2-node fleet reach >=
   1.6x the aggregate MB/s of the same streams on one node.  On a
   multi-core host the two node shares run concurrently (true
   wall-clock scaling); on a single core that is physically impossible,
   so the bench falls back to *isolated shares / makespan*: each node
   serves its half back-to-back and the aggregate is
   ``total_bytes / max(per_node_elapsed)`` — the fleet's throughput if
   the shares ran on separate machines.  The ``mode`` field in the JSON
   says which was measured.
2. **Single compile** — registering the ruleset through the router
   compiles on exactly one node; the replica loads the published
   artifacts from the shared store (read off each node's
   ``repro_incremental_components_total`` counters).
3. **Quota isolation** — an over-quota tenant collects typed
   ``over-quota`` errors while an in-quota tenant's throughput stays
   within 10% of its solo baseline.

Run under pytest (as CI does) or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q -s
    PYTHONPATH=src python benchmarks/bench_cluster.py --streams 64
"""

import argparse
import os
import re
import threading
import time

from repro.api import ScanConfig
from repro.automata.mnrl import dumps_mnrl
from repro.cluster import LocalFleet, QuotaManager, TenantQuota
from repro.service import MatchingClient, MatchingService, RemoteError
from repro.workloads import generate, multi_stream_inputs, profile_of

BENCH_NAME = "Snort"
BENCH_SCALE = 1.0 / 64.0
NUM_STREAMS = 64
STREAM_BYTES = 2000
SPEEDUP_FLOOR = 1.6
QUOTA_RATIO_FLOOR = 0.9


def full_keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def snort_workload(num_streams: int = NUM_STREAMS):
    automaton = generate(profile_of(BENCH_NAME), scale=BENCH_SCALE)
    streams = multi_stream_inputs(
        automaton, num_streams, length=STREAM_BYTES
    )
    return automaton, streams


def compiled_counts(node) -> dict:
    """incremental-compile outcomes (memory/disk/compiled) off a node."""
    with MatchingClient(host=node.host, port=node.port) as client:
        text = client.metrics()
    return {
        outcome: int(value)
        for outcome, value in re.findall(
            r'repro_incremental_components_total\{outcome="(\w+)"\} (\d+)',
            text,
        )
    }


def scan_share(port: int, handle: str, share: dict[str, bytes]) -> float:
    """Scan ``share`` against one node; returns the elapsed seconds."""
    begin = time.perf_counter()
    with MatchingClient(port=port) as client:
        for data in share.values():
            client.scan(handle, data)
    return time.perf_counter() - begin


def measure_fleet_scaling(
    fleet: LocalFleet, handle: str, streams: dict[str, bytes]
) -> dict:
    """One-node vs two-node aggregate MB/s over the same streams.

    Nodes are driven directly (the node is the unit of capacity; the
    router is a thin proxy on top).  ``mode`` records whether the
    two shares ran concurrently or as isolated back-to-back shares.
    """
    total_bytes = sum(len(data) for data in streams.values())
    names = sorted(streams)
    node_ports = [node.port for node in fleet.nodes]

    # warm both nodes' engines so the measurement is matching, not JIT
    warm = {names[0]: streams[names[0]]}
    for port in node_ports:
        scan_share(port, handle, warm)

    # baseline: every stream on one node
    solo_elapsed = scan_share(node_ports[0], handle, streams)

    shares = [
        {name: streams[name] for name in names[i :: len(node_ports)]}
        for i in range(len(node_ports))
    ]
    concurrent = (os.cpu_count() or 1) >= 2
    elapsed = [0.0] * len(shares)

    def run(index: int) -> None:
        elapsed[index] = scan_share(
            node_ports[index], handle, shares[index]
        )

    if concurrent:
        threads = [
            threading.Thread(target=run, args=(i,))
            for i in range(len(shares))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        for i in range(len(shares)):
            run(i)

    makespan = max(elapsed)
    solo_mbps = total_bytes / solo_elapsed / 1e6
    fleet_mbps = total_bytes / makespan / 1e6
    return {
        "mode": "concurrent" if concurrent else "isolated-shares",
        "streams": len(streams),
        "total_bytes": total_bytes,
        "one_node_elapsed_s": round(solo_elapsed, 6),
        "one_node_mbps": round(solo_mbps, 3),
        "per_node_elapsed_s": [round(t, 6) for t in elapsed],
        "fleet_makespan_s": round(makespan, 6),
        "fleet_aggregate_mbps": round(fleet_mbps, 3),
        "speedup": round(fleet_mbps / solo_mbps, 3),
    }


def measure_quota_isolation(
    router_port: int, handle: str, streams: dict[str, bytes]
) -> dict:
    """An over-quota tenant must not dent an in-quota tenant.

    ``paying`` scans the same stream set twice through the router —
    first alone (solo baseline), then while ``noisy`` hammers scans
    far beyond its request quota and is shed with typed errors.
    """

    def paying_pass() -> float:
        # min over two repetitions: the standard estimator of the true
        # cost, robust to one-off scheduler noise on a shared host
        best = float("inf")
        for _ in range(2):
            begin = time.perf_counter()
            with MatchingClient(port=router_port, tenant="paying") as client:
                for data in streams.values():
                    client.scan(handle, data)
            best = min(best, time.perf_counter() - begin)
        return best

    solo_elapsed = paying_pass()

    rejected = 0
    served = 0
    stop = threading.Event()

    def noisy_worker() -> None:
        nonlocal rejected, served
        with MatchingClient(port=router_port, tenant="noisy") as client:
            while not stop.is_set():
                try:
                    client.scan(handle, b"noise")
                    served += 1
                except RemoteError as exc:
                    if exc.code != "over-quota":
                        raise
                    rejected += 1
                # a real client would back off on a typed rejection; a
                # pure busy-loop would measure GIL contention in this
                # process, not admission control in the router
                time.sleep(0.025)

    thread = threading.Thread(target=noisy_worker)
    thread.start()
    try:
        contended_elapsed = paying_pass()
    finally:
        stop.set()
        thread.join(30)

    total_bytes = sum(len(data) for data in streams.values())
    solo_mbps = total_bytes / solo_elapsed / 1e6
    contended_mbps = total_bytes / contended_elapsed / 1e6
    return {
        "paying_solo_mbps": round(solo_mbps, 3),
        "paying_contended_mbps": round(contended_mbps, 3),
        "throughput_ratio": round(contended_mbps / solo_mbps, 3),
        "noisy_rejected": rejected,
        "noisy_served": served,
    }


def run_bench(num_streams: int = NUM_STREAMS) -> dict:
    automaton, streams = snort_workload(num_streams)

    with MatchingService(ScanConfig(num_shards=1)) as offline:
        sample = sorted(streams)[0]
        expected = full_keys(offline.scan(automaton, streams[sample]).reports)

    quotas = QuotaManager(
        None,
        per_tenant={
            "noisy": TenantQuota(requests_per_s=2, window_s=1.0),
        },
    )
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as cache:
        with LocalFleet(
            num_nodes=2, artifact_cache=cache, quotas=quotas
        ) as fleet:
            with MatchingClient(port=fleet.port) as client:
                compile_begin = time.perf_counter()
                handle = client.register(
                    dumps_mnrl(automaton), kind="mnrl", name=BENCH_NAME
                )
                register_elapsed = time.perf_counter() - compile_begin
                routed = client.scan(handle, streams[sample])
            if full_keys(routed.reports) != expected:
                raise AssertionError(
                    "router scan diverges from offline scan"
                )

            counts = {n.name: compiled_counts(n) for n in fleet.nodes}
            compiled_on = [
                name for name, c in counts.items() if c.get("compiled", 0)
            ]

            scaling = measure_fleet_scaling(fleet, handle, streams)
            quota = measure_quota_isolation(fleet.port, handle, streams)

    return {
        "workload": {
            "benchmark": BENCH_NAME,
            "scale": BENCH_SCALE,
            "automaton_states": len(automaton),
            "streams": len(streams),
            "stream_bytes": STREAM_BYTES,
        },
        "register_elapsed_s": round(register_elapsed, 6),
        "cold_compiles": len(compiled_on),
        "compile_outcomes": counts,
        "scaling": scaling,
        "quotas": quota,
    }


def test_cluster_scaling_and_quota_isolation(bench_json):
    """The acceptance run: scaling floor, 1 compile, quota isolation."""
    result = run_bench()

    assert result["cold_compiles"] == 1, result["compile_outcomes"]

    scaling = result["scaling"]
    assert scaling["streams"] >= NUM_STREAMS
    assert scaling["speedup"] >= SPEEDUP_FLOOR, scaling

    quota = result["quotas"]
    assert quota["noisy_rejected"] > 0, quota
    assert quota["throughput_ratio"] >= QUOTA_RATIO_FLOOR, quota

    bench_json("cluster", result)
    print(
        f"\nbench_cluster[{scaling['mode']}]: one node "
        f"{scaling['one_node_mbps']:.2f} MB/s, 2-node aggregate "
        f"{scaling['fleet_aggregate_mbps']:.2f} MB/s "
        f"({scaling['speedup']:.2f}x) | compiles: "
        f"{result['cold_compiles']} | quota ratio "
        f"{quota['throughput_ratio']:.2f} "
        f"({quota['noisy_rejected']} rejected)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=NUM_STREAMS)
    args = parser.parse_args()
    result = run_bench(args.streams)
    from conftest import write_bench_json

    path = write_bench_json("cluster", result)
    scaling = result["scaling"]
    print(
        f"one node {scaling['one_node_mbps']:.2f} MB/s, fleet "
        f"{scaling['fleet_aggregate_mbps']:.2f} MB/s "
        f"({scaling['speedup']:.2f}x, {scaling['mode']}), "
        f"compiles={result['cold_compiles']}, "
        f"quota ratio {result['quotas']['throughput_ratio']:.2f}"
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
