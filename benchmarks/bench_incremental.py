"""Bench: incremental recompilation vs cold compile on a ruleset edit.

The economics the incremental compiler exists for: a live service edits
one pattern of a big ruleset (the Snort corpus here) and must not pay a
full pipeline recompile for the hundreds of untouched components.  The
acceptance ratio asserts the warm path — fingerprint every component,
reuse every cached artifact, compile only the one new component, and
compose dispatcher-ready engines — is >= 5x faster than the cold
pipeline on the same edited automaton.  Every run writes
machine-readable ``BENCH_incremental.json`` results.  Run directly:

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py -q -s
"""

import time

from repro.compile import (
    ArtifactStore,
    IncrementalCompiler,
    PipelineOptions,
    apply_update,
    compile_ruleset,
)
from repro.workloads.registry import get_benchmark

CORPUS_NAME = "Snort"
SCALE = 1.0 / 32.0
OPTIONS = PipelineOptions(backend="auto")

#: acceptance floor: 1-pattern incremental recompile vs cold compile
TARGET_SPEEDUP = 5.0


def _snort():
    return get_benchmark(CORPUS_NAME, SCALE).automaton


def _edited(base, tag: str):
    """One-pattern edit: the incremental compiler's steady-state load."""
    return apply_update(base, add={f"bench-{tag}": f"q{tag}w+e{tag}r"})


def _cold(automaton) -> None:
    compile_ruleset(automaton, OPTIONS).engine()


def _warm(compiler, automaton):
    composed = compiler.compile(automaton)
    composed.build_shards(1)
    return composed


def test_one_pattern_change_beats_cold_compile_5x(tmp_path, bench_json):
    """The acceptance ratio: incremental recompile >= 5x vs cold.

    Each measured round edits a *fresh* pattern into the base ruleset,
    so the warm leg always fingerprints everything, reuses every base
    component, and compiles exactly one new one — the honest 1-pattern
    hot-swap cost, not a pure cache hit.  Medians over 3 rounds with
    one retry absorb CI scheduler noise; BENCH_incremental.json is
    written win or lose.
    """
    base = _snort()
    compiler = IncrementalCompiler(ArtifactStore(tmp_path), OPTIONS)
    primed = compiler.compile(base)  # the live service's v1 (unmeasured)
    num_components = len(primed.components)
    best = (0.0, 0.0, 0.0)  # (speedup, cold median, warm median)
    last = None
    for attempt in range(2):
        cold_times, warm_times = [], []
        for rnd in range(3):
            edited = _edited(base, f"{attempt}{rnd}")
            start = time.perf_counter()
            _cold(edited)
            cold_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            last = _warm(compiler, edited)
            warm_times.append(time.perf_counter() - start)
            assert last.compiled_components == 1
            assert last.reused_components == num_components
        cold = sorted(cold_times)[len(cold_times) // 2]
        warm = sorted(warm_times)[len(warm_times) // 2]
        best = max(best, (cold / warm, cold, warm))
        if best[0] >= TARGET_SPEEDUP:
            break
    speedup, cold, warm = best
    bench_json(
        "incremental",
        {
            "corpus": CORPUS_NAME,
            "scale": SCALE,
            "options": OPTIONS.to_dict(),
            "states": len(base),
            "components": num_components,
            "edit": "add one pattern (one new component)",
            "aggregate": {
                "cold_median_s": round(cold, 6),
                "warm_median_s": round(warm, 6),
                "speedup": round(speedup, 2),
                "target": TARGET_SPEEDUP,
            },
        },
    )
    assert speedup >= TARGET_SPEEDUP, f"incremental speedup only {speedup:.2f}x"


def test_composed_engines_scan_identically_to_cold(tmp_path):
    """The composed fast path may not trade correctness for speed.

    Compared through the dispatcher (the service's actual scan path),
    which maps shard-local state ids back to global ones.
    """
    from repro.api.config import ScanConfig
    from repro.service.sharding import Dispatcher

    bench = get_benchmark(CORPUS_NAME, SCALE)
    edited = _edited(bench.automaton, "x")
    data = bench.input_stream(2000)
    compiler = IncrementalCompiler(ArtifactStore(tmp_path), OPTIONS)
    compiler.compile(bench.automaton)  # warm the component cache
    composed = compiler.compile(edited)
    config = ScanConfig(backend="auto", num_shards=2)
    fast = Dispatcher(
        edited, config, prebuilt=composed.build_shards(2, "auto")
    ).scan(data)
    cold = Dispatcher(edited, config).scan(data)
    assert [(r.cycle, r.state_id, r.code) for r in fast.reports] == [
        (r.cycle, r.state_id, r.code) for r in cold.reports
    ]
