"""Bench: telemetry overhead on the hot scan path.

The :mod:`repro.telemetry` metrics sit inside the kernel chunk loop,
the dispatcher fan-out and the service scan path, so the registry must
be near-free when enabled and free when disabled.  This smoke runs the
same engine workload with the default registry enabled and disabled
and holds the enabled median within 5% of the disabled one.  Run
directly:

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py -q
"""

import time

from repro.service import MatchingService
from repro.telemetry.metrics import default_registry

SCAN_ROUNDS = 7
OVERHEAD_TARGET = 1.05


def _median(times):
    return sorted(times)[len(times) // 2]


def test_telemetry_overhead_within_5pct(ctx, bench_json):
    """Acceptance ratio: enabled-telemetry scans within 5% of disabled.

    Interleaved medians absorb scheduler noise; one retry keeps a
    single unlucky burst on a shared CI runner from failing an
    unrelated change.  Always writes BENCH_telemetry.json, win or
    lose.
    """
    registry = default_registry()
    was_enabled = registry.enabled
    automaton = ctx.benchmark("Snort").automaton
    data = ctx.stream("Snort")
    service = MatchingService()
    service.scan(automaton, data)  # prime the compile cache
    best = (float("inf"), 0.0, 0.0)  # (ratio, disabled, enabled)
    try:
        for _ in range(2):
            on_times, off_times = [], []
            for _ in range(SCAN_ROUNDS):
                registry.disable()
                start = time.perf_counter()
                service.scan(automaton, data)
                off_times.append(time.perf_counter() - start)
                registry.enable()
                start = time.perf_counter()
                service.scan(automaton, data)
                on_times.append(time.perf_counter() - start)
            off, on = _median(off_times), _median(on_times)
            best = min(best, (on / off, off, on))
            if best[0] <= OVERHEAD_TARGET:
                break
    finally:
        registry.enabled = was_enabled
    ratio, off, on = best
    bench_json(
        "telemetry",
        {
            "workload": {"benchmark": "Snort", "bytes": len(data)},
            "disabled_median_s": round(off, 6),
            "enabled_median_s": round(on, 6),
            "overhead_ratio": round(ratio, 4),
            "target": OVERHEAD_TARGET,
        },
    )
    assert ratio <= OVERHEAD_TARGET, (
        f"telemetry overhead {100 * (ratio - 1):.1f}% exceeds "
        f"{100 * (OVERHEAD_TARGET - 1):.0f}%"
    )
