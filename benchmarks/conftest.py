"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper table/figure through the same
experiment modules the EXPERIMENTS.md results come from, at a reduced
scale so a full ``pytest benchmarks/ --benchmark-only`` run stays in
the minutes range.  Use ``repro.experiments.run_all`` directly for the
full-scale numbers.
"""

import json
import os
import platform
import subprocess
import time
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentContext

#: where machine-readable BENCH_*.json results land (the bench
#: trajectory the CI artifact job collects); default: the invocation cwd
BENCH_RESULTS_DIR = os.environ.get("BENCH_RESULTS_DIR", ".")

#: version of the BENCH_*.json envelope; bump when envelope fields
#: change shape so downstream trend tooling can branch on it (1 = the
#: original envelope, 2 = adds ``schema_version`` + ``git_commit``)
BENCH_SCHEMA_VERSION = 2


def _git_commit() -> str | None:
    """The repo's HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one bench's machine-readable result as ``BENCH_<name>.json``.

    The envelope records when and on what the numbers were taken;
    ``payload`` is the bench-specific body.  Benches call this from
    their acceptance-ratio tests so every run — local or CI — leaves a
    comparable artifact behind.
    """
    out_dir = Path(BENCH_RESULTS_DIR)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "git_commit": _git_commit(),
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_json():
    """The :func:`write_bench_json` writer, as a fixture."""
    return write_bench_json

BENCH_SCALE = 1.0 / 64.0
BENCH_STREAM = 2000
BENCH_SET = (
    "Brill",
    "TCP",
    "SPM",
    "RandomForest",
    "EntityResolution",
    "BlockRings",
    "Ranges1",
    "Snort",
)


@pytest.fixture(scope="session")
def ctx():
    context = ExperimentContext(
        scale=BENCH_SCALE, stream_length=BENCH_STREAM, benchmarks=BENCH_SET
    )
    # warm the caches shared by every experiment so each bench measures
    # its own work, not benchmark generation
    for name in BENCH_SET:
        context.benchmark(name)
    return context
