"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper table/figure through the same
experiment modules the EXPERIMENTS.md results come from, at a reduced
scale so a full ``pytest benchmarks/ --benchmark-only`` run stays in
the minutes range.  Use ``repro.experiments.run_all`` directly for the
full-scale numbers.
"""

import pytest

from repro.experiments.common import ExperimentContext

BENCH_SCALE = 1.0 / 64.0
BENCH_STREAM = 2000
BENCH_SET = (
    "Brill",
    "TCP",
    "SPM",
    "RandomForest",
    "EntityResolution",
    "BlockRings",
    "Ranges1",
    "Snort",
)


@pytest.fixture(scope="session")
def ctx():
    context = ExperimentContext(
        scale=BENCH_SCALE, stream_length=BENCH_STREAM, benchmarks=BENCH_SET
    )
    # warm the caches shared by every experiment so each bench measures
    # its own work, not benchmark generation
    for name in BENCH_SET:
        context.benchmark(name)
    return context
