"""Bench: batched multi-stream stepping vs per-stream kernel calls.

The scoreboard for the batched execution path: 64 concurrent Snort
streams advanced through one bit-parallel kernel, comparing N
independent ``run_chunk`` calls per tick against a single
``step_batch`` over the whole stream matrix.  This is the software
mirror of the paper's CAM amortization — one search key evaluated
against every stored state row at once — applied across *streams*
instead of states.  Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch.py -q -s
"""

import time

from repro.sim.engine import Engine

NUM_STREAMS = 64
CHUNK_BYTES = 4096
ROUNDS = 3
TARGET_SPEEDUP = 4.0


def _chunks(data: bytes) -> list[bytes]:
    return [
        data[start : start + CHUNK_BYTES]
        for start in range(0, len(data), CHUNK_BYTES)
    ]


def _keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def _streams(ctx) -> list[bytes]:
    bench = ctx.benchmark("Snort")
    return [
        bench.input_stream(ctx.stream_length, seed=i)
        for i in range(NUM_STREAMS)
    ]


def _run_per_stream(engine: Engine, streams: list[bytes]):
    """The baseline: each stream stepped through its own kernel calls."""
    reports = []
    for data in streams:
        state = engine.initial_state()
        stream_reports = []
        for chunk in _chunks(data):
            stream_reports.extend(
                engine.run_chunk(chunk, state, max_reports=10_000).reports
            )
        reports.append(stream_reports)
    return reports


def _run_batched(engine: Engine, streams: list[bytes]):
    """One vectorized kernel step per tick for all streams at once."""
    states = [engine.initial_state() for _ in streams]
    per_stream = [_chunks(data) for data in streams]
    reports = [[] for _ in streams]
    ticks = max(len(chunks) for chunks in per_stream)
    for tick in range(ticks):
        chunks = [
            chunks[tick] if tick < len(chunks) else b""
            for chunks in per_stream
        ]
        results = engine.step_batch(chunks, states, max_reports=10_000)
        for row, result in enumerate(results):
            reports[row].extend(result.reports)
    return reports


def test_batch_speedup_4x(ctx, bench_json):
    """The acceptance ratio: batched stepping >= 4x aggregate MB/s.

    Medians over interleaved rounds absorb scheduler noise; one retry
    keeps a single unlucky burst on a shared CI runner from failing an
    unrelated change.  Always writes BENCH_batch.json, win or lose.

    The backend is pinned to ``bitparallel``: Snort at bench scale is
    sparse enough that ``auto`` picks the sparse kernel, whose
    ``step_batch`` is the per-row loop fallback (correct, not faster).
    """
    automaton = ctx.benchmark("Snort").automaton
    streams = _streams(ctx)
    total_bytes = sum(len(data) for data in streams)
    engine = Engine(automaton, backend="bitparallel")
    engine.run(streams[0][:64])  # compile outside the measured region

    # correctness first: the batched path must reproduce the baseline
    baseline = _run_per_stream(engine, streams)
    batched = _run_batched(engine, streams)
    for row, (expect, got) in enumerate(zip(baseline, batched)):
        assert _keys(expect) == _keys(got), f"stream {row} diverges"

    best = (0.0, 0.0, 0.0)  # (speedup, per-stream median, batched median)
    for _ in range(2):
        solo_times, batch_times = [], []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            _run_per_stream(engine, streams)
            solo_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            _run_batched(engine, streams)
            batch_times.append(time.perf_counter() - start)
        solo = sorted(solo_times)[len(solo_times) // 2]
        batch = sorted(batch_times)[len(batch_times) // 2]
        best = max(best, (solo / batch, solo, batch))
        if best[0] >= TARGET_SPEEDUP:
            break
    speedup, solo, batch = best
    bench_json(
        "batch",
        {
            "workload": {
                "benchmark": "Snort",
                "streams": NUM_STREAMS,
                "stream_bytes": ctx.stream_length,
                "chunk_bytes": CHUNK_BYTES,
                "backend": "bitparallel",
            },
            # the medians behind the recorded speedup (same attempt)
            "per_stream_median_s": round(solo, 6),
            "batched_median_s": round(batch, 6),
            "per_stream_mbps": round(total_bytes / solo / 1e6, 4),
            "batched_mbps": round(total_bytes / batch / 1e6, 4),
            "speedup": round(speedup, 2),
            "target": TARGET_SPEEDUP,
        },
    )
    print(
        f"\nbench_batch: {NUM_STREAMS} streams, "
        f"per-stream {total_bytes / solo / 1e6:.3f} MB/s vs "
        f"batched {total_bytes / batch / 1e6:.3f} MB/s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= TARGET_SPEEDUP, f"batched speedup only {speedup:.2f}x"
