"""Bench: the compiled C step loop vs the pure-numpy bit-parallel kernel.

The scoreboard for the native backend: the same packed-uint64 cycle —
successor-row OR-reduce, match-mask AND, report extraction — run as one
C function call per chunk instead of per-cycle numpy dispatch.  Both
execution paths are measured: the solo ``run_chunk`` stream loop and
the 64-stream ``step_batch`` matrix.  Skipped (not failed) on hosts
where the compiled kernel cannot be loaded.  Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_native.py -q -s
"""

import time

import pytest

from repro.sim.backends.native import native_available, native_status
from repro.sim.engine import Engine

NUM_STREAMS = 64
SOLO_STREAM_BYTES = 20_000
BATCH_STREAM_BYTES = 4_000
CHUNK_BYTES = 4096
ROUNDS = 3
TARGET_SPEEDUP = 4.0

pytestmark = pytest.mark.skipif(
    not native_available(),
    reason=f"compiled kernel not loadable here ({native_status()})",
)


def _chunks(data: bytes) -> list[bytes]:
    return [
        data[start : start + CHUNK_BYTES]
        for start in range(0, len(data), CHUNK_BYTES)
    ]


def _keys(reports):
    return [(r.cycle, r.state_id, r.code) for r in reports]


def _run_solo(engine: Engine, data: bytes):
    """One stream stepped through the chunked resumable path."""
    state = engine.initial_state()
    reports = []
    for chunk in _chunks(data):
        reports.extend(
            engine.run_chunk(chunk, state, max_reports=10_000).reports
        )
    return reports


def _run_batched(engine: Engine, streams: list[bytes]):
    """All streams advanced one chunk per tick through step_batch."""
    states = [engine.initial_state() for _ in streams]
    per_stream = [_chunks(data) for data in streams]
    reports = [[] for _ in streams]
    for tick in range(max(len(chunks) for chunks in per_stream)):
        chunks = [
            chunks[tick] if tick < len(chunks) else b""
            for chunks in per_stream
        ]
        results = engine.step_batch(chunks, states, max_reports=10_000)
        for row, result in enumerate(results):
            reports[row].extend(result.reports)
    return reports


def _race(baseline_run, native_run):
    """Median-of-ROUNDS timings with one retry, interleaved rounds."""
    best = (0.0, 0.0, 0.0)  # (speedup, baseline median, native median)
    for _ in range(2):
        base_times, native_times = [], []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            baseline_run()
            base_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            native_run()
            native_times.append(time.perf_counter() - start)
        base = sorted(base_times)[len(base_times) // 2]
        native = sorted(native_times)[len(native_times) // 2]
        best = max(best, (base / native, base, native))
        if best[0] >= TARGET_SPEEDUP:
            break
    return best


def test_native_speedup_4x(ctx, bench_json):
    """The acceptance ratio: native >= 4x the numpy kernel (target ~10x)
    on both the solo run_chunk path and the batched step_batch path.

    Snort at bench scale keeps few states active per cycle, so the
    numpy kernel's cost is per-cycle Python/numpy dispatch — exactly
    the overhead the C loop removes.  Correctness is asserted before
    any timing; BENCH_native.json is always written, win or lose.
    """
    bench = ctx.benchmark("Snort")
    automaton = bench.automaton
    solo_data = bench.input_stream(SOLO_STREAM_BYTES, seed=0)
    streams = [
        bench.input_stream(BATCH_STREAM_BYTES, seed=i)
        for i in range(NUM_STREAMS)
    ]
    baseline = Engine(automaton, backend="bitparallel")
    native = Engine(automaton, backend="native")
    assert native.backend_name == "native"
    baseline.run(solo_data[:64])  # compile outside the measured region
    native.run(solo_data[:64])

    # correctness first: the C loop must reproduce the numpy kernel
    assert _keys(_run_solo(native, solo_data)) == _keys(
        _run_solo(baseline, solo_data)
    )
    expect = _run_batched(baseline, streams)
    got = _run_batched(native, streams)
    for row, (a, b) in enumerate(zip(expect, got)):
        assert _keys(a) == _keys(b), f"stream {row} diverges"

    solo_speedup, solo_base, solo_native = _race(
        lambda: _run_solo(baseline, solo_data),
        lambda: _run_solo(native, solo_data),
    )
    batch_bytes = sum(len(data) for data in streams)
    batch_speedup, batch_base, batch_native = _race(
        lambda: _run_batched(baseline, streams),
        lambda: _run_batched(native, streams),
    )
    bench_json(
        "native",
        {
            "workload": {
                "benchmark": "Snort",
                "solo_stream_bytes": SOLO_STREAM_BYTES,
                "batch_streams": NUM_STREAMS,
                "batch_stream_bytes": BATCH_STREAM_BYTES,
                "chunk_bytes": CHUNK_BYTES,
                "baseline": "bitparallel",
            },
            "solo": {
                "baseline_median_s": round(solo_base, 6),
                "native_median_s": round(solo_native, 6),
                "baseline_mbps": round(
                    SOLO_STREAM_BYTES / solo_base / 1e6, 4
                ),
                "native_mbps": round(
                    SOLO_STREAM_BYTES / solo_native / 1e6, 4
                ),
                "speedup": round(solo_speedup, 2),
            },
            "batched": {
                "baseline_median_s": round(batch_base, 6),
                "native_median_s": round(batch_native, 6),
                "baseline_mbps": round(batch_bytes / batch_base / 1e6, 4),
                "native_mbps": round(batch_bytes / batch_native / 1e6, 4),
                "speedup": round(batch_speedup, 2),
            },
            "target": TARGET_SPEEDUP,
        },
    )
    print(
        f"\nbench_native: solo {SOLO_STREAM_BYTES / solo_base / 1e6:.3f} -> "
        f"{SOLO_STREAM_BYTES / solo_native / 1e6:.3f} MB/s "
        f"({solo_speedup:.1f}x), batched "
        f"{batch_bytes / batch_base / 1e6:.3f} -> "
        f"{batch_bytes / batch_native / 1e6:.3f} MB/s "
        f"({batch_speedup:.1f}x)"
    )
    assert solo_speedup >= TARGET_SPEEDUP, (
        f"solo native speedup only {solo_speedup:.2f}x"
    )
    assert batch_speedup >= TARGET_SPEEDUP, (
        f"batched native speedup only {batch_speedup:.2f}x"
    )
