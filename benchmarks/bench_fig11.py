"""Bench: regenerate Fig 11 (compute density / energy / power)."""

from repro.experiments import fig11_density_energy_power


def test_fig11_density_energy_power(benchmark, ctx):
    table = benchmark(fig11_density_energy_power.run, ctx)
    # every other design burns more energy than CAMA-E on every benchmark
    for row in table.rows:
        assert all(ratio > 1.0 for ratio in row[8:]), row[0]
