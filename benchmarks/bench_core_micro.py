"""Micro-benchmarks of the core pipeline stages.

These are ablation-grade measurements (not paper artifacts): simulator
throughput, compile time, CAM-machine overhead, and the cost of the
encoding passes, so regressions in the substrate are visible.
"""

import numpy as np

from repro.core.compiler import CamaCompiler, compile_automaton
from repro.core.encoding.compression import compress_class
from repro.core.encoding.selection import select_encoding
from repro.core.machine import CamaMachine
from repro.sim.engine import Engine


def test_engine_throughput(benchmark, ctx):
    name = "Snort"
    engine = ctx.engine(name)
    data = ctx.stream(name)
    result = benchmark(engine.run, data)
    assert result.stats.num_cycles == len(data)


def test_engine_with_placement(benchmark, ctx):
    name = "Snort"
    engine = ctx.engine(name)
    data = ctx.stream(name)
    placement = ctx.build(name, "CAMA-E").placement
    result = benchmark(engine.run, data, placement=placement)
    assert result.stats.partition_enabled_cycles is not None


def test_enabled_at_gather(benchmark, ctx):
    """The CSR successor gather on a realistic active-set size."""
    name = "Snort"
    engine = ctx.engine(name)
    n = len(engine.automaton)
    rng = np.random.default_rng(0)
    # a few percent active, the regime the paper's benchmarks live in
    active = np.unique(rng.integers(0, n, size=max(4, n // 32)))

    def step():
        return engine.enabled_at(active, first_cycle=False)

    enabled = benchmark(step)
    assert enabled.size >= active.size // 2


def test_compile_benchmark(benchmark, ctx):
    automaton = ctx.benchmark("TCP").automaton
    program = benchmark(lambda: CamaCompiler().compile(automaton))
    assert program.total_entries >= len(automaton)


def test_encoding_selection(benchmark, ctx):
    automaton = ctx.benchmark("SPM").automaton
    choice = benchmark(select_encoding, automaton)
    assert choice.code_length == 16


def test_class_compression(benchmark, ctx):
    automaton = ctx.benchmark("RandomForest").automaton
    choice = select_encoding(automaton)
    wide = max(
        (s.symbol_class for s in automaton.states), key=len
    )
    entries = benchmark(compress_class, choice.encoding, wide)
    assert entries


def test_cama_machine_step_rate(benchmark, ctx):
    automaton = ctx.benchmark("Ranges1").automaton
    program = compile_automaton(automaton)
    machine = CamaMachine(program)
    data = ctx.stream("Ranges1")[:400]
    result = benchmark(machine.run, data)
    assert result.activity.num_cycles == len(data)
