"""Micro-benchmarks of the core pipeline stages.

These are ablation-grade measurements (not paper artifacts): simulator
throughput, compile time, CAM-machine overhead, the cost of the
encoding passes, and the sparse-vs-bit-parallel backend comparison, so
regressions in the substrate are visible.
"""

import time

import numpy as np
import pytest

from repro.core.compiler import CamaCompiler, compile_automaton
from repro.core.encoding.compression import compress_class
from repro.core.encoding.selection import select_encoding
from repro.core.machine import CamaMachine
from repro.sim.backends.native import native_available
from repro.sim.engine import Engine
from repro.workloads.generators import dense_activity_automaton

#: dense-activity workload for the backend comparison (~17% of states
#: active per cycle — an order of magnitude above the paper's regime)
DENSE_STATES = 1024
DENSE_MATCH_WIDTH = 230
DENSE_STREAM = 6000


def _dense_stream(length: int = DENSE_STREAM, seed: int = 1) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()


def test_engine_throughput(benchmark, ctx):
    name = "Snort"
    engine = ctx.engine(name)
    data = ctx.stream(name)
    result = benchmark(engine.run, data)
    assert result.stats.num_cycles == len(data)


def test_engine_with_placement(benchmark, ctx):
    name = "Snort"
    engine = ctx.engine(name)
    data = ctx.stream(name)
    placement = ctx.build(name, "CAMA-E").placement
    result = benchmark(engine.run, data, placement=placement)
    assert result.stats.partition_enabled_cycles is not None


def test_enabled_at_gather(benchmark, ctx):
    """The CSR successor gather on a realistic active-set size."""
    name = "Snort"
    engine = ctx.engine(name)
    n = len(engine.automaton)
    rng = np.random.default_rng(0)
    # a few percent active, the regime the paper's benchmarks live in
    active = np.unique(rng.integers(0, n, size=max(4, n // 32)))

    def step():
        return engine.enabled_at(active, first_cycle=False)

    enabled = benchmark(step)
    assert enabled.size >= active.size // 2


def test_compile_benchmark(benchmark, ctx):
    automaton = ctx.benchmark("TCP").automaton
    program = benchmark(lambda: CamaCompiler().compile(automaton))
    assert program.total_entries >= len(automaton)


def test_encoding_selection(benchmark, ctx):
    automaton = ctx.benchmark("SPM").automaton
    choice = benchmark(select_encoding, automaton)
    assert choice.code_length == 16


def test_class_compression(benchmark, ctx):
    automaton = ctx.benchmark("RandomForest").automaton
    choice = select_encoding(automaton)
    wide = max(
        (s.symbol_class for s in automaton.states), key=len
    )
    entries = benchmark(compress_class, choice.encoding, wide)
    assert entries


def test_sparse_backend_dense_workload(benchmark):
    """Sparse kernel on the dense-activity workload (the losing regime)."""
    automaton = dense_activity_automaton(
        DENSE_STATES, match_width=DENSE_MATCH_WIDTH
    )
    engine = Engine(automaton, backend="sparse")
    data = _dense_stream()
    result = benchmark(engine.run, data, max_reports=0)
    assert result.stats.num_cycles == len(data)


def test_bitparallel_backend_dense_workload(benchmark):
    """Bit-parallel kernel on the same workload (its winning regime)."""
    automaton = dense_activity_automaton(
        DENSE_STATES, match_width=DENSE_MATCH_WIDTH
    )
    engine = Engine(automaton, backend="bitparallel")
    data = _dense_stream()
    result = benchmark(engine.run, data, max_reports=0)
    assert result.stats.num_cycles == len(data)


@pytest.mark.skipif(
    not native_available(), reason="compiled kernel not loadable here"
)
def test_native_backend_dense_workload(benchmark):
    """Compiled C loop on the dense-activity workload."""
    automaton = dense_activity_automaton(
        DENSE_STATES, match_width=DENSE_MATCH_WIDTH
    )
    engine = Engine(automaton, backend="native")
    data = _dense_stream()
    result = benchmark(engine.run, data, max_reports=0)
    assert result.stats.num_cycles == len(data)


def test_bitparallel_backend_sparse_workload(benchmark, ctx):
    """Bit-parallel kernel on Snort — the regime where sparse wins."""
    engine = Engine(ctx.benchmark("Snort").automaton, backend="bitparallel")
    data = ctx.stream("Snort")
    result = benchmark(engine.run, data, max_reports=0)
    assert result.stats.num_cycles == len(data)


def test_backend_crossover():
    """Locate the sparse/bit-parallel crossover and print it.

    Sweeps the dense-activity family from narrow to wide match classes
    (rising per-cycle active fraction), times both kernels at each
    point, and emits the measured active fraction where the bit-
    parallel kernel starts winning — the quantity the ``auto`` policy's
    DENSE_ACTIVITY_THRESHOLD approximates.  Run with ``pytest -s`` to
    see the table.
    """
    data = _dense_stream(4000)
    have_native = native_available()
    rows = []
    crossover = None
    for width in (2, 8, 32, 96, 160, 230):
        automaton = dense_activity_automaton(512, match_width=width)
        sparse = Engine(automaton, backend="sparse")
        bitp = Engine(automaton, backend="bitparallel")
        measured = sparse.run(data, max_reports=0)
        fraction = measured.stats.avg_active_states() / len(automaton)
        t0 = time.perf_counter()
        sparse.run(data, max_reports=0)
        t1 = time.perf_counter()
        bitp.run(data, max_reports=0)
        t2 = time.perf_counter()
        tn = None
        if have_native:
            nat = Engine(automaton, backend="native")
            nat.run(data[:64], max_reports=0)  # bind outside the timing
            t3 = time.perf_counter()
            nat.run(data, max_reports=0)
            tn = time.perf_counter() - t3
        speedup = (t1 - t0) / (t2 - t1)
        rows.append((width, fraction, t1 - t0, t2 - t1, tn, speedup))
        if crossover is None and speedup >= 1.0:
            crossover = fraction
    print("\nwidth  active%  sparse_s  bitparallel_s  native_s  speedup")
    for width, fraction, ts, tb, tn, speedup in rows:
        native_col = f"{tn:8.4f}" if tn is not None else "     n/a"
        print(
            f"{width:5d}  {100 * fraction:6.2f}  {ts:8.4f}  {tb:13.4f}  "
            f"{native_col}  {speedup:6.2f}x"
        )
    print(
        "crossover active fraction: "
        + (f"{crossover:.4f}" if crossover is not None else ">measured range")
    )
    # at the dense end the packed kernel must win outright (the ISSUE's
    # acceptance bar is >=2x; keep the CI assertion tolerant of noisy
    # shared runners)
    assert rows[-1][-1] > 1.2, rows


def test_cama_machine_step_rate(benchmark, ctx):
    automaton = ctx.benchmark("Ranges1").automaton
    program = compile_automaton(automaton)
    machine = CamaMachine(program)
    data = ctx.stream("Ranges1")[:400]
    result = benchmark(machine.run, data)
    assert result.activity.num_cycles == len(data)
