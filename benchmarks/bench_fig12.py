"""Bench: regenerate Fig 12 (CAMA energy breakdown)."""

from repro.experiments import fig12_energy_breakdown


def test_fig12_energy_breakdown(benchmark, ctx):
    table = benchmark(fig12_energy_breakdown.run, ctx)
    for row in table.rows:
        assert sum(row[1:4]) > 99.0  # fractions sum to ~100%
