"""The matching-service facade: cached rulesets, shards, sessions.

:class:`MatchingService` is the one object a host application holds.
It owns a :class:`RulesetManager` (compiled-artifact LRU), builds and
caches one sharded :class:`Dispatcher` per distinct ruleset, and hands
out :class:`Session`\\ s for streaming tenants.  One-shot work goes
through :meth:`~MatchingService.scan` / :meth:`~MatchingService.
scan_many`, which report wall-clock throughput alongside the match
results.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.api.config import ScanConfig, resolve_legacy_config
from repro.automata.nfa import Automaton
from repro.compile.incremental import (
    ComposedRuleset,
    IncrementalCompiler,
    apply_update,
)
from repro.errors import SimulationError
from repro.service.ruleset import CacheStats, RulesetManager
from repro.service.session import Session
from repro.service.sharding import Dispatcher
from repro.sim.backends import ExecutionBackend
from repro.sim.backends.base import check_truncation_policy, handle_truncation
from repro.sim.reports import Report
from repro.sim.trace import TraceStats
from repro.telemetry.metrics import default_registry
from repro.telemetry.tracing import Trace, start_trace

_REGISTRY = default_registry()
_SERVICE_SCANS = _REGISTRY.counter(
    "repro_service_scans_total",
    "One-shot MatchingService scans, by dispatcher cache outcome",
    ("cached",),
)
_SERVICE_SCAN_BYTES = _REGISTRY.counter(
    "repro_service_scan_bytes_total",
    "Input bytes consumed by one-shot MatchingService scans",
)
_SERVICE_SCAN_SECONDS = _REGISTRY.histogram(
    "repro_service_scan_seconds",
    "End-to-end MatchingService.scan wall-clock latency",
)
_SESSIONS_OPEN = _REGISTRY.gauge(
    "repro_service_sessions_open",
    "Streaming sessions currently open across MatchingService instances",
)
_RULESET_VERSIONS = _REGISTRY.gauge(
    "repro_ruleset_versions",
    "Live ruleset versions (including retiring ones still draining "
    "sessions) across MatchingService instances",
)
_RULESET_UPDATES = _REGISTRY.counter(
    "repro_ruleset_updates_total",
    "Hot-swap ruleset updates applied (a new version compiled and bound)",
)


@dataclass
class RulesetVersion:
    """One live version of a hot-swappable ruleset lineage.

    A *lineage* is identified by its first version's fingerprint (the
    registration handle); each :meth:`MatchingService.update_ruleset`
    appends a new version whose own fingerprint keys the engines.  A
    version is *retired* when a newer one exists; it stays resident —
    dispatcher, pinned component artifacts and all — until its last
    open session closes, so in-flight streams always finish on the
    engine they started on.
    """

    lineage: str
    version: int
    fingerprint: str
    automaton: Automaton
    #: component artifact keys pinned in the store while this version
    #: is live (empty when the incremental path was unavailable)
    component_keys: tuple[str, ...] = ()
    reused_components: int = 0
    compiled_components: int = 0
    #: open sessions bound to this version
    sessions: int = 0
    #: a newer version exists; retire when sessions drain to zero
    retired: bool = False


@dataclass
class ServiceResult:
    """One scan's outcome plus service-level metadata."""

    reports: list[Report]
    stats: TraceStats
    bytes_scanned: int
    elapsed_s: float
    num_shards: int
    #: True when the compiled shard engines were already resident
    cached: bool
    #: resolved kernel name per shard ("sparse" / "bitparallel")
    backends: list[str] = field(default_factory=list)
    #: True when the kept-reports cap truncated recording
    truncated: bool = False
    #: modeled CAMA hardware cost (:class:`~repro.telemetry.ledger.
    #: HardwareLedger`); present only under ``ScanConfig(hardware_
    #: ledger=True)``
    ledger: object | None = None
    #: the scan's span tree; present only under ``ScanConfig(trace=True)``
    trace: Trace | None = None

    @property
    def trace_id(self) -> str | None:
        return self.trace.trace_id if self.trace is not None else None

    @property
    def num_reports(self) -> int:
        return self.stats.num_reports

    @property
    def throughput_mbps(self) -> float:
        """Scan throughput in MB/s (0 when too fast to time)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.bytes_scanned / self.elapsed_s / 1e6


class MatchingService:
    """Streaming, sharded, multi-tenant automata-matching service.

    Args:
        config: the :class:`~repro.api.config.ScanConfig` driving this
            service — backend policy, sharding, workers, chunking, the
            default kept-reports cap and truncation policy, the
            persistent artifact store, and the multiprocessing start
            method.  One validated object replaces the former keyword
            sprawl; see :class:`ScanConfig` for field semantics.
        cache_capacity, num_shards, workers, chunk_size, backend,
            artifact_store, default_max_reports, on_truncation,
            mp_start_method: deprecated loose keywords; a
            :class:`ScanConfig` is built from them (with a
            :class:`DeprecationWarning`) when ``config`` is omitted.
            ``default_max_reports`` maps to ``ScanConfig.max_reports``.

    The service is safe to share across threads: compiled-artifact
    acquisition and the session table are lock-protected, while scans
    themselves run concurrently (the compiled kernels are read-only).
    """

    def __init__(
        self,
        config: ScanConfig | None = None,
        *,
        cache_capacity: int | None = None,
        num_shards: int | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        backend: str | ExecutionBackend | None = None,
        artifact_store=None,
        default_max_reports: int | None = None,
        on_truncation: str | None = None,
        mp_start_method: str | None = None,
    ) -> None:
        config = resolve_legacy_config(
            "MatchingService",
            config,
            {
                "cache_capacity": cache_capacity,
                "num_shards": num_shards,
                "workers": workers,
                "chunk_size": chunk_size,
                "backend": backend,
                "artifact_store": artifact_store,
                "_default_max_reports": default_max_reports,
                "on_truncation": on_truncation,
                "mp_start_method": mp_start_method,
            },
        )
        self.config = config if config is not None else ScanConfig()
        self.manager = RulesetManager(
            capacity=self.config.cache_capacity,
            store=self.config.artifact_store,
        )
        self.sessions: dict[str, Session] = {}
        # LRU-bounded alongside the manager: a Dispatcher pins its shard
        # engines, so an unbounded dict here would defeat the cache cap.
        self._dispatchers: OrderedDict[str, Dispatcher] = OrderedDict()
        # guards the dispatcher LRU and the session table; held only for
        # dict operations, never while compiling or matching
        self._lock = threading.RLock()
        # serializes ruleset compilation so concurrent threads neither
        # double-compile one ruleset nor race the manager's LRU — without
        # stalling cache-hit lookups (which only take ``_lock``)
        self._compile_lock = threading.Lock()
        # dispatchers evicted while their worker pool exists retire here
        # (terminating a pool mid-scan would kill another thread's work);
        # they are closed with the service
        self._retired: list[Dispatcher] = []
        # hardware-ledger reference material — (DesignBuild, sparse
        # reference Engine) per (fingerprint, design) — shares the
        # manager's LRU bound; guarded by _compile_lock (placement +
        # compile are the expensive parts)
        self._ledger_refs: OrderedDict[tuple[str, str], tuple] = OrderedDict()
        #: running modeled-cost totals across ledgered scans/sessions
        #: (:class:`~repro.telemetry.ledger.LedgerAccumulator`), exposed
        #: by the server's stats frame; folded under ``_lock``
        from repro.telemetry.ledger import LedgerAccumulator

        self.ledger_totals = LedgerAccumulator()
        # versioned live rulesets: lineage handle -> version list
        # (oldest first), plus fingerprint -> record and session-name ->
        # record indexes; all guarded by _lock
        self._lineages: OrderedDict[str, list[RulesetVersion]] = OrderedDict()
        self._version_by_fp: dict[str, RulesetVersion] = {}
        self._session_versions: dict[str, RulesetVersion] = {}
        # the incremental compiler shares the manager's store and forced
        # options; None when the backend is an ExecutionBackend instance
        # (no stable artifact key exists for those)
        options = self.manager.artifact_options(self.config.backend)
        self._incremental = (
            IncrementalCompiler(store=self.manager.store, options=options)
            if options is not None
            else None
        )
        self.closed = False

    # -- config views (the pre-facade attribute surface) ------------------
    @property
    def num_shards(self) -> int:
        return self.config.num_shards

    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def chunk_size(self) -> int:
        return self.config.chunk_size

    @property
    def backend(self) -> str | ExecutionBackend:
        return self.config.backend

    @property
    def mp_start_method(self) -> str | None:
        return self.config.mp_start_method

    @property
    def default_max_reports(self) -> int:
        return self.config.max_reports

    @property
    def on_truncation(self) -> str:
        return self.config.on_truncation

    @property
    def cache_stats(self) -> CacheStats:
        return self.manager.stats

    def dispatcher(
        self, automaton: Automaton, *, key: str | None = None
    ) -> Dispatcher:
        """The cached sharded dispatcher for ``automaton``.

        ``key`` lets callers that already fingerprinted the ruleset skip
        re-hashing it (the fingerprint is O(states + transitions)).
        """
        if key is None:
            key = self.manager.fingerprint(automaton)
        cached = self._cached_dispatcher(key)
        if cached is not None:
            return cached
        with self._compile_lock:
            # re-check: another thread may have compiled it while we waited
            cached = self._cached_dispatcher(key)
            if cached is not None:
                return cached
            dispatcher = Dispatcher(
                automaton, self.config, manager=self.manager
            )
            dispatcher.engines  # compile (and cache) the shard engines now
            self._insert_dispatcher(key, dispatcher)
            return dispatcher

    def _insert_dispatcher(self, key: str, dispatcher: Dispatcher) -> None:
        """LRU-insert a freshly built dispatcher (evicting past capacity)."""
        with self._lock:
            if self.closed:
                raise SimulationError("the matching service is closed")
            self._dispatchers[key] = dispatcher
            evicted = None
            if len(self._dispatchers) > self.manager.capacity:
                _, evicted = self._dispatchers.popitem(last=False)
                if evicted._pool is not None:
                    # another thread may be mid-scan on this pool;
                    # retire it and close with the service instead
                    self._retired.append(evicted)
                    evicted = None
        if evicted is not None:
            evicted.close()

    def _cached_dispatcher(self, key: str) -> Dispatcher | None:
        with self._lock:
            if self.closed:
                raise SimulationError("the matching service is closed")
            dispatcher = self._dispatchers.get(key)
            if dispatcher is not None:
                self._dispatchers.move_to_end(key)
            return dispatcher

    # -- hardware-ledger plumbing -----------------------------------------
    def _check_design(self, ledger_design: str | None) -> str:
        """Resolve (and validate) a per-call ledger-design override."""
        if ledger_design is None:
            return self.config.ledger_design
        from repro.telemetry.ledger import check_ledger_design

        return check_ledger_design(ledger_design)

    def _ledger_probe(self, automaton: Automaton, key: str, design: str):
        """A fresh :class:`~repro.telemetry.ledger.LedgerProbe` for one
        scan/session, reusing the cached design build + reference engine
        (placement and compilation are the expensive parts; the probe
        itself only holds stream state)."""
        from repro.telemetry.ledger import LedgerProbe, build_design

        ref_key = (key, design)
        with self._compile_lock:
            ref = self._ledger_refs.get(ref_key)
            if ref is not None:
                self._ledger_refs.move_to_end(ref_key)
            else:
                probe = LedgerProbe(
                    automaton, design, build=build_design(design, automaton)
                )
                ref = (probe.build, probe.engine)
                self._ledger_refs[ref_key] = ref
                if len(self._ledger_refs) > self.manager.capacity:
                    self._ledger_refs.popitem(last=False)
                return probe
        build, engine = ref
        return LedgerProbe(automaton, design, build=build, engine=engine)

    def _fold_ledger(self, ledger) -> None:
        if ledger is None or self.ledger_totals is None:
            return
        with self._lock:
            self.ledger_totals.add(ledger)

    # -- precompiled-artifact registration --------------------------------
    def register_artifact(self, artifact) -> tuple[str, Automaton]:
        """Adopt a precompiled ruleset artifact ("compile once, load
        anywhere"): returns ``(handle, automaton)``.

        ``artifact`` may be a :class:`~repro.compile.artifact.
        CompiledArtifact`, its raw bytes, or a path to one.  The
        reconstructed automaton is the ruleset; its prebuilt engine is
        seeded into the compiled-ruleset cache (so the first scan skips
        compilation when the sharding/backend configuration lines up),
        and the artifact is persisted to the service's store when one
        is attached.  The handle is the ruleset fingerprint — the same
        handle a source-level registration of the same rules yields.
        """
        from pathlib import Path

        from repro.compile.artifact import CompiledArtifact

        if isinstance(artifact, (bytes, bytearray)):
            artifact = CompiledArtifact.from_bytes(bytes(artifact))
        elif isinstance(artifact, (str, Path)):
            artifact = CompiledArtifact.load(artifact)
        # Uploads are untrusted: verify() re-binds the content-address
        # key to (content, options) and re-derives the match tables, so
        # a hand-edited artifact can neither poison another ruleset's
        # slot in a shared store nor smuggle in wrong match behaviour.
        artifact.verify()
        automaton = artifact.automaton()
        # recomputed (not trusted from the manifest) so the handle is
        # guaranteed to match a source-level registration of the same
        # rules, even for a hand-edited artifact
        handle = self.manager.fingerprint(automaton)
        with self._lock:
            if self.closed:
                raise SimulationError("the matching service is closed")
        if self.manager.store is not None:
            self.manager.store.put(artifact)
        if isinstance(self.backend, str):
            # the "auto" -> "defer to the artifact's recorded kernel"
            # rewrite is resolved once, inside ScanConfig
            self.manager.seed_engine(
                automaton,
                self.backend,
                artifact.engine(backend=self.config.engine_backend),
                fingerprint=handle,
            )
        return handle, automaton

    # -- versioned live rulesets ------------------------------------------
    def register_ruleset(
        self, automaton: Automaton, *, key: str | None = None
    ) -> RulesetVersion:
        """Register ``automaton`` as version 1 of a live lineage.

        Idempotent: re-registering a fingerprint already tracked returns
        its existing record.  When the incremental path is available
        (string backend), the dispatcher is *composed* from per-component
        artifacts — written to the store and pinned against eviction —
        so a later :meth:`update_ruleset` reuses every untouched
        component.
        """
        if key is None:
            key = self.manager.fingerprint(automaton)
        with self._lock:
            if self.closed:
                raise SimulationError("the matching service is closed")
            record = self._version_by_fp.get(key)
        if record is not None:
            return record
        composed = self._compile_incremental(automaton)
        self._bind_dispatcher(automaton, key, composed)
        with self._lock:
            record = self._version_by_fp.get(key)
            if record is not None:  # lost a registration race; defer
                return record
            record = self._make_record(
                lineage=key, version=1, fingerprint=key,
                automaton=automaton, composed=composed,
            )
            self._lineages[key] = [record]
            self._version_by_fp[key] = record
        self._pin(record)
        _RULESET_VERSIONS.labels().inc()
        return record

    def update_ruleset(
        self,
        ruleset: "Automaton | str",
        *,
        add=None,
        remove=None,
        automaton: Automaton | None = None,
        name: str | None = None,
    ) -> RulesetVersion:
        """Hot-swap a lineage to a new version without dropping streams.

        ``ruleset`` names the lineage — a handle string, any live
        version's fingerprint, or any live version's automaton (an
        unregistered automaton is registered first, so the very first
        update works too).  The new version is either ``automaton``
        directly or the result of :func:`~repro.compile.incremental.
        apply_update` over the latest version with ``add``/``remove``.

        The new version compiles through the incremental path (cached
        components reused, missing ones compiled — in parallel when
        several are missing), then binds atomically: scans and sessions
        opened after this call see the new engines, while sessions
        already open keep feeding the old version's dispatcher and
        retire it when the last one closes.
        """
        latest = self._resolve_lineage(ruleset)
        if automaton is None:
            automaton = apply_update(
                latest.automaton, add=add, remove=remove, name=name
            )
        new_key = self.manager.fingerprint(automaton)
        if new_key == latest.fingerprint:
            return latest
        composed = self._compile_incremental(automaton)
        self._bind_dispatcher(automaton, new_key, composed)
        with self._lock:
            versions = self._lineages[latest.lineage]
            current = versions[-1]
            if current.fingerprint == new_key:  # concurrent identical update
                return current
            record = self._make_record(
                lineage=latest.lineage,
                version=current.version + 1,
                fingerprint=new_key,
                automaton=automaton,
                composed=composed,
            )
            versions.append(record)
            self._version_by_fp[new_key] = record
            current.retired = True
        self._pin(record)
        _RULESET_VERSIONS.labels().inc()
        _RULESET_UPDATES.labels().inc()
        self._retire_if_idle(current)
        return record

    def ruleset_version(self, fingerprint: str) -> RulesetVersion | None:
        """The live version record keyed by ``fingerprint`` (or None)."""
        with self._lock:
            return self._version_by_fp.get(fingerprint)

    def lineage_versions(self, lineage: str) -> list[RulesetVersion]:
        """All live versions of ``lineage``, oldest first."""
        with self._lock:
            return list(self._lineages.get(lineage, ()))

    def version_summary(self) -> dict:
        """Aggregate version counts for the stats surface."""
        with self._lock:
            records = [r for vs in self._lineages.values() for r in vs]
            return {
                "lineages": len(self._lineages),
                "live": len(records),
                "retiring": sum(1 for r in records if r.retired),
            }

    @staticmethod
    def _make_record(
        *,
        lineage: str,
        version: int,
        fingerprint: str,
        automaton: Automaton,
        composed: ComposedRuleset | None,
    ) -> RulesetVersion:
        return RulesetVersion(
            lineage=lineage,
            version=version,
            fingerprint=fingerprint,
            automaton=automaton,
            component_keys=composed.component_keys if composed else (),
            reused_components=composed.reused_components if composed else 0,
            compiled_components=composed.compiled_components if composed else 0,
        )

    def _compile_incremental(
        self, automaton: Automaton
    ) -> ComposedRuleset | None:
        if self._incremental is None:
            return None
        with self._compile_lock:
            return self._incremental.compile(
                automaton,
                workers=self.workers,
                mp_start_method=self.mp_start_method,
            )

    def _bind_dispatcher(
        self,
        automaton: Automaton,
        key: str,
        composed: ComposedRuleset | None,
    ) -> Dispatcher:
        """The dispatcher for ``key`` — composed from cached component
        artifacts when possible, classic compile otherwise."""
        if composed is None:
            return self.dispatcher(automaton, key=key)
        cached = self._cached_dispatcher(key)
        if cached is not None:
            return cached
        with self._compile_lock:
            cached = self._cached_dispatcher(key)
            if cached is not None:
                return cached
            shards, engines = composed.build_shards(
                self.config.num_shards, self.config.backend
            )
            dispatcher = Dispatcher(
                automaton,
                self.config,
                manager=self.manager,
                prebuilt=(shards, engines),
            )
            self._insert_dispatcher(key, dispatcher)
            return dispatcher

    def _resolve_lineage(self, ruleset: "Automaton | str") -> RulesetVersion:
        """The latest live version of the lineage ``ruleset`` names."""
        if isinstance(ruleset, Automaton):
            fingerprint = self.manager.fingerprint(ruleset)
            with self._lock:
                record = self._version_by_fp.get(fingerprint)
            if record is None:
                record = self.register_ruleset(ruleset, key=fingerprint)
            with self._lock:
                return self._lineages[record.lineage][-1]
        with self._lock:
            versions = self._lineages.get(ruleset)
            if versions:
                return versions[-1]
            record = self._version_by_fp.get(ruleset)
            if record is not None:
                return self._lineages[record.lineage][-1]
        raise SimulationError(f"unknown ruleset lineage: {ruleset!r}")

    def _pin(self, record: RulesetVersion) -> None:
        if record.component_keys and self.manager.store is not None:
            self.manager.store.pin(record.component_keys)

    def _unpin(self, record: RulesetVersion) -> None:
        if record.component_keys and self.manager.store is not None:
            self.manager.store.unpin(record.component_keys)

    def _retire_if_idle(self, record: RulesetVersion) -> None:
        """Release a retired version once its sessions have drained."""
        evict = None
        with self._lock:
            if not record.retired or record.sessions > 0:
                return
            versions = self._lineages.get(record.lineage)
            if not versions or record not in versions:
                return  # already released
            versions.remove(record)
            if self._version_by_fp.get(record.fingerprint) is record:
                del self._version_by_fp[record.fingerprint]
            still_keyed = any(
                r.fingerprint == record.fingerprint
                for vs in self._lineages.values()
                for r in vs
            )
            if not still_keyed:
                evict = self._dispatchers.pop(record.fingerprint, None)
                if evict is not None and evict._pool is not None:
                    self._retired.append(evict)
                    evict = None
        if evict is not None:
            evict.close()
        self._unpin(record)
        _RULESET_VERSIONS.labels().dec()

    # -- one-shot scans --------------------------------------------------
    def scan(
        self,
        automaton: Automaton,
        data: bytes,
        *,
        chunk_size: int | None = None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        hardware_ledger: bool | None = None,
        ledger_design: str | None = None,
        trace: bool | None = None,
    ) -> ServiceResult:
        """Scan one complete stream, reusing cached compiled shards.

        When the *default* kept-reports cap truncates recording, the
        service's (or the call's) ``on_truncation`` policy applies —
        warn, error, or stay silent; an explicit ``max_reports`` is
        taken as intentional, mirroring :meth:`Engine.run`.

        ``hardware_ledger`` / ``ledger_design`` / ``trace`` override the
        service config's telemetry fields for this call (None = keep).
        """
        policy = (
            self.on_truncation
            if on_truncation is None
            else check_truncation_policy(on_truncation)
        )
        want_ledger = (
            self.config.hardware_ledger
            if hardware_ledger is None
            else hardware_ledger
        )
        design = self._check_design(ledger_design)
        want_trace = self.config.trace if trace is None else trace
        key = self.manager.fingerprint(automaton)
        cached = key in self._dispatchers
        explicit = max_reports is not None
        cap = max_reports if explicit else self.default_max_reports
        size = self.chunk_size if chunk_size is None else chunk_size
        trace = Trace() if want_trace else None
        ledger = None

        def run():
            dispatcher = self.dispatcher(automaton, key=key)
            result = dispatcher.scan(data, chunk_size=size, max_reports=cap)
            probe = None
            if want_ledger:
                probe = self._ledger_probe(automaton, key, design)
                if trace is not None:
                    with trace.span("ledger.probe", design=design):
                        probe.run(data)
                else:
                    probe.run(data)
            return dispatcher, result, probe

        start = time.perf_counter()
        if trace is not None:
            with start_trace(trace):
                with trace.span(
                    "service.scan", ruleset=automaton.name, bytes=len(data)
                ):
                    dispatcher, result, probe = run()
        else:
            dispatcher, result, probe = run()
        elapsed = time.perf_counter() - start

        if probe is not None:
            ledger = probe.ledger()
            self._fold_ledger(ledger)
        _SERVICE_SCANS.labels("hit" if cached else "miss").inc()
        _SERVICE_SCAN_BYTES.labels().inc(len(data))
        _SERVICE_SCAN_SECONDS.labels().observe(elapsed)
        if result.truncated and not explicit:
            handle_truncation(
                policy,
                f"scan of {automaton.name!r} hit the kept-reports cap "
                f"({cap}); further reports were counted but not recorded",
            )
        return ServiceResult(
            reports=result.reports,
            stats=result.stats,
            bytes_scanned=len(data),
            elapsed_s=elapsed,
            num_shards=dispatcher.num_shards,
            cached=cached,
            backends=dispatcher.backend_names,
            truncated=result.truncated,
            ledger=ledger,
            trace=trace,
        )

    def scan_many(
        self,
        automaton: Automaton,
        streams: dict[str, bytes],
        *,
        chunk_size: int | None = None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        hardware_ledger: bool | None = None,
        ledger_design: str | None = None,
        trace: bool | None = None,
    ) -> dict[str, ServiceResult]:
        """Batch entry point: scan every named stream against one ruleset.

        The ruleset compiles (at most) once; each stream gets its own
        independent START_OF_DATA semantics, report offsets, and
        truncation handling (a truncating stream warns or errors per
        ``on_truncation`` without affecting its siblings).

        With two or more streams (and ``ScanConfig.batch_max_rows >
        1``), the streams advance *together*: groups of up to
        ``batch_max_rows`` streams step through the input in batched
        kernel calls (:meth:`Dispatcher.run_chunk_batch`), amortizing
        per-chunk dispatch across the whole group.  Results are
        byte-identical to the sequential path; per-stream
        ``elapsed_s`` then reports the group's shared wall-clock.
        Hardware-ledger and trace runs fall back to sequential scans
        (both instruments are inherently per-stream).
        """
        want_ledger = (
            self.config.hardware_ledger
            if hardware_ledger is None
            else hardware_ledger
        )
        want_trace = self.config.trace if trace is None else trace
        if (
            len(streams) < 2
            or self.config.batch_max_rows < 2
            or want_ledger
            or want_trace
        ):
            self.dispatcher(automaton)  # compile once, before the loop
            return {
                name: self.scan(
                    automaton,
                    data,
                    chunk_size=chunk_size,
                    max_reports=max_reports,
                    on_truncation=on_truncation,
                    hardware_ledger=hardware_ledger,
                    ledger_design=ledger_design,
                    trace=trace,
                )
                for name, data in streams.items()
            }
        return self._scan_many_batched(
            automaton,
            streams,
            chunk_size=chunk_size,
            max_reports=max_reports,
            on_truncation=on_truncation,
        )

    def _scan_many_batched(
        self,
        automaton: Automaton,
        streams: dict[str, bytes],
        *,
        chunk_size: int | None,
        max_reports: int | None,
        on_truncation: str | None,
    ) -> dict[str, ServiceResult]:
        """Batched core of :meth:`scan_many`: grouped lock-step scans."""
        from repro.service.batching import observe_flush
        from repro.service.merge import accumulate_stats

        policy = (
            self.on_truncation
            if on_truncation is None
            else check_truncation_policy(on_truncation)
        )
        explicit = max_reports is not None
        cap = max_reports if explicit else self.default_max_reports
        size = self.chunk_size if chunk_size is None else chunk_size
        key = self.manager.fingerprint(automaton)
        cached = key in self._dispatchers
        dispatcher = self.dispatcher(automaton, key=key)
        num_states = sum(len(s.global_ids) for s in dispatcher.shards)
        batch_rows = self.config.batch_max_rows

        names = list(streams)
        reports: dict[str, list[Report]] = {name: [] for name in names}
        stats = {name: TraceStats(num_states=num_states) for name in names}
        truncated = {name: False for name in names}
        elapsed: dict[str, float] = {}

        for group_start in range(0, len(names), batch_rows):
            group = names[group_start : group_start + batch_rows]
            states = {name: dispatcher.initial_states() for name in group}
            offsets = {name: 0 for name in group}
            start = time.perf_counter()
            while True:
                # streams leave the batch as they run dry; the group's
                # live prefix shrinks until everyone has finished
                live = [
                    name
                    for name in group
                    if offsets[name] < len(streams[name])
                ]
                if not live:
                    break
                chunks = [
                    streams[name][offsets[name] : offsets[name] + size]
                    for name in live
                ]
                # shrinking per-stream budgets keep the per-tick trim
                # identical to Dispatcher.scan's end-of-stream trim
                budgets = [
                    max(0, cap - len(reports[name])) for name in live
                ]
                observe_flush(
                    len(live),
                    "rows_full" if len(live) == batch_rows else "drain",
                )
                results = dispatcher.run_chunk_batch(
                    chunks,
                    [states[name] for name in live],
                    max_reports=budgets,
                )
                for name, chunk, result in zip(live, chunks, results):
                    offsets[name] += len(chunk)
                    reports[name].extend(result.reports)
                    accumulate_stats(stats[name], result.stats)
                    truncated[name] |= result.truncated
            group_elapsed = time.perf_counter() - start
            for name in group:
                elapsed[name] = group_elapsed

        out: dict[str, ServiceResult] = {}
        for name in names:
            _SERVICE_SCANS.labels("hit" if cached else "miss").inc()
            _SERVICE_SCAN_BYTES.labels().inc(len(streams[name]))
            _SERVICE_SCAN_SECONDS.labels().observe(elapsed[name])
            if truncated[name] and not explicit:
                handle_truncation(
                    policy,
                    f"scan of {automaton.name!r} (stream {name!r}) hit "
                    f"the kept-reports cap ({cap}); further reports "
                    f"were counted but not recorded",
                )
            out[name] = ServiceResult(
                reports=reports[name],
                stats=stats[name],
                bytes_scanned=len(streams[name]),
                elapsed_s=elapsed[name],
                num_shards=dispatcher.num_shards,
                cached=cached,
                backends=dispatcher.backend_names,
                truncated=truncated[name],
            )
        return out

    # -- streaming sessions ----------------------------------------------
    def open_session(
        self,
        automaton: Automaton,
        name: str,
        *,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        hardware_ledger: bool | None = None,
        ledger_design: str | None = None,
    ) -> Session:
        """Open a named resumable stream against ``automaton``.

        ``max_reports`` / ``on_truncation`` (and the hardware-ledger
        fields) default to the service config's values; pass any to
        override for this session.
        """
        want_ledger = (
            self.config.hardware_ledger
            if hardware_ledger is None
            else hardware_ledger
        )
        design = self._check_design(ledger_design)
        key = self.manager.fingerprint(automaton)
        dispatcher = self.dispatcher(automaton, key=key)
        probe = None
        if want_ledger:
            probe = self._ledger_probe(automaton, key, design)
        with self._lock:
            if name in self.sessions and not self.sessions[name].closed:
                raise SimulationError(f"session {name!r} is already open")
            session = Session(
                name,
                dispatcher,
                self.config.merged(
                    max_reports=max_reports, on_truncation=on_truncation
                ),
                ledger_probe=probe,
            )
            # bind the session to the ruleset version it opened against:
            # a later update_ruleset retires this version only after the
            # session closes, so the stream finishes on these engines
            record = self._version_by_fp.get(key)
            if record is not None:
                record.sessions += 1
                self._session_versions[name] = record
                session.ruleset_version = record.version
            self.sessions[name] = session
            _SESSIONS_OPEN.labels().inc()
            return session

    def close_session(self, name: str):
        """Close a session and return its accumulated result."""
        with self._lock:
            try:
                session = self.sessions.pop(name)
            except KeyError:
                raise SimulationError(f"no such session: {name!r}") from None
            record = self._session_versions.pop(name, None)
            if record is not None:
                record.sessions -= 1
        _SESSIONS_OPEN.labels().dec()
        self._fold_ledger(session.ledger())
        result = session.close()
        if record is not None:
            self._retire_if_idle(record)
        return result

    def close(self) -> None:
        """Tear the service down: sessions, dispatchers, worker pools.

        Idempotent and safe after a scan or feed raised mid-stream:
        every open session is closed (its accumulated result is
        discarded), every dispatcher — including any the LRU already
        evicted — releases its worker pool, and later use of the
        service raises instead of silently recompiling.
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            sessions = list(self.sessions.values())
            self.sessions.clear()
            dispatchers = list(self._dispatchers.values()) + self._retired
            self._dispatchers.clear()
            self._retired = []
            records = [r for vs in self._lineages.values() for r in vs]
            self._lineages.clear()
            self._version_by_fp.clear()
            self._session_versions.clear()
        for session in sessions:
            _SESSIONS_OPEN.labels().dec()
            if not session.closed:
                session.close()
        for dispatcher in dispatchers:
            dispatcher.close()
        for record in records:
            self._unpin(record)
            _RULESET_VERSIONS.labels().dec()

    def __enter__(self) -> "MatchingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
