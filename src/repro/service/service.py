"""The matching-service facade: cached rulesets, shards, sessions.

:class:`MatchingService` is the one object a host application holds.
It owns a :class:`RulesetManager` (compiled-artifact LRU), builds and
caches one sharded :class:`Dispatcher` per distinct ruleset, and hands
out :class:`Session`\\ s for streaming tenants.  One-shot work goes
through :meth:`~MatchingService.scan` / :meth:`~MatchingService.
scan_many`, which report wall-clock throughput alongside the match
results.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.automata.nfa import Automaton
from repro.errors import SimulationError
from repro.service.ruleset import DEFAULT_CACHE_CAPACITY, CacheStats, RulesetManager
from repro.service.session import Session
from repro.service.sharding import DEFAULT_CHUNK_SIZE, Dispatcher
from repro.sim.backends import DEFAULT_MAX_KEPT_REPORTS, ExecutionBackend
from repro.sim.reports import Report
from repro.sim.trace import TraceStats


@dataclass
class ServiceResult:
    """One scan's outcome plus service-level metadata."""

    reports: list[Report]
    stats: TraceStats
    bytes_scanned: int
    elapsed_s: float
    num_shards: int
    #: True when the compiled shard engines were already resident
    cached: bool
    #: resolved kernel name per shard ("sparse" / "bitparallel")
    backends: list[str] = field(default_factory=list)
    #: True when the kept-reports cap truncated recording
    truncated: bool = False

    @property
    def num_reports(self) -> int:
        return self.stats.num_reports

    @property
    def throughput_mbps(self) -> float:
        """Scan throughput in MB/s (0 when too fast to time)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.bytes_scanned / self.elapsed_s / 1e6


class MatchingService:
    """Streaming, sharded, multi-tenant automata-matching service.

    Args:
        cache_capacity: max compiled rulesets resident in the LRU.
        num_shards: shards per ruleset (whole connected components,
            balanced by state count).
        workers: processes for one-shot scans; 1 = serial.
        chunk_size: default streaming granularity in bytes.
        backend: execution backend for every compiled ruleset —
            ``"sparse"``, ``"bitparallel"``, or ``"auto"`` (default:
            resolves per shard from size and estimated activity).
        default_max_reports: kept-reports cap for scans and sessions
            that do not pass their own ``max_reports``.
    """

    def __init__(
        self,
        *,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        num_shards: int = 1,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        backend: str | ExecutionBackend = "auto",
        default_max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
    ) -> None:
        if chunk_size < 1:
            raise SimulationError("chunk size must be >= 1")
        if default_max_reports < 0:
            raise SimulationError("default_max_reports must be >= 0")
        self.manager = RulesetManager(capacity=cache_capacity)
        self.num_shards = num_shards
        self.workers = workers
        self.chunk_size = chunk_size
        self.backend = backend
        self.default_max_reports = default_max_reports
        self.sessions: dict[str, Session] = {}
        # LRU-bounded alongside the manager: a Dispatcher pins its shard
        # engines, so an unbounded dict here would defeat the cache cap.
        self._dispatchers: OrderedDict[str, Dispatcher] = OrderedDict()

    @property
    def cache_stats(self) -> CacheStats:
        return self.manager.stats

    def dispatcher(
        self, automaton: Automaton, *, key: str | None = None
    ) -> Dispatcher:
        """The cached sharded dispatcher for ``automaton``.

        ``key`` lets callers that already fingerprinted the ruleset skip
        re-hashing it (the fingerprint is O(states + transitions)).
        """
        if key is None:
            key = self.manager.fingerprint(automaton)
        dispatcher = self._dispatchers.get(key)
        if dispatcher is None:
            dispatcher = Dispatcher(
                automaton,
                num_shards=self.num_shards,
                workers=self.workers,
                manager=self.manager,
                backend=self.backend,
            )
            dispatcher.engines  # compile (and cache) the shard engines now
            self._dispatchers[key] = dispatcher
            if len(self._dispatchers) > self.manager.capacity:
                _, evicted = self._dispatchers.popitem(last=False)
                evicted.close()
        else:
            self._dispatchers.move_to_end(key)
        return dispatcher

    # -- one-shot scans --------------------------------------------------
    def scan(
        self,
        automaton: Automaton,
        data: bytes,
        *,
        chunk_size: int | None = None,
        max_reports: int | None = None,
    ) -> ServiceResult:
        """Scan one complete stream, reusing cached compiled shards."""
        key = self.manager.fingerprint(automaton)
        cached = key in self._dispatchers
        start = time.perf_counter()
        dispatcher = self.dispatcher(automaton, key=key)
        result = dispatcher.scan(
            data,
            chunk_size=self.chunk_size if chunk_size is None else chunk_size,
            max_reports=(
                self.default_max_reports if max_reports is None else max_reports
            ),
        )
        elapsed = time.perf_counter() - start
        return ServiceResult(
            reports=result.reports,
            stats=result.stats,
            bytes_scanned=len(data),
            elapsed_s=elapsed,
            num_shards=dispatcher.num_shards,
            cached=cached,
            backends=dispatcher.backend_names,
            truncated=result.truncated,
        )

    def scan_many(
        self,
        automaton: Automaton,
        streams: dict[str, bytes],
        *,
        chunk_size: int | None = None,
        max_reports: int | None = None,
    ) -> dict[str, ServiceResult]:
        """Batch entry point: scan every named stream against one ruleset.

        The ruleset compiles (at most) once; each stream gets its own
        independent START_OF_DATA semantics and report offsets.
        """
        self.dispatcher(automaton)  # compile once, before the loop
        return {
            name: self.scan(
                automaton,
                data,
                chunk_size=chunk_size,
                max_reports=max_reports,
            )
            for name, data in streams.items()
        }

    # -- streaming sessions ----------------------------------------------
    def open_session(
        self,
        automaton: Automaton,
        name: str,
        *,
        max_reports: int | None = None,
        on_truncation: str = "warn",
    ) -> Session:
        """Open a named resumable stream against ``automaton``."""
        if name in self.sessions and not self.sessions[name].closed:
            raise SimulationError(f"session {name!r} is already open")
        session = Session(
            name,
            self.dispatcher(automaton),
            max_reports=(
                self.default_max_reports if max_reports is None else max_reports
            ),
            on_truncation=on_truncation,
        )
        self.sessions[name] = session
        return session

    def close_session(self, name: str):
        """Close a session and return its accumulated result."""
        try:
            session = self.sessions.pop(name)
        except KeyError:
            raise SimulationError(f"no such session: {name!r}") from None
        return session.close()

    def close(self) -> None:
        """Release every dispatcher's worker pool (serial ones no-op)."""
        for dispatcher in self._dispatchers.values():
            dispatcher.close()
