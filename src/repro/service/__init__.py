"""repro.service — streaming, sharded, multi-tenant matching service.

The simulator and CAMA machine under :mod:`repro.sim` / :mod:`repro.core`
are one-shot: compile an automaton, run one complete byte string, throw
the compiled object away.  This package turns them into a *service* the
way hardware automata processors are deployed: compiled rulesets are
long-lived cached assets, inputs are unbounded resumable streams, and a
large ruleset is a set of independent shards that scale out.

Architecture (bottom-up)::

    repro.sim.engine.EngineState      resumable snapshot: active states +
      Engine.run_chunk                stream position; START_OF_DATA means
      CamaMachine.run_chunk           start of *stream*, never chunk 2+

    ruleset.RulesetManager            fingerprint (language content, not
                                      names) -> LRU of compiled Engines /
                                      CamaPrograms / CamaMachines, with an
                                      optional persistent second level of
                                      serialized artifacts (repro.compile:
                                      warm restarts and spawn workers load
                                      instead of recompiling)

    sharding.Dispatcher               connected-component shards, balanced
                                      by state count; serial or
                                      multiprocessing fan-out per stream

    merge                             sequential (chunk-after-chunk) and
                                      parallel (shard) result merging,
                                      remapping shard-local state ids

    session.Session                   one named stream's snapshot; feed()
                                      chunks as they arrive

    batching.BatchScheduler           cross-stream coalescing: pending
                                      feeds sharing a dispatcher flush as
                                      one vectorized step_batch over a
                                      struct-of-arrays state matrix
                                      (rows_full / max_delay / drain)

    service.MatchingService           the facade: cache + dispatchers +
                                      sessions + scan / scan_many (two or
                                      more streams advance in lock-step
                                      batched kernel calls)

    protocol / server / client        the network face: newline-delimited
                                      JSON frames over TCP; an asyncio
                                      MatchingServer with per-connection
                                      backpressure, graceful drain, and
                                      precompiled-artifact upload
                                      (register_artifact), plus sync +
                                      asyncio clients

Execution is backend-pluggable (:mod:`repro.sim.backends`): the service
defaults to the ``auto`` policy, which picks the sparse or bit-parallel
kernel per shard from size and estimated activity; pass
``MatchingService(backend="sparse")`` (or ``"bitparallel"``) to pin one.

Configuration is one typed object — :class:`repro.api.ScanConfig` —
consumed by the service, dispatcher, session, server protocol and CLI
alike; legacy loose keywords still work through deprecation shims.

Quick use::

    from repro.api import ScanConfig
    from repro.service import MatchingService

    service = MatchingService(ScanConfig(num_shards=4))
    result = service.scan(automaton, data)          # one-shot, cached
    session = service.open_session(automaton, "tenant-a")
    session.feed(chunk1); session.feed(chunk2)      # resumable stream
    results = service.scan_many(automaton, {"a": data_a, "b": data_b})

(:class:`repro.api.Ruleset` wraps all of this behind one fluent
facade; prefer it in application code.)

Chunked, sharded, and cached execution all reproduce the one-shot
``Engine.run`` report stream byte-for-byte; the equivalence tests in
``tests/test_service.py`` assert this across every registry benchmark.
"""

from repro.service.batching import BatchScheduler, feed_session_batch
from repro.service.client import (
    AsyncMatchingClient,
    MatchingClient,
    RemoteError,
    RemoteScanResult,
    RetryPolicy,
)
from repro.service.merge import (
    accumulate_stats,
    merge_shard_reports,
    merge_shard_results,
    merge_shard_stats,
)
from repro.service.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_MAX_INFLIGHT,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.ruleset import (
    DEFAULT_CACHE_CAPACITY,
    CacheStats,
    RulesetManager,
    ruleset_fingerprint,
)
from repro.service.server import BackgroundServer, MatchingServer, run_server
from repro.service.service import MatchingService, ServiceResult
from repro.service.session import Session
from repro.service.sharding import (
    DEFAULT_CHUNK_SIZE,
    Dispatcher,
    Shard,
    chunked_scan,
    iter_chunks,
    make_shards,
)

__all__ = [
    "AsyncMatchingClient",
    "BackgroundServer",
    "BatchScheduler",
    "CacheStats",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_MAX_INFLIGHT",
    "Dispatcher",
    "MatchingClient",
    "MatchingServer",
    "MatchingService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "RemoteScanResult",
    "RetryPolicy",
    "RulesetManager",
    "ServiceResult",
    "Session",
    "Shard",
    "accumulate_stats",
    "chunked_scan",
    "feed_session_batch",
    "iter_chunks",
    "make_shards",
    "merge_shard_reports",
    "merge_shard_results",
    "merge_shard_stats",
    "ruleset_fingerprint",
    "run_server",
]
