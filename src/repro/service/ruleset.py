"""Compiled-ruleset cache: fingerprints + two cache levels.

Hardware automata processors amortize one expensive compile/place/route
over unbounded input.  The service layer gets the same economics in
software by fingerprinting an :class:`Automaton`'s *language-relevant*
content (see :func:`repro.compile.fingerprint.ruleset_fingerprint`,
canonically defined there and re-exported here) and memoizing the
compiled artifacts behind it, at two levels:

1. an in-process LRU of live Python objects — reference
   :class:`Engine`\\ s, CAMA :class:`CamaProgram`\\ s and
   :class:`CamaMachine`\\ s — bounded by entry count;
2. optionally, a persistent on-disk :class:`~repro.compile.store.
   ArtifactStore` of serialized :class:`~repro.compile.artifact.
   CompiledArtifact`\\ s, bounded by bytes and keyed by fingerprint
   *plus compile options*, so a warm restart (or a spawn worker, or a
   remote client upload) skips compilation entirely.

Two rulesets that define the same language share one cache entry; the
same ruleset compiled under different pipeline options never does.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.api.config import DEFAULT_CACHE_CAPACITY
from repro.automata.nfa import Automaton
from repro.compile.artifact import CompiledArtifact
from repro.compile.fingerprint import ruleset_fingerprint
from repro.compile.ir import CompiledRuleset, PipelineOptions
from repro.compile.pipeline import compile_ruleset
from repro.compile.store import ArtifactStore
from repro.core.compiler import CamaProgram, compile_automaton
from repro.core.machine import CamaMachine
from repro.errors import ConfigError, ReproError
from repro.sim.backends import ExecutionBackend
from repro.sim.engine import Engine
from repro.telemetry.metrics import default_registry

#: the cache-layer metric series; labels: level = memory | disk,
#: outcome = hit | miss | eviction
_CACHE_EVENTS = default_registry().counter(
    "repro_ruleset_cache_events_total",
    "Compiled-ruleset cache lookups and evictions, by level and outcome",
    ("level", "outcome"),
)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`RulesetManager`.

    ``hits``/``misses`` count the in-memory level; ``disk_hits``/
    ``disk_misses`` break down how the misses resolved when a disk
    store is attached (a disk hit is a memory miss served by loading
    an artifact instead of compiling).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RulesetManager:
    """Two-level cache of compiled artifacts, keyed by ruleset fingerprint.

    One manager serves every tenant of a :class:`~repro.service.service.
    MatchingService`; ``capacity`` bounds the resident compiled rulesets
    (each entry holds a 256 x n match table and, for CAMA programs, the
    mapped CAM fabric), evicting least-recently-used first.  With a
    ``store``, evicted-then-re-requested (or never-seen-this-process)
    rulesets load from disk instead of recompiling.

    Args:
        capacity: max resident in-memory entries.
        store: optional persistent second level — an
            :class:`ArtifactStore` or a directory path to open one in.
        options: base :class:`PipelineOptions` for disk-cache keys and
            compilation.  ``optimize``/``stride`` are forced to their
            service-safe values (no optimization, stride 1): the
            service must execute rulesets exactly as registered, since
            optimization renumbers the state ids reports carry.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        *,
        store: ArtifactStore | str | Path | None = None,
        options: PipelineOptions | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError("cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple[str, str], object] = OrderedDict()
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self._options = (options or PipelineOptions()).replace(
            optimize=False, stride=1
        )

    def __len__(self) -> int:
        return len(self._entries)

    def fingerprint(self, automaton: Automaton) -> str:
        return ruleset_fingerprint(automaton)

    def _get(self, key: tuple[str, str], build):
        if key in self._entries:
            self.stats.hits += 1
            _CACHE_EVENTS.labels("memory", "hit").inc()
            self._entries.move_to_end(key)
            return self._entries[key]
        self.stats.misses += 1
        _CACHE_EVENTS.labels("memory", "miss").inc()
        value = build()
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            _CACHE_EVENTS.labels("memory", "eviction").inc()
        return value

    # -- artifact (second-level) plumbing --------------------------------
    def artifact_options(
        self, backend: str | ExecutionBackend | None
    ) -> PipelineOptions | None:
        """Disk-cache options for a backend hint, or None when the
        combination is not disk-cacheable (custom backend instances
        have no stable digest)."""
        if backend is not None and not isinstance(backend, str):
            return None
        return self._options.replace(backend=backend)

    def artifact_key(
        self, automaton: Automaton, backend: str | ExecutionBackend | None
    ) -> str | None:
        options = self.artifact_options(backend)
        if options is None:
            return None
        return ruleset_fingerprint(automaton, options)

    def artifact_path(
        self, automaton: Automaton, backend: str | ExecutionBackend | None
    ) -> Path | None:
        """Where this (ruleset, backend) artifact lives on disk, when a
        store is attached and the artifact exists."""
        if self.store is None:
            return None
        key = self.artifact_key(automaton, backend)
        if key is None or not self.store.contains(key):
            return None
        return self.store.path(key)

    def ensure_artifact(
        self, automaton: Automaton, backend: str | ExecutionBackend
    ) -> Path | None:
        """Guarantee the (ruleset, backend) artifact is on disk.

        Returns its path, serializing the already compiled in-memory
        engine when possible (no recompilation), or None when the
        manager has no store / the backend is not disk-cacheable.
        This is what lets the sharded dispatcher ship artifacts to
        spawn workers instead of pickled engines.
        """
        if self.store is None:
            return None
        options = self.artifact_options(backend)
        if options is None:
            return None
        key = ruleset_fingerprint(automaton, options)
        if self.store.contains(key):
            return self.store.path(key)
        engine = self.engine(automaton, backend)  # may itself write it
        if self.store.contains(key):
            return self.store.path(key)
        compiled = CompiledRuleset(
            automaton=automaton, options=options, key=key, kernel=engine.kernel
        )
        return self.store.put(CompiledArtifact.from_compiled(compiled))

    def seed_engine(
        self,
        automaton: Automaton,
        backend: str | ExecutionBackend,
        engine: Engine,
        *,
        fingerprint: str | None = None,
    ) -> None:
        """Insert a ready engine (e.g. from an uploaded artifact).

        The entry obeys the same LRU discipline as compiled ones; an
        existing entry for the key is refreshed, not duplicated.
        """
        if fingerprint is None:
            fingerprint = ruleset_fingerprint(automaton)
        key = ("engine", backend, fingerprint)
        self._entries[key] = engine
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            _CACHE_EVENTS.labels("memory", "eviction").inc()

    # -- compiled-object accessors ----------------------------------------
    def engine(
        self,
        automaton: Automaton,
        backend: str | ExecutionBackend = "sparse",
    ) -> Engine:
        """The cached :class:`Engine` for ``automaton`` on ``backend``.

        Distinct backends get distinct cache entries (an ``auto`` entry
        is keyed as ``auto`` even though it resolves to a concrete
        kernel, so re-requesting it never re-runs the policy).  Backend
        *instances* are keyed by identity, not by name — two
        differently parameterized backends that happen to share a name
        never alias to one compiled engine — and bypass the disk level.
        """
        # the instance itself (not id()) keys the tuple: the cache entry
        # then pins the backend, so the identity can never be recycled
        key = ("engine", backend, ruleset_fingerprint(automaton))

        def build() -> Engine:
            options = self.artifact_options(backend)
            if self.store is None or options is None:
                return Engine(automaton, backend=backend)
            artifact_key = ruleset_fingerprint(automaton, options)
            artifact = self.store.get(artifact_key)
            if artifact is not None:
                try:
                    engine = artifact.engine()
                except ReproError:
                    # loadable but unusable (e.g. table skew validate()
                    # cannot see): a cache miss, never a stuck ruleset
                    pass
                else:
                    self.stats.disk_hits += 1
                    _CACHE_EVENTS.labels("disk", "hit").inc()
                    return engine
            self.stats.disk_misses += 1
            _CACHE_EVENTS.labels("disk", "miss").inc()
            compiled = compile_ruleset(automaton, options)
            self.store.put(CompiledArtifact.from_compiled(compiled))
            return compiled.engine()

        return self._get(key, build)

    def program(self, automaton: Automaton) -> CamaProgram:
        """The cached compiled :class:`CamaProgram` for ``automaton``."""
        key = ("program", ruleset_fingerprint(automaton))

        def build() -> CamaProgram:
            options = self.artifact_options(None)
            if self.store is None:
                return compile_automaton(automaton)
            artifact_key = ruleset_fingerprint(automaton, options)
            artifact = self.store.get(artifact_key)
            if artifact is not None and artifact.manifest.get("program"):
                try:
                    program = artifact.program()
                except ReproError:
                    pass  # unusable program tables: recompile below
                else:
                    self.stats.disk_hits += 1
                    _CACHE_EVENTS.labels("disk", "hit").inc()
                    return program
            self.stats.disk_misses += 1
            _CACHE_EVENTS.labels("disk", "miss").inc()
            compiled = compile_ruleset(automaton, options)
            self.store.put(CompiledArtifact.from_compiled(compiled))
            return compiled.program

        return self._get(key, build)

    def machine(self, automaton: Automaton, variant: str = "E") -> CamaMachine:
        """A cached :class:`CamaMachine` (compiling the program if needed)."""
        key = (f"machine-{variant}", ruleset_fingerprint(automaton))
        return self._get(key, lambda: CamaMachine(self.program(automaton), variant))

    def clear(self) -> None:
        """Drop the in-memory level (the disk store, if any, persists)."""
        self._entries.clear()
