"""Compiled-ruleset cache: fingerprints + an LRU of compiled artifacts.

Hardware automata processors amortize one expensive compile/place/route
over unbounded input.  The service layer gets the same economics in
software by fingerprinting an :class:`Automaton`'s *language-relevant*
content (symbol classes, start kinds, reporting flags and codes, and
the transition relation — deliberately not its name) and memoizing the
compiled artifacts behind it: reference :class:`Engine`\\ s, CAMA
:class:`CamaProgram`\\ s, and :class:`CamaMachine`\\ s.  Two rulesets
that define the same language share one cache entry.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.automata.nfa import Automaton
from repro.core.compiler import CamaProgram, compile_automaton
from repro.core.machine import CamaMachine
from repro.errors import ReproError
from repro.sim.backends import ExecutionBackend
from repro.sim.engine import Engine

DEFAULT_CACHE_CAPACITY = 32


def ruleset_fingerprint(automaton: Automaton) -> str:
    """A stable hex digest of the automaton's language-relevant content.

    Covers every state's symbol-class mask, start kind, reporting flag
    and report code, plus the full transition relation.  Excludes the
    automaton's ``name`` and STE display names, so re-loading the same
    rules under a different label still hits the cache.
    """
    h = hashlib.sha256()
    h.update(len(automaton).to_bytes(8, "little"))
    for ste in automaton.states:
        h.update(ste.symbol_class.mask.to_bytes(32, "little"))
        # variable-length fields are length-prefixed so shifted record
        # boundaries cannot make different rulesets serialize alike
        start = ste.start.value.encode()
        h.update(len(start).to_bytes(1, "little"))
        h.update(start)
        h.update(b"\x01" if ste.reporting else b"\x00")
        code = (ste.report_code or "").encode()
        h.update(len(code).to_bytes(4, "little"))
        h.update(code)
    for u, v in automaton.transitions():
        h.update(u.to_bytes(8, "little"))
        h.update(v.to_bytes(8, "little"))
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`RulesetManager`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RulesetManager:
    """LRU cache of compiled artifacts, keyed by ruleset fingerprint.

    One manager serves every tenant of a :class:`~repro.service.service.
    MatchingService`; capacity bounds the resident compiled rulesets
    (each entry holds a 256 x n match table and, for CAMA programs, the
    mapped CAM fabric), evicting least-recently-used first.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ReproError("cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple[str, str], object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def fingerprint(self, automaton: Automaton) -> str:
        return ruleset_fingerprint(automaton)

    def _get(self, key: tuple[str, str], build):
        if key in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.stats.misses += 1
        value = build()
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return value

    def engine(
        self,
        automaton: Automaton,
        backend: str | ExecutionBackend = "sparse",
    ) -> Engine:
        """The cached :class:`Engine` for ``automaton`` on ``backend``.

        Distinct backends get distinct cache entries (an ``auto`` entry
        is keyed as ``auto`` even though it resolves to a concrete
        kernel, so re-requesting it never re-runs the policy).  Backend
        *instances* are keyed by identity, not by name — two
        differently parameterized backends that happen to share a name
        never alias to one compiled engine.
        """
        # the instance itself (not id()) keys the tuple: the cache entry
        # then pins the backend, so the identity can never be recycled
        key = ("engine", backend, ruleset_fingerprint(automaton))
        return self._get(key, lambda: Engine(automaton, backend=backend))

    def program(self, automaton: Automaton) -> CamaProgram:
        """The cached compiled :class:`CamaProgram` for ``automaton``."""
        key = ("program", ruleset_fingerprint(automaton))
        return self._get(key, lambda: compile_automaton(automaton))

    def machine(self, automaton: Automaton, variant: str = "E") -> CamaMachine:
        """A cached :class:`CamaMachine` (compiling the program if needed)."""
        key = (f"machine-{variant}", ruleset_fingerprint(automaton))
        return self._get(key, lambda: CamaMachine(self.program(automaton), variant))

    def clear(self) -> None:
        self._entries.clear()
