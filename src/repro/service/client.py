"""Clients for the network matching service (sync and asyncio).

:class:`MatchingClient` is a plain blocking-socket client — the right
tool for scripts, tests and thread-per-connection load generators.
:class:`AsyncMatchingClient` speaks the same protocol over asyncio
streams for callers that already live on an event loop.  Both expose
the service surface one-to-one: ``register`` a ruleset (regex rules, an
MNRL document, or an :class:`~repro.automata.nfa.Automaton`, shipped as
MNRL), one-shot ``scan`` / ``scan_many``, named resumable sessions, and
``stats``.

Engine-level report-cap semantics carry across the wire: a response
whose ``warnings`` list is non-empty re-raises each entry as a
:class:`~repro.sim.engine.ReportTruncationWarning`, and an error frame
with code ``truncated`` (the strict policy) raises
:class:`~repro.errors.SimulationError` — exactly what the in-process
engine would have done.  Other error frames raise :class:`RemoteError`
carrying the server's error code.

Quick use::

    from repro.service.client import MatchingClient

    with MatchingClient(port=port) as client:
        handle = client.register({"r1": "(a|b)e*cd+"})
        result = client.scan(handle, payload)
        session = client.open_session(handle, "tenant-a")
        session.feed(chunk1); session.feed(chunk2)
        session.close()
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import time
import warnings
from dataclasses import dataclass, field

from repro.automata.mnrl import dumps_mnrl
from repro.automata.nfa import Automaton
from repro.errors import ConfigError, ReproError, SimulationError
from repro.service.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    IDEMPOTENT_OPS,
    ProtocolError,
    decode_frame,
    decode_reports,
    encode_data,
    encode_frame,
)
from repro.sim.backends import ReportTruncationWarning
from repro.sim.reports import Report


class RemoteError(ReproError):
    """The server answered a request with an error frame."""

    def __init__(self, message: str, code: str = "internal") -> None:
        self.code = code
        super().__init__(message)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + jitter for transient I/O.

    Applies to connect failures and to broken-connection errors on
    requests whose op is idempotent
    (:data:`~repro.service.protocol.IDEMPOTENT_OPS`).  Non-idempotent
    frames (``feed``, ``update``, ``open``, ``close``) are *never*
    retried once the request may have reached the server — a replayed
    ``feed`` would double-scan a chunk, a replayed ``update`` would
    re-apply a ruleset delta.  Server error frames are answers, not
    failures, and are never retried either.

    Off by default: pass ``retry=RetryPolicy()`` to a client to opt in.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    #: +/- fraction of the computed backoff added as uniform jitter
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigError("RetryPolicy.attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("RetryPolicy backoffs must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ConfigError("RetryPolicy.jitter must be in [0, 1]")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        base = min(self.backoff_s * (2**attempt), self.max_backoff_s)
        if self.jitter <= 0:
            return base
        return base * (1.0 + random.uniform(-self.jitter, self.jitter))


class _ConnectionClosed(Exception):
    """Internal marker: the server hung up before answering (EOF).

    Distinct from :class:`RemoteError` so the retry loop can treat it
    as transient I/O (retryable for idempotent ops) while real error
    frames — answers — pass through untouched.  Surfaces to callers as
    ``RemoteError(code="closed")`` when retries are exhausted or off.
    """

    def __init__(self, message: str, code: str = "closed") -> None:
        self.code = code
        super().__init__(message)


def _may_retry(policy, op, attempt, sent) -> bool:
    """Whether one failed attempt should be repeated."""
    if policy is None or attempt + 1 >= policy.attempts:
        return False
    # a frame that may have reached the server is only safe to replay
    # when its op is idempotent
    return (not sent) or op in IDEMPOTENT_OPS


@dataclass
class RemoteScanResult:
    """One remote scan's outcome (the wire view of ``ServiceResult``)."""

    reports: list[Report]
    num_reports: int
    truncated: bool
    bytes_scanned: int
    elapsed_s: float
    backends: list[str]
    cached: bool
    warnings: list[str] = field(default_factory=list)
    #: digest of the ScanConfig the request carried, echoed by the
    #: server (None when the request used loose fields only)
    config_digest: str | None = None
    #: modeled CAMA hardware cost (``HardwareLedger.to_dict()`` form);
    #: present only when the scan was ledgered (``hardware_ledger``)
    ledger: dict | None = None
    #: server-side trace id for joining with server spans/log lines;
    #: present only when the scan was traced
    trace_id: str | None = None

    @property
    def throughput_mbps(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.bytes_scanned / self.elapsed_s / 1e6


# -- frame builders / response handling shared by both clients ------------


def _register_frame(ruleset, kind: str | None, name: str | None) -> dict:
    if isinstance(ruleset, Automaton):
        return {
            "op": "register",
            "kind": "mnrl",
            "text": dumps_mnrl(ruleset),
            "name": name or ruleset.name,
        }
    if kind == "mnrl" or (kind is None and isinstance(ruleset, str)):
        return {
            "op": "register",
            "kind": "mnrl",
            "text": ruleset,
            "name": name or "remote",
        }
    if kind in (None, "regex"):
        return {
            "op": "register",
            "kind": "regex",
            "rules": ruleset,
            "name": name or "remote",
        }
    raise ProtocolError(f"unknown ruleset kind {kind!r}", code="bad-request")


def _artifact_frame(artifact) -> dict:
    """Build the upload frame for a precompiled ruleset artifact.

    Accepts a :class:`~repro.compile.artifact.CompiledArtifact`, its
    raw ``.npz`` bytes, or a filesystem path to one.
    """
    from pathlib import Path

    from repro.compile.artifact import CompiledArtifact

    if isinstance(artifact, CompiledArtifact):
        data = artifact.to_bytes()
    elif isinstance(artifact, (bytes, bytearray)):
        data = bytes(artifact)
    elif isinstance(artifact, (str, Path)):
        data = Path(artifact).read_bytes()
    else:
        raise ProtocolError(
            f"cannot upload a {type(artifact).__name__} as an artifact",
            code="bad-request",
        )
    return {"op": "register_artifact", "data": encode_data(data)}


def _update_frame(
    handle: str, *, add: dict | list | None, remove: list | None
) -> dict:
    if add is None and remove is None:
        raise ProtocolError(
            "update needs add= and/or remove=", code="bad-request"
        )
    frame = {"op": "update", "handle": handle}
    if add is not None:
        frame["add"] = add
    if remove is not None:
        frame["remove"] = list(remove)
    return frame


def _scan_frame(op: str, handle: str, *, config=None, **options) -> dict:
    frame = {"op": op, "handle": handle}
    if config is not None:
        from repro.api.config import ScanConfig

        if not isinstance(config, ScanConfig):
            raise ConfigError(
                f"config must be a ScanConfig, got {type(config).__name__}"
            )
        # the dict form is the wire form; the server echoes its digest
        # back as config_digest, so round-tripping is verifiable
        frame["config"] = config.to_dict()
    for key, value in options.items():
        if value is not None:
            frame[key] = value
    return frame


def _checked(response: dict, request_id) -> dict:
    """Validate one response frame; surface warnings and errors."""
    if not response.get("ok", False):
        # connection-level rejections (e.g. an oversized request line)
        # carry id null; surface the server's error either way
        message = response.get("error", "unknown server error")
        code = response.get("code", "internal")
        if code == "truncated":
            # the strict report-cap policy: match the engine's exception
            raise SimulationError(message)
        raise RemoteError(message, code)
    if response.get("id") != request_id:
        raise ProtocolError(
            f"out-of-order response: expected id {request_id!r}, "
            f"got {response.get('id')!r}"
        )
    for message in response.get("warnings", ()):
        warnings.warn(message, ReportTruncationWarning, stacklevel=3)
    return response


def _scan_result(payload: dict) -> RemoteScanResult:
    return RemoteScanResult(
        reports=decode_reports(payload["reports"]),
        num_reports=payload["num_reports"],
        truncated=payload["truncated"],
        bytes_scanned=payload["bytes"],
        elapsed_s=payload["elapsed_s"],
        backends=payload["backends"],
        cached=payload["cached"],
        warnings=list(payload.get("warnings", ())),
        config_digest=payload.get("config_digest"),
        ledger=payload.get("ledger"),
        trace_id=payload.get("trace_id"),
    )


def _session_warnings(payload: dict) -> None:
    for message in payload.get("warnings", ()):
        warnings.warn(message, ReportTruncationWarning, stacklevel=3)


class _SessionBase:
    """Shared bookkeeping of the sync and async session handles."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.position = 0
        self.truncated = False
        self.closed = False
        #: running :class:`~repro.telemetry.ledger.HardwareLedger` dict
        #: over everything fed so far; None unless the session was
        #: opened with ``hardware_ledger``
        self.ledger: dict | None = None

    def _absorb(self, payload: dict) -> list[Report]:
        self.position = payload["position"]
        self.truncated = payload["truncated"]
        if "ledger" in payload:
            self.ledger = payload["ledger"]
        return decode_reports(payload["reports"])


class RemoteSession(_SessionBase):
    """A named resumable stream on a sync client connection."""

    def __init__(self, client: "MatchingClient", name: str) -> None:
        super().__init__(name)
        self._client = client

    def feed(self, chunk: bytes) -> list[Report]:
        """Send one chunk; return only the reports it produced."""
        payload = self._client._request(
            {"op": "feed", "session": self.name, "data": encode_data(chunk)}
        )
        return self._absorb(payload)

    def close(self) -> dict:
        """Finish the stream; returns the accumulated summary."""
        payload = self._client._request({"op": "close", "session": self.name})
        self.closed = True
        if "ledger" in payload:
            self.ledger = payload["ledger"]
        return payload


class MatchingClient:
    """Blocking-socket client for :class:`~repro.service.server.MatchingServer`.

    One client holds one connection; requests on it execute in order
    (which is what gives sessions their chunk ordering).  Use one client
    per thread for concurrent load.

    ``retry`` opts into bounded reconnect-and-retry on transient I/O
    (see :class:`RetryPolicy`); ``tenant`` stamps every frame with a
    tenant id (how a cluster router attributes quota).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float | None = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        retry: RetryPolicy | None = None,
        tenant: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self.retry = retry
        self.tenant = tenant
        self._ids = itertools.count(1)
        self._sock: socket.socket | None = None
        self._file = None

    # -- connection management -------------------------------------------
    def connect(self) -> "MatchingClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            # frames are small request/response pairs; without NODELAY,
            # Nagle + delayed ACK adds ~40 ms to every round trip
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._file.close()
                self._sock.close()
            finally:
                self._sock = None
                self._file = None

    def __enter__(self) -> "MatchingClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request plumbing -------------------------------------------------
    def _request(self, frame: dict) -> dict:
        op = frame.get("op")
        attempt = 0
        while True:
            sent = False
            try:
                self.connect()
                request_id = next(self._ids)
                wire = {"id": request_id, **frame}
                if self.tenant is not None:
                    wire.setdefault("tenant", self.tenant)
                sent = True  # from here the server may have seen it
                self._sock.sendall(encode_frame(wire))
                line = self._file.readline(self.max_frame_bytes + 1)
                if not line:
                    raise _ConnectionClosed(
                        "connection closed by server", code="closed"
                    )
                if len(line) > self.max_frame_bytes:
                    # a partial line was consumed; the stream can no
                    # longer be framed, so drop the connection rather
                    # than desync it
                    self.close()
                    raise ProtocolError(
                        f"response exceeds max_frame_bytes "
                        f"({self.max_frame_bytes})",
                        code="frame-too-large",
                    )
                return _checked(decode_frame(line), request_id)
            except (_ConnectionClosed, ConnectionError, OSError) as exc:
                self.close()
                if not _may_retry(self.retry, op, attempt, sent):
                    if isinstance(exc, _ConnectionClosed):
                        raise RemoteError(str(exc), code="closed") from None
                    raise
                time.sleep(self.retry.delay(attempt))
                attempt += 1

    # -- the service surface ----------------------------------------------
    def ping(self) -> dict:
        return self._request({"op": "ping"})

    def health(self) -> dict:
        """The server's liveness/inventory frame: ``status``,
        ``uptime_s``, ``ruleset_versions``, ``open_sessions``,
        ``inflight``, ``connections``."""
        return self._request({"op": "health"})

    def register(
        self, ruleset, *, kind: str | None = None, name: str | None = None
    ) -> str:
        """Register a ruleset; returns its handle (the fingerprint)."""
        return self._request(_register_frame(ruleset, kind, name))["handle"]

    def register_artifact(self, artifact) -> str:
        """Upload a precompiled artifact; returns its handle.

        The server adopts the artifact's prebuilt engine instead of
        compiling, so registering a large ruleset costs an upload, not
        a compile.  ``artifact`` may be a ``CompiledArtifact``, raw
        ``.npz`` bytes, or a path.
        """
        return self._request(_artifact_frame(artifact))["handle"]

    def update(
        self,
        handle: str,
        *,
        add: dict | list | None = None,
        remove: list | None = None,
    ) -> dict:
        """Hot-swap a registered ruleset: add patterns and/or remove
        report codes, producing a new version under the same handle.

        Sessions already open finish on the version they opened with;
        scans and sessions after this call see the new one.  Returns
        the update payload — ``version``, ``fingerprint``, ``states``,
        ``reused_components``, ``compiled_components``.
        """
        return self._request(
            _update_frame(handle, add=add, remove=remove)
        )

    def scan(
        self,
        handle: str,
        data: bytes,
        *,
        config=None,
        chunk_size: int | None = None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        hardware_ledger: bool | None = None,
        ledger_design: str | None = None,
        trace: bool | None = None,
    ) -> RemoteScanResult:
        payload = self._request(
            _scan_frame(
                "scan",
                handle,
                config=config,
                data=encode_data(data),
                chunk_size=chunk_size,
                max_reports=max_reports,
                on_truncation=on_truncation,
                hardware_ledger=hardware_ledger,
                ledger_design=ledger_design,
                trace=trace,
            )
        )
        return _scan_result(payload)

    def scan_many(
        self,
        handle: str,
        streams: dict[str, bytes],
        *,
        config=None,
        chunk_size: int | None = None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        hardware_ledger: bool | None = None,
        ledger_design: str | None = None,
        trace: bool | None = None,
    ) -> dict[str, RemoteScanResult]:
        payload = self._request(
            _scan_frame(
                "scan_many",
                handle,
                config=config,
                streams={
                    name: encode_data(data) for name, data in streams.items()
                },
                chunk_size=chunk_size,
                max_reports=max_reports,
                on_truncation=on_truncation,
                hardware_ledger=hardware_ledger,
                ledger_design=ledger_design,
                trace=trace,
            )
        )
        results = {}
        for name, result in payload["results"].items():
            _session_warnings(result)  # per-stream truncation warnings
            results[name] = _scan_result(result)
        return results

    def open_session(
        self,
        handle: str,
        name: str,
        *,
        config=None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        hardware_ledger: bool | None = None,
        ledger_design: str | None = None,
    ) -> RemoteSession:
        self._request(
            _scan_frame(
                "open",
                handle,
                config=config,
                session=name,
                max_reports=max_reports,
                on_truncation=on_truncation,
                hardware_ledger=hardware_ledger,
                ledger_design=ledger_design,
            )
        )
        return RemoteSession(self, name)

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def metrics(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        return self._request({"op": "metrics"})["metrics"]

    def shutdown(self) -> dict:
        """Ask the server to drain and stop (when it allows it)."""
        return self._request({"op": "shutdown"})


class AsyncRemoteSession(_SessionBase):
    """A named resumable stream on an async client connection."""

    def __init__(self, client: "AsyncMatchingClient", name: str) -> None:
        super().__init__(name)
        self._client = client

    async def feed(self, chunk: bytes) -> list[Report]:
        payload = await self._client._request(
            {"op": "feed", "session": self.name, "data": encode_data(chunk)}
        )
        return self._absorb(payload)

    async def close(self) -> dict:
        payload = await self._client._request(
            {"op": "close", "session": self.name}
        )
        self.closed = True
        if "ledger" in payload:
            self.ledger = payload["ledger"]
        return payload


class AsyncMatchingClient:
    """Asyncio client: the same surface, awaitable.

    Requests on one client are serialized by an internal lock — the
    server answers a connection's frames in order, so interleaving
    writers would misattribute responses.  Open several clients for
    true concurrency.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        retry: RetryPolicy | None = None,
        tenant: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.retry = retry
        self.tenant = tenant
        self._ids = itertools.count(1)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def connect(self) -> "AsyncMatchingClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=self.max_frame_bytes
            )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            writer, self._reader, self._writer = self._writer, None, None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncMatchingClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def _request(self, frame: dict) -> dict:
        op = frame.get("op")
        attempt = 0
        while True:
            sent = False
            try:
                async with self._lock:
                    await self.connect()
                    request_id = next(self._ids)
                    wire = {"id": request_id, **frame}
                    if self.tenant is not None:
                        wire.setdefault("tenant", self.tenant)
                    sent = True  # from here the server may have seen it
                    self._writer.write(encode_frame(wire))
                    await self._writer.drain()
                    try:
                        line = await self._reader.readline()
                    except (asyncio.LimitOverrunError, ValueError):
                        # over-long response: the buffer is mid-frame,
                        # unframeable
                        await self.close()
                        raise ProtocolError(
                            f"response exceeds max_frame_bytes "
                            f"({self.max_frame_bytes})",
                            code="frame-too-large",
                        ) from None
                if not line:
                    raise _ConnectionClosed(
                        "connection closed by server", code="closed"
                    )
                return _checked(decode_frame(line), request_id)
            except (_ConnectionClosed, ConnectionError, OSError) as exc:
                await self.close()
                if not _may_retry(self.retry, op, attempt, sent):
                    if isinstance(exc, _ConnectionClosed):
                        raise RemoteError(str(exc), code="closed") from None
                    raise
                await asyncio.sleep(self.retry.delay(attempt))
                attempt += 1

    async def ping(self) -> dict:
        return await self._request({"op": "ping"})

    async def health(self) -> dict:
        """Async mirror of :meth:`MatchingClient.health`."""
        return await self._request({"op": "health"})

    async def register(
        self, ruleset, *, kind: str | None = None, name: str | None = None
    ) -> str:
        payload = await self._request(_register_frame(ruleset, kind, name))
        return payload["handle"]

    async def register_artifact(self, artifact) -> str:
        """Upload a precompiled artifact; returns its handle (see
        :meth:`MatchingClient.register_artifact`)."""
        payload = await self._request(_artifact_frame(artifact))
        return payload["handle"]

    async def update(
        self,
        handle: str,
        *,
        add: dict | list | None = None,
        remove: list | None = None,
    ) -> dict:
        """Async mirror of :meth:`MatchingClient.update`."""
        return await self._request(
            _update_frame(handle, add=add, remove=remove)
        )

    async def scan(
        self,
        handle: str,
        data: bytes,
        *,
        config=None,
        chunk_size: int | None = None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        hardware_ledger: bool | None = None,
        ledger_design: str | None = None,
        trace: bool | None = None,
    ) -> RemoteScanResult:
        payload = await self._request(
            _scan_frame(
                "scan",
                handle,
                config=config,
                data=encode_data(data),
                chunk_size=chunk_size,
                max_reports=max_reports,
                on_truncation=on_truncation,
                hardware_ledger=hardware_ledger,
                ledger_design=ledger_design,
                trace=trace,
            )
        )
        return _scan_result(payload)

    async def scan_many(
        self,
        handle: str,
        streams: dict[str, bytes],
        *,
        config=None,
        chunk_size: int | None = None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        hardware_ledger: bool | None = None,
        ledger_design: str | None = None,
        trace: bool | None = None,
    ) -> dict[str, RemoteScanResult]:
        payload = await self._request(
            _scan_frame(
                "scan_many",
                handle,
                config=config,
                streams={
                    name: encode_data(data) for name, data in streams.items()
                },
                chunk_size=chunk_size,
                max_reports=max_reports,
                on_truncation=on_truncation,
                hardware_ledger=hardware_ledger,
                ledger_design=ledger_design,
                trace=trace,
            )
        )
        results = {}
        for name, result in payload["results"].items():
            _session_warnings(result)  # per-stream truncation warnings
            results[name] = _scan_result(result)
        return results

    async def open_session(
        self,
        handle: str,
        name: str,
        *,
        config=None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        hardware_ledger: bool | None = None,
        ledger_design: str | None = None,
    ) -> AsyncRemoteSession:
        await self._request(
            _scan_frame(
                "open",
                handle,
                config=config,
                session=name,
                max_reports=max_reports,
                on_truncation=on_truncation,
                hardware_ledger=hardware_ledger,
                ledger_design=ledger_design,
            )
        )
        return AsyncRemoteSession(self, name)

    async def stats(self) -> dict:
        return await self._request({"op": "stats"})

    async def metrics(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        payload = await self._request({"op": "metrics"})
        return payload["metrics"]

    async def shutdown(self) -> dict:
        return await self._request({"op": "shutdown"})
