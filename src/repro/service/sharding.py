"""Sharded dispatch: split a ruleset, fan a stream across the pieces.

Transitions of a homogeneous NFA never cross weakly-connected
components (:func:`repro.automata.analysis.connected_components`), so a
large ruleset splits into independent *shards* — groups of whole
components balanced by state count — that can scan the same input
stream in isolation and disagree about nothing.  The
:class:`Dispatcher` owns that split: it builds one sub-automaton (and
one :class:`Engine`) per shard, feeds each chunk of the stream to every
shard serially or across a ``multiprocessing`` pool, and merges the
per-shard reports and statistics back into the global automaton's view,
reproducing a monolithic :meth:`Engine.run`'s report stream
byte-for-byte.

Components with no reporting state can never contribute a report and
are dropped at shard-construction time; :attr:`Dispatcher.num_dropped_
states` records how many states that removed.  When such components
exist, merged *statistics* (``num_states``, enabled/active sums) cover
only the retained shards and so undercount a monolithic run's —
reports are unaffected.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections.abc import Iterator
from dataclasses import dataclass

from repro.api.config import (
    DEFAULT_CHUNK_SIZE,
    ScanConfig,
    resolve_legacy_config,
)
from repro.automata.analysis import balanced_shards, connected_components
from repro.automata.nfa import Automaton
from repro.errors import ConfigError, SimulationError
from repro.service.merge import accumulate_stats, merge_shard_results
from repro.service.ruleset import RulesetManager
from repro.sim.backends import DEFAULT_MAX_KEPT_REPORTS, ExecutionBackend
from repro.sim.engine import Engine, EngineState, SimulationResult
from repro.sim.trace import TraceStats
from repro.telemetry.metrics import default_registry
from repro.telemetry.tracing import current_trace

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "Dispatcher",
    "Shard",
    "chunked_scan",
    "iter_chunks",
    "make_shards",
]

_REGISTRY = default_registry()
_DISPATCH_SCANS = _REGISTRY.counter(
    "repro_dispatcher_scans_total",
    "One-shot Dispatcher.scan fan-outs, by execution mode (serial | pool)",
    ("mode",),
)
_SHARD_RUNS = _REGISTRY.counter(
    "repro_dispatcher_shard_runs_total",
    "Per-shard stream executions dispatched, by execution mode",
    ("mode",),
)
_CHUNK_RUNS = _REGISTRY.counter(
    "repro_dispatcher_chunk_runs_total",
    "Session chunks fanned across every shard via Dispatcher.run_chunk",
)
_BATCH_CHUNK_RUNS = _REGISTRY.counter(
    "repro_dispatcher_batch_runs_total",
    "Batched multi-stream steps fanned across every shard",
)


@dataclass(frozen=True)
class Shard:
    """One independent slice of a ruleset.

    ``automaton`` is the induced sub-automaton with dense local ids;
    ``global_ids[local]`` maps back to the parent automaton's state id.
    """

    index: int
    automaton: Automaton
    global_ids: list[int]


def iter_chunks(data: bytes, chunk_size: int) -> Iterator[bytes]:
    """Split ``data`` into consecutive chunks of ``chunk_size`` bytes."""
    if chunk_size < 1:
        raise ConfigError("chunk size must be >= 1")
    for start in range(0, len(data), chunk_size):
        yield data[start : start + chunk_size]


def make_shards(automaton: Automaton, num_shards: int) -> list[Shard]:
    """Split ``automaton`` into at most ``num_shards`` independent shards.

    Whole connected components are packed largest-first into balanced
    groups; reporterless components are dropped (they cannot affect the
    report stream).
    """
    automaton.validate()
    reporting = {s.ste_id for s in automaton.reporting_states()}
    components = [
        c for c in connected_components(automaton) if reporting.intersection(c)
    ]
    shards = []
    for index, group in enumerate(balanced_shards(components, num_shards)):
        sub = automaton.subautomaton(
            group, name=f"{automaton.name}.shard{index}"
        )
        shards.append(Shard(index=index, automaton=sub, global_ids=group))
    return shards


def chunked_scan(
    engine: Engine,
    data: bytes,
    chunk_size: int,
    max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
) -> SimulationResult:
    """Stream ``data`` through ``engine`` chunk by chunk.

    Equivalent to ``engine.run(data)`` (the chunked-equivalence tests
    assert this exactly), but exercises the resumable path and bounds
    the per-call working set.
    """
    state = engine.initial_state()
    stats = TraceStats(num_states=len(engine.automaton))
    reports = []
    truncated = False
    for chunk in iter_chunks(data, chunk_size):
        budget = max(0, max_reports - len(reports))
        result = engine.run_chunk(chunk, state, max_reports=budget)
        reports.extend(result.reports)
        truncated |= result.truncated
        accumulate_stats(stats, result.stats)
    return SimulationResult(reports=reports, stats=stats, truncated=truncated)


# -- worker-process plumbing (top-level for picklability) -----------------
_WORKER_ENGINES: list[Engine] = []


def _init_worker(engines: list[Engine]) -> None:
    # Engines arrive pre-compiled from the parent: shared copy-on-write
    # pages under fork, pickled once per worker under spawn.
    global _WORKER_ENGINES
    _WORKER_ENGINES = engines


def _init_worker_artifacts(blobs: list[bytes]) -> None:
    # Spawn path with an artifact store: the parent ships the
    # per-shard serialized artifacts; each worker reconstructs its
    # engines from the tables — no engine pickling, and the same bytes
    # any other process (or machine sharing the store) would load.
    # Bytes, not paths: the store's LRU may evict a file between pool
    # creation and worker start, and a vanished path would wedge the
    # pool.  The artifact records the resolved kernel, so the worker
    # runs exactly the backend the parent compiled.
    from repro.compile.artifact import CompiledArtifact

    global _WORKER_ENGINES
    _WORKER_ENGINES = [
        CompiledArtifact.from_bytes(blob).engine() for blob in blobs
    ]


def _scan_shard(task: tuple[int, bytes, int, int]) -> SimulationResult:
    index, data, chunk_size, max_reports = task
    return chunked_scan(_WORKER_ENGINES[index], data, chunk_size, max_reports)


class Dispatcher:
    """Runs one ruleset, split into shards, over input streams.

    Args:
        automaton: the full ruleset.
        config: the :class:`~repro.api.config.ScanConfig` driving this
            dispatcher.  The consumed fields:

            ``num_shards``
                upper bound on independent shards (the component
                structure may yield fewer).
            ``workers``
                processes for :meth:`scan`; 1 means in-process serial
                execution.  Parallelism is across *shards*, so workers
                beyond ``len(shards)`` are never used.  Streaming
                sessions always run serially — chunk N+1 of a stream
                cannot start before chunk N finishes.
            ``backend``
                execution backend for the shard engines.  ``"auto"``
                resolves *per shard*: each shard's sub-automaton is
                sized and density-estimated independently, so one
                ruleset can mix sparse and bit-parallel kernels.
            ``mp_start_method``
                multiprocessing start method for the worker pool (None
                = platform default).  Under ``spawn`` (or
                ``forkserver``) with a manager that has an artifact
                store, workers receive the per-shard *serialized
                artifacts* and rebuild their engines from the tables
                instead of having whole engines pickled to them; under
                ``fork`` the engines arrive as copy-on-write pages,
                which is already free.
        manager: optional shared :class:`RulesetManager`; shard engines
            are then cached by fingerprint and survive this dispatcher.
        num_shards, workers, backend, mp_start_method: deprecated loose
            keywords; a :class:`ScanConfig` is built from them (with a
            :class:`DeprecationWarning`) when ``config`` is omitted.
    """

    def __init__(
        self,
        automaton: Automaton,
        config: ScanConfig | None = None,
        *,
        manager: RulesetManager | None = None,
        prebuilt: "tuple[list[Shard], list[Engine]] | None" = None,
        num_shards: int | None = None,
        workers: int | None = None,
        backend: str | ExecutionBackend | None = None,
        mp_start_method: str | None = None,
    ) -> None:
        config = resolve_legacy_config(
            "Dispatcher",
            config,
            {
                "num_shards": num_shards,
                "workers": workers,
                "backend": backend,
                "mp_start_method": mp_start_method,
            },
        )
        self.config = config if config is not None else ScanConfig()
        self.automaton = automaton
        if prebuilt is not None:
            # composed shards + engines from the incremental compiler:
            # the expensive work (tables, kernels) already happened
            # against cached component artifacts, so nothing is derived
            # here and the lazy .engines path never compiles.
            shards, engines = prebuilt
            if len(shards) != len(engines):
                raise SimulationError(
                    "prebuilt shards and engines must pair up"
                )
            self.shards = list(shards)
            self._prebuilt_engines: list[Engine] | None = list(engines)
        else:
            self.shards = make_shards(automaton, self.config.num_shards)
            self._prebuilt_engines = None
        self.workers = min(self.config.workers, len(self.shards))
        self._manager = manager
        self._engines: list[Engine] | None = None
        self._pool: multiprocessing.pool.Pool | None = None
        # engine compilation and pool creation are check-then-create;
        # concurrent scans (e.g. server executor threads) must not race
        # them or a duplicate pool's processes would leak unterminated.
        # Reentrant: pool creation reads .engines under the same lock.
        self._compile_lock = threading.RLock()
        self.num_dropped_states = len(automaton) - sum(
            len(s.global_ids) for s in self.shards
        )

    @property
    def backend(self) -> str | ExecutionBackend:
        """The configured execution-backend policy."""
        return self.config.backend

    @property
    def mp_start_method(self) -> str | None:
        return self.config.mp_start_method

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def engines(self) -> list[Engine]:
        """Per-shard engines, compiled lazily (and cached via the manager)."""
        if self._engines is None:
            with self._compile_lock:
                if self._engines is None:
                    if self._prebuilt_engines is not None:
                        self._engines = self._prebuilt_engines
                    elif self._manager is not None:
                        self._engines = [
                            self._manager.engine(s.automaton, self.backend)
                            for s in self.shards
                        ]
                    else:
                        self._engines = [
                            Engine(s.automaton, backend=self.backend)
                            for s in self.shards
                        ]
        return self._engines

    @property
    def backend_names(self) -> list[str]:
        """Resolved kernel name per shard (``auto`` decides per shard)."""
        return [engine.backend_name for engine in self.engines]

    def global_ids(self) -> list[list[int]]:
        return [s.global_ids for s in self.shards]

    # -- streaming ------------------------------------------------------
    def initial_states(self) -> list[EngineState]:
        """Fresh per-shard stream states (one session's snapshot)."""
        return [engine.initial_state() for engine in self.engines]

    def run_chunk(
        self,
        data: bytes,
        states: list[EngineState],
        *,
        max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
    ) -> SimulationResult:
        """Feed one chunk to every shard, advancing ``states`` in place.

        Returns the merged global-view result for this chunk only.
        """
        if len(states) != len(self.shards):
            raise SimulationError(
                "state snapshot does not match shard count"
            )
        _CHUNK_RUNS.labels().inc()
        _SHARD_RUNS.labels("serial").inc(len(self.shards))
        per_shard = [
            engine.run_chunk(data, state, max_reports=max_reports)
            for engine, state in zip(self.engines, states)
        ]
        return self._merge_capped(per_shard, max_reports)

    def run_chunk_batch(
        self,
        chunks: list[bytes],
        states_per_stream: "list[list[EngineState]]",
        *,
        max_reports=DEFAULT_MAX_KEPT_REPORTS,
    ) -> list[SimulationResult]:
        """Feed one chunk per stream to every shard in batched steps.

        The multi-stream analogue of :meth:`run_chunk`:
        ``states_per_stream[r]`` is stream ``r``'s per-shard snapshot
        list (advanced in place) and ``chunks[r]`` its next chunk.
        Each shard engine advances *all* streams in one
        :meth:`Engine.step_batch` call, so per-stream Python overhead
        is paid once per shard instead of once per (stream, shard).
        ``max_reports`` is one shared cap or a per-stream budget
        sequence; returns one merged global-view result per stream,
        byte-identical to per-stream :meth:`run_chunk` calls.
        """
        num_streams = len(chunks)
        if len(states_per_stream) != num_streams:
            raise SimulationError(
                f"got {len(states_per_stream)} state snapshots for "
                f"{num_streams} chunks"
            )
        for snapshot in states_per_stream:
            if len(snapshot) != len(self.shards):
                raise SimulationError(
                    "state snapshot does not match shard count"
                )
        if isinstance(max_reports, int):
            caps = [max_reports] * num_streams
        else:
            caps = list(max_reports)
        _BATCH_CHUNK_RUNS.labels().inc()
        _SHARD_RUNS.labels("serial").inc(len(self.shards))
        per_stream: list[list[SimulationResult]] = [
            [] for _ in range(num_streams)
        ]
        for shard_index, engine in enumerate(self.engines):
            shard_results = engine.step_batch(
                chunks,
                [snapshot[shard_index] for snapshot in states_per_stream],
                max_reports=caps,
            )
            for stream, result in enumerate(shard_results):
                per_stream[stream].append(result)
        return [
            self._merge_capped(results, caps[stream])
            for stream, results in enumerate(per_stream)
        ]

    # -- one-shot scans -------------------------------------------------
    def scan(
        self,
        data: bytes,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
    ) -> SimulationResult:
        """Scan a complete stream across all shards and merge the results."""
        trace = current_trace()
        if self.workers > 1:
            _DISPATCH_SCANS.labels("pool").inc()
            _SHARD_RUNS.labels("pool").inc(len(self.shards))
            tasks = [
                (shard.index, data, chunk_size, max_reports)
                for shard in self.shards
            ]
            if trace is not None:
                # worker-process kernel spans cannot cross the pickle
                # boundary; one span records the whole fan-out instead
                with trace.span(
                    "dispatcher.pool", shards=len(self.shards), workers=self.workers
                ):
                    per_shard = self._worker_pool().map(_scan_shard, tasks)
            else:
                per_shard = self._worker_pool().map(_scan_shard, tasks)
        else:
            _DISPATCH_SCANS.labels("serial").inc()
            _SHARD_RUNS.labels("serial").inc(len(self.shards))
            per_shard = []
            for shard, engine in zip(self.shards, self.engines):
                if trace is not None:
                    with trace.span(
                        "dispatcher.shard",
                        shard=shard.index,
                        backend=engine.backend_name,
                        states=len(shard.global_ids),
                    ):
                        per_shard.append(
                            chunked_scan(engine, data, chunk_size, max_reports)
                        )
                else:
                    per_shard.append(
                        chunked_scan(engine, data, chunk_size, max_reports)
                    )
        return self._merge_capped(per_shard, max_reports)

    def _worker_pool(self) -> "multiprocessing.pool.Pool":
        """The persistent worker pool, created on first parallel scan.

        Compiled engines ship to the workers exactly once — as
        copy-on-write pages under fork, or (with an artifact store and
        a non-fork start method) as per-shard serialized artifacts the
        workers rebuild engines from; only storeless spawn pools fall
        back to pickling whole engines.  Repeat scans pay neither pool
        startup nor recompilation.  Release with :meth:`close`.
        """
        with self._compile_lock:
            if self._pool is None:
                ctx = multiprocessing.get_context(self.mp_start_method)
                initializer = initargs = None
                if ctx.get_start_method() != "fork":
                    blobs = self._shard_artifact_blobs()
                    if blobs is not None:
                        initializer, initargs = _init_worker_artifacts, (blobs,)
                if initializer is None:
                    # fork (engines ship as copy-on-write pages) or no
                    # shippable artifacts; only now force the parent
                    # compile — with a warm store the blobs above come
                    # straight off disk and the parent builds nothing
                    initializer, initargs = _init_worker, (self.engines,)
                self._pool = ctx.Pool(
                    processes=self.workers,
                    initializer=initializer,
                    initargs=initargs,
                )
            return self._pool

    def _shard_artifact_blobs(self) -> list[bytes] | None:
        """Per-shard serialized artifacts for worker shipping, or None
        when unavailable (no manager/store, a non-serializable backend,
        or a store whose LRU evicted a shard mid-collection — e.g. a
        byte budget smaller than the combined shard artifacts)."""
        if self._manager is None:
            return None
        blobs = []
        for shard in self.shards:
            path = self._manager.ensure_artifact(shard.automaton, self.backend)
            if path is None:
                return None
            try:
                blobs.append(path.read_bytes())
            except OSError:  # evicted between ensure and read
                return None
        return blobs

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial dispatchers).

        Idempotent, and safe to call after a scan raised mid-stream:
        ``terminate`` stops the workers even with tasks still queued,
        and ``join`` reaps the processes so no pool (or
        ``ResourceWarning``) outlives the dispatcher.
        """
        with self._compile_lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _merge_capped(
        self, per_shard: list[SimulationResult], max_reports: int
    ) -> SimulationResult:
        """Merge shard results, re-applying the recording cap globally.

        Each shard records up to ``max_reports`` on its own, so the
        merged stream could hold ``num_shards x max_reports`` entries;
        trim to the first ``max_reports`` in emission order (counting
        via ``stats.num_reports`` is unaffected), matching what a
        monolithic engine would have recorded.
        """
        merged = merge_shard_results(per_shard, self.global_ids())
        if len(merged.reports) > max_reports:
            del merged.reports[max_reports:]
            merged.truncated = True
        return merged
