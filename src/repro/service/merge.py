"""Combining per-chunk and per-shard results into one stream result.

Two orthogonal merge directions exist:

* *sequential* (:func:`accumulate_stats`) — chunk after chunk of the
  same stream through the same automaton: cycle counts add, per-cycle
  histories concatenate;
* *parallel* (:func:`merge_shard_stats`, :func:`merge_shard_reports`) —
  independent connected-component shards that each saw the *same*
  cycles: state/activity sums add, the cycle count does not, and shard-
  local state ids are remapped back to the global automaton's ids.
"""

from __future__ import annotations

from repro.sim.engine import SimulationResult
from repro.sim.reports import Report
from repro.sim.trace import TraceStats


def accumulate_stats(total: TraceStats, chunk: TraceStats) -> TraceStats:
    """Fold one chunk's statistics into the running stream total.

    Both must describe the same automaton (``num_states``).  Partition-
    resolved fields (present when the chunk ran with a placement, e.g.
    the hardware-ledger reference run) fold additively — see
    :meth:`TraceStats.accumulate`.  Returns ``total`` for chaining.
    """
    return total.accumulate(chunk)


def merge_shard_stats(per_shard: list[TraceStats]) -> TraceStats:
    """Combine statistics of shards that scanned the same stream.

    Shards partition the state space, not the input: every shard ran
    the same cycles, so ``num_cycles`` is taken from the longest shard
    while state counts and report totals add across shards.
    """
    merged = TraceStats(num_states=sum(s.num_states for s in per_shard))
    for stats in per_shard:
        merged.num_cycles = max(merged.num_cycles, stats.num_cycles)
        merged.num_reports += stats.num_reports
        merged.enabled_states_sum += stats.enabled_states_sum
        merged.active_states_sum += stats.active_states_sum
    return merged


def merge_shard_reports(
    per_shard: list[list[Report]], global_ids: list[list[int]]
) -> list[Report]:
    """Remap shard-local reports to global state ids and interleave them.

    ``global_ids[i]`` maps shard ``i``'s dense local ids back to the
    original automaton's ids.  The result is ordered exactly as a
    monolithic :meth:`Engine.run` would emit: by cycle, then by global
    state id within a cycle.
    """
    merged = [
        Report(cycle=r.cycle, state_id=ids[r.state_id], code=r.code)
        for reports, ids in zip(per_shard, global_ids)
        for r in reports
    ]
    merged.sort(key=lambda r: (r.cycle, r.state_id))
    return merged


def merge_shard_results(
    per_shard: list[SimulationResult], global_ids: list[list[int]]
) -> SimulationResult:
    """Merge full per-shard results into one global-view result."""
    return SimulationResult(
        reports=merge_shard_reports([r.reports for r in per_shard], global_ids),
        stats=merge_shard_stats([r.stats for r in per_shard]),
        truncated=any(r.truncated for r in per_shard),
    )
