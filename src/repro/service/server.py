"""Asyncio network front end for :class:`~repro.service.service.MatchingService`.

:class:`MatchingServer` exposes the full service surface — ruleset
registration, one-shot ``scan`` / ``scan_many``, named resumable
sessions, and service statistics — over TCP as newline-delimited JSON
frames (:mod:`repro.service.protocol`).  It is the deployment shape the
paper motivates: one shared accelerator (here, the compiled-ruleset
cache plus sharded backends) serving many remote tenants.

Concurrency model:

* the event loop only frames, parses and routes; all matching work runs
  on a thread pool (``run_in_executor``), so shard fan-out and the
  sparse/bit-parallel kernels never block the loop;
* frames of one connection execute strictly in order (chunk N+1 of a
  session cannot start before chunk N finishes), while different
  connections proceed in parallel;
* each connection owns a bounded in-flight queue; when a client pipelines
  more frames than ``max_inflight``, the server stops reading its socket
  until work drains — ordinary TCP backpressure, no unbounded buffering;
* :meth:`drain` (or a client ``shutdown`` frame) stops accepting new
  connections, lets every queued frame finish and flushes its response,
  then closes the connections.

Sessions opened over the network are scoped to their connection: two
clients may both open a session called ``"s"``, and a dropped
connection closes its own sessions only.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.api.config import ScanConfig, resolve_legacy_config
from repro.automata.glushkov import compile_regex_set
from repro.automata.mnrl import loads_mnrl
from repro.errors import ConfigError, ReproError, SimulationError
from repro.service.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_MAX_INFLIGHT,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_data,
    decode_frame,
    encode_frame,
    encode_reports,
    error_frame,
    ok_frame,
    ruleset_update_from_frame,
    scan_config_from_frame,
)
from repro.service.service import MatchingService
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import default_registry, render_prometheus

#: ops that touch the service (payloads, compiles, or its lock) and so
#: always run on the thread pool, never on the event loop
_HEAVY_OPS = frozenset(
    {
        "register",
        "register_artifact",
        "update",
        "scan",
        "scan_many",
        "open",
        "feed",
        "close",
    }
)

_log = get_logger("repro.service.server")

_REGISTRY = default_registry()
_REQUESTS = _REGISTRY.counter(
    "repro_server_requests_total",
    "Protocol frames handled, by op and outcome (ok | error code)",
    ("op", "outcome"),
)
_REQUEST_SECONDS = _REGISTRY.histogram(
    "repro_server_request_seconds",
    "Frame turnaround (decode to response built), by op",
    ("op",),
)
_INFLIGHT = _REGISTRY.gauge(
    "repro_server_inflight_frames",
    "Frames read off sockets but not yet responded to (queue depth)",
)
_CONNECTIONS_ACTIVE = _REGISTRY.gauge(
    "repro_server_connections_active",
    "Currently open client connections",
)
_CONNECTIONS_TOTAL = _REGISTRY.counter(
    "repro_server_connections_total",
    "Client connections accepted over the server's lifetime",
)

#: queue marker for an oversized frame (the line itself was unrecoverable)
_OVERSIZED = object()


def _truncation_message(what: str, cap: int) -> str:
    return (
        f"{what} hit the kept-reports cap ({cap}); further reports are "
        f"counted but not recorded"
    )


@dataclass
class _ServerSession:
    """One network session: the service session plus its frame policy."""

    name: str
    internal: str
    on_truncation: str
    max_reports: int
    warned: bool = False
    #: when True, every feed response carries the serialized per-shard
    #: engine states (the cluster router's failover checkpoint)
    checkpoint: bool = False


@dataclass
class _Connection:
    """Per-connection bookkeeping."""

    conn_id: int
    queue: asyncio.Queue
    sessions: dict[str, _ServerSession] = field(default_factory=dict)
    closing: bool = False


@dataclass
class _BackendStats:
    """Aggregate scan traffic attributed to one resolved backend mix."""

    scans: int = 0
    bytes: int = 0
    elapsed_s: float = 0.0

    @property
    def throughput_mbps(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.bytes / self.elapsed_s / 1e6


class MatchingServer:
    """Serve a :class:`MatchingService` over TCP (NDJSON frames).

    Args:
        service: the service to expose; one is built from ``config``
            (or the deprecated loose keywords) when omitted.
        config: the :class:`~repro.api.config.ScanConfig` for the
            service built when ``service`` is omitted.
        host, port: bind address (``port=0`` picks a free port; read the
            bound one from :attr:`port` after :meth:`start`).
        max_frame_bytes: reject request lines longer than this and
            replace over-long responses with an error frame.
        max_inflight: per-connection bound on parsed-but-unprocessed
            frames; the socket is not read past it.
        executor_workers: thread-pool size for matching work.
        allow_shutdown: honour the ``shutdown`` frame (handy for tests
            and benchmarks; disable for long-lived deployments).
        num_shards, workers, backend, artifact_store,
            default_max_reports: deprecated loose keywords; a
            :class:`ScanConfig` is built from them (with a
            :class:`DeprecationWarning`) when both ``service`` and
            ``config`` are omitted.
    """

    def __init__(
        self,
        service: MatchingService | None = None,
        *,
        config: ScanConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        executor_workers: int = 4,
        allow_shutdown: bool = True,
        num_shards: int | None = None,
        workers: int | None = None,
        backend: str | None = None,
        artifact_store=None,
        default_max_reports: int | None = None,
    ) -> None:
        if max_frame_bytes < 1024:
            raise ConfigError("max_frame_bytes must be >= 1024")
        if max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        config = resolve_legacy_config(
            "MatchingServer",
            config,
            {
                "num_shards": num_shards,
                "workers": workers,
                "backend": backend,
                "artifact_store": artifact_store,
                "_default_max_reports": default_max_reports,
            },
        )
        if service is None:
            service = MatchingService(
                config if config is not None else ScanConfig()
            )
        elif config is not None:
            raise ConfigError(
                "pass either a prebuilt service or a config, not both"
            )
        self.service = service
        # wire semantics: a frame that names no truncation policy warns,
        # independent of the service's own scan policy (the client gets
        # the warning and decides); per-frame options merge onto this
        self._frame_base = service.config.replace(on_truncation="warn")
        self.host = host
        self._requested_port = port
        self.max_frame_bytes = max_frame_bytes
        self.max_inflight = max_inflight
        self.allow_shutdown = allow_shutdown
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.base_events.Server | None = None
        self._conn_ids = itertools.count(1)
        self._conn_tasks: set[asyncio.Task] = set()
        self._drain_event: asyncio.Event | None = None
        self._stopped = asyncio.Event()
        # registered automata, LRU-bounded alongside the service's
        # compiled-artifact caches (an evicted handle just re-registers)
        self._rulesets: OrderedDict[str, object] = OrderedDict()
        self._frames_processed = 0
        self._connections_total = 0
        self._connections_active = 0
        self._inflight = 0
        self._started_monotonic = time.monotonic()
        self._backend_stats: dict[str, _BackendStats] = {}
        # ops run on executor threads; guard their shared mutable state
        self._state_lock = threading.Lock()
        # cross-connection feed coalescing (created in start(); None
        # when ScanConfig.batch_max_rows disables batching)
        self._batcher = None

    # -- lifecycle --------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (only valid after :meth:`start`)."""
        if self._server is None:
            raise SimulationError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise SimulationError("server is already started")
        self._drain_event = asyncio.Event()
        cfg = self.service.config
        if cfg.batch_max_rows > 1:
            from repro.service.batching import BatchScheduler

            # feeds from concurrent connections against the same ruleset
            # coalesce into batched kernel steps; per-connection ordering
            # is untouched (one in-flight frame per connection)
            self._batcher = BatchScheduler(
                self._executor,
                max_rows=cfg.batch_max_rows,
                max_delay_s=cfg.batch_max_delay_ms / 1000.0,
            )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            limit=self.max_frame_bytes,
        )

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or a client ``shutdown`` frame)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish queued work, close.

        Every frame already read from a socket is processed and its
        response flushed before the connection closes; nothing new is
        read or accepted.
        """
        if self._server is None:
            return
        _log.info(
            "server.draining", connections=self._connections_active
        )
        self._drain_event.set()
        if self._batcher is not None:
            # close, not just flush: feeds racing in behind the drain
            # (frames already read off a socket) must flush immediately
            # instead of parking on a delay timer nothing will service
            self._batcher.close()
        self._server.close()
        await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._stopped.set()

    async def stop(self) -> None:
        """Drain, then release the executor and the service's pools."""
        await self.drain()
        self._executor.shutdown(wait=True)
        self.service.close()

    # -- connection handling ----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(
            conn_id=next(self._conn_ids),
            queue=asyncio.Queue(maxsize=self.max_inflight),
        )
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._connections_total += 1
        self._connections_active += 1
        _CONNECTIONS_TOTAL.labels().inc()
        _CONNECTIONS_ACTIVE.labels().inc()
        peer = writer.get_extra_info("peername")
        _log.debug(
            "connection.open", conn_id=conn.conn_id, peer=str(peer)
        )
        processor = asyncio.create_task(self._process_frames(conn, writer))
        drain_wait = asyncio.ensure_future(self._drain_event.wait())
        try:
            while True:
                read = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {read, drain_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if read not in done:
                    read.cancel()
                    break
                try:
                    line = read.result()
                except (asyncio.LimitOverrunError, ValueError):
                    # the line exceeded max_frame_bytes; the stream can no
                    # longer be framed, so reject and stop reading
                    _log.warning(
                        "connection.frame_too_large",
                        conn_id=conn.conn_id,
                        limit=self.max_frame_bytes,
                    )
                    await conn.queue.put(_OVERSIZED)
                    break
                except (ConnectionError, OSError) as exc:
                    _log.debug(
                        "connection.reset",
                        conn_id=conn.conn_id,
                        error=str(exc),
                    )
                    break  # client reset the connection
                if not line:
                    break  # EOF
                if line.strip():
                    await conn.queue.put(line)
                    self._inflight += 1
                    _INFLIGHT.labels().inc()
        finally:
            drain_wait.cancel()
            # the processor consumes until this sentinel even after a
            # write failure, so the put can never wedge on a full queue
            await conn.queue.put(None)
            await processor
            self._close_connection_sessions(conn)
            self._connections_active -= 1
            _CONNECTIONS_ACTIVE.labels().dec()
            _log.debug("connection.close", conn_id=conn.conn_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._conn_tasks.discard(task)

    async def _process_frames(
        self, conn: _Connection, writer: asyncio.StreamWriter
    ) -> None:
        """Execute one connection's frames strictly in order.

        Never exits before the reader's ``None`` sentinel: a dead peer
        (write failure) or a fatal protocol error switches to discard
        mode instead of returning, so the reader can always complete
        its (bounded, possibly full) queue handoff and reach its own
        cleanup — a blocked ``queue.put`` with no consumer would hang
        the connection task, and with it :meth:`drain`, forever.
        """
        discarding = False
        while True:
            item = await conn.queue.get()
            if item is None:
                return
            if item is not _OVERSIZED:
                self._inflight -= 1
                _INFLIGHT.labels().dec()
            if discarding:
                continue
            if item is _OVERSIZED:
                response = error_frame(
                    None,
                    f"frame exceeds max_frame_bytes ({self.max_frame_bytes})",
                    "frame-too-large",
                )
                conn.closing = True
            else:
                response = await self._respond(conn, item)
            self._frames_processed += 1
            payload = encode_frame(response)
            if len(payload) > self.max_frame_bytes:
                payload = encode_frame(
                    error_frame(
                        response.get("id"),
                        f"response exceeds max_frame_bytes "
                        f"({self.max_frame_bytes}); lower max_reports or "
                        f"use smaller chunks",
                        "frame-too-large",
                    )
                )
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionError, OSError) as exc:
                _log.debug(
                    "connection.write_failed",
                    conn_id=conn.conn_id,
                    error=str(exc),
                )
                discarding = True
                continue
            if conn.closing:
                discarding = True

    async def _respond(self, conn: _Connection, line: bytes) -> dict:
        """Turn one raw request line into its response frame."""
        request_id = None
        op = "unknown"
        start = time.perf_counter()
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            raw_op = frame.get("op")
            if not isinstance(raw_op, str):
                raise ProtocolError("frame has no 'op' field", code="bad-request")
            op = raw_op
            handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}", code="unknown-op")
            if op == "feed" and self._batcher is not None:
                # batched feeds park on the scheduler (event-loop side)
                # until their group flushes to the executor as one
                # batched kernel step
                payload = await self._op_feed_batched(conn, frame)
            elif op in _HEAVY_OPS:
                loop = asyncio.get_running_loop()
                payload = await loop.run_in_executor(
                    self._executor, handler, conn, frame
                )
            else:
                payload = handler(conn, frame)
            response = ok_frame(request_id, **payload)
            outcome = "ok"
        except ProtocolError as exc:
            _log.info(
                "request.rejected",
                conn_id=conn.conn_id,
                op=op,
                code=exc.code,
                error=str(exc),
            )
            response, outcome = error_frame(request_id, str(exc), exc.code), exc.code
        except ReproError as exc:
            _log.info(
                "request.rejected",
                conn_id=conn.conn_id,
                op=op,
                code="bad-request",
                error=str(exc),
            )
            response, outcome = error_frame(request_id, str(exc), "bad-request"), "bad-request"
        except Exception as exc:  # noqa: BLE001 — a handler bug must not
            # kill the connection; report it to the client instead
            _log.error(
                "request.internal_error",
                conn_id=conn.conn_id,
                op=op,
                error=f"{type(exc).__name__}: {exc}",
            )
            response = error_frame(
                request_id, f"{type(exc).__name__}: {exc}", "internal"
            )
            outcome = "internal"
        _REQUESTS.labels(op, outcome).inc()
        _REQUEST_SECONDS.labels(op).observe(time.perf_counter() - start)
        return response

    # -- shared op plumbing ----------------------------------------------
    def _automaton_for(self, frame: dict):
        handle = frame.get("handle")
        if not isinstance(handle, str):
            raise ProtocolError("request has no 'handle'", code="bad-request")
        with self._state_lock:
            automaton = self._rulesets.get(handle)
            if automaton is not None:
                self._rulesets.move_to_end(handle)
        if automaton is None:
            raise ProtocolError(
                f"unknown ruleset handle {handle!r}; register it first "
                f"(or re-register: handles are LRU-bounded)",
                code="unknown-handle",
            )
        return automaton

    def _scan_config(self, frame: dict) -> tuple:
        """The request's effective scan config (see
        :func:`~repro.service.protocol.scan_config_from_frame`); the
        typed config object is the single validation surface for loose
        frame fields and ``config`` objects alike."""
        return scan_config_from_frame(frame, self._frame_base)

    def _record_backend_traffic(self, result) -> None:
        key = "+".join(sorted(set(result.backends))) or "unresolved"
        with self._state_lock:
            stats = self._backend_stats.setdefault(key, _BackendStats())
            stats.scans += 1
            stats.bytes += result.bytes_scanned
            stats.elapsed_s += result.elapsed_s

    def _scan_payload(
        self, result, *, explicit_cap: bool, on_truncation: str, cap: int
    ) -> dict:
        """Serialize one ServiceResult, applying the frame-level policy.

        Matches engine-level semantics: an *explicit* per-request cap is
        intentional and silent; hitting the service default cap warns
        (a ``warnings`` entry the client re-raises) or errors.
        """
        self._record_backend_traffic(result)
        warnings_out: list[str] = []
        if result.truncated and not explicit_cap:
            message = _truncation_message("scan", cap)
            if on_truncation == "error":
                raise ProtocolError(message, code="truncated")
            if on_truncation == "warn":
                warnings_out.append(message)
        payload = {
            "reports": encode_reports(result.reports),
            "num_reports": result.num_reports,
            "truncated": result.truncated,
            "bytes": result.bytes_scanned,
            "elapsed_s": result.elapsed_s,
            "backends": result.backends,
            "cached": result.cached,
            "warnings": warnings_out,
        }
        if result.ledger is not None:
            payload["ledger"] = result.ledger.to_dict()
        if result.trace is not None:
            payload["trace_id"] = result.trace_id
        return payload

    # -- ops ---------------------------------------------------------------
    def _op_ping(self, conn: _Connection, frame: dict) -> dict:
        return {"pong": True, "version": PROTOCOL_VERSION}

    def _op_health(self, conn: _Connection, frame: dict) -> dict:
        """Liveness + inventory in one light frame (no matching work).

        What a router (or any load balancer / monitor) polls: whether
        the server is draining, how long it has been up, what rulesets
        and versions it holds, and how much work is in flight right
        now.  Runs on the event loop — it must answer even when every
        executor thread is busy scanning.
        """
        draining = self._drain_event.is_set() if self._drain_event else False
        with self._state_lock:
            num_rulesets = len(self._rulesets)
        return {
            "status": "draining" if draining else "ok",
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "version": PROTOCOL_VERSION,
            "rulesets": num_rulesets,
            "ruleset_versions": self.service.version_summary(),
            "open_sessions": len(self.service.sessions),
            "inflight": self._inflight,
            "connections": self._connections_active,
        }

    def _op_register(self, conn: _Connection, frame: dict) -> dict:
        kind = frame.get("kind", "regex")
        if kind == "regex":
            rules = frame.get("rules")
            if not isinstance(rules, (dict, list)) or not rules:
                raise ProtocolError(
                    "register kind 'regex' needs a non-empty 'rules' "
                    "dict or list",
                    code="bad-request",
                )
            automaton = compile_regex_set(
                rules, name=str(frame.get("name", "remote"))
            )
        elif kind == "mnrl":
            text = frame.get("text")
            if not isinstance(text, str):
                raise ProtocolError(
                    "register kind 'mnrl' needs a 'text' document",
                    code="bad-request",
                )
            automaton = loads_mnrl(text, name=str(frame.get("name", "remote")))
        else:
            raise ProtocolError(
                f"unknown ruleset kind {kind!r} (expected 'regex' or 'mnrl')",
                code="bad-request",
            )
        handle = self.service.manager.fingerprint(automaton)
        cached = self._remember_ruleset(handle, automaton)
        # compile (and cache) the shard engines now: registration is the
        # expensive step, scans against the handle stay warm.  Versioned
        # registration also writes per-component artifacts, so a later
        # ``update`` reuses every untouched component.
        record = self.service.register_ruleset(automaton, key=handle)
        return {
            "handle": handle,
            "states": len(automaton),
            "cached": cached,
            "version": record.version,
            "fingerprint": record.fingerprint,
        }

    def _remember_ruleset(self, handle: str, automaton) -> bool:
        """Insert into the LRU-bounded handle table; True when it was
        already registered."""
        with self._state_lock:
            cached = handle in self._rulesets
            self._rulesets[handle] = automaton
            self._rulesets.move_to_end(handle)
            if len(self._rulesets) > self.service.manager.capacity:
                self._rulesets.popitem(last=False)
        return cached

    def preload_ruleset(self, automaton) -> str:
        """Register ``automaton`` server-side, before any client asks.

        The deployment-shape primitive behind ``repro.api``'s
        ``handle.serve()``: the ruleset compiles (and its handle
        registers) at startup, so the first remote ``scan`` against the
        returned handle is already warm.  Returns the handle — the same
        fingerprint a client-side ``register`` of the same rules yields.
        """
        handle = self.service.manager.fingerprint(automaton)
        self._remember_ruleset(handle, automaton)
        self.service.register_ruleset(automaton, key=handle)
        return handle

    def _op_register_artifact(self, conn: _Connection, frame: dict) -> dict:
        """Adopt a client-side precompiled ruleset ("compile once, load
        anywhere"): the artifact's prebuilt tables seed the service
        cache, so registration skips the compile the ``register`` op
        would have paid."""
        from repro.compile.artifact import CompiledArtifact
        from repro.errors import ArtifactError

        data = decode_data(frame.get("data", ""))
        if not data:
            raise ProtocolError(
                "register_artifact needs 'data' (base64 .npz artifact)",
                code="bad-request",
            )
        try:
            artifact = CompiledArtifact.from_bytes(data)
            handle, automaton = self.service.register_artifact(artifact)
        except ArtifactError as exc:
            raise ProtocolError(str(exc), code="bad-artifact") from exc
        cached = self._remember_ruleset(handle, automaton)
        # build the sharded dispatcher now (hits the seeded engine when
        # the shard/backend shape lines up), so scans stay warm
        self.service.dispatcher(automaton, key=handle)
        return {
            "handle": handle,
            "states": len(automaton),
            "cached": cached,
            "backend": artifact.backend,
        }

    def _op_update(self, conn: _Connection, frame: dict) -> dict:
        """Hot-swap a registered ruleset to a new version, zero downtime.

        The handle keeps naming the lineage: this op rebinds it to the
        updated automaton, so scans and sessions opened afterwards see
        the new version, while sessions already open keep streaming
        against the version they opened with (the service retires it
        when its last session closes).  Compilation goes through the
        incremental path — only the added patterns' components compile;
        everything untouched is reused from cache.
        """
        handle = frame.get("handle")
        automaton = self._automaton_for(frame)
        add, remove = ruleset_update_from_frame(frame)
        record = self.service.update_ruleset(
            automaton, add=add, remove=remove
        )
        with self._state_lock:
            # rebind only if the handle still maps to what we updated
            # from (a concurrent re-register may have replaced it)
            if self._rulesets.get(handle) is automaton:
                self._rulesets[handle] = record.automaton
        return {
            "handle": handle,
            "version": record.version,
            "fingerprint": record.fingerprint,
            "states": len(record.automaton),
            "reused_components": record.reused_components,
            "compiled_components": record.compiled_components,
        }

    def _op_scan(self, conn: _Connection, frame: dict) -> dict:
        automaton = self._automaton_for(frame)
        data = decode_data(frame.get("data", ""))
        cfg, explicit_cap, digest = self._scan_config(frame)
        result = self.service.scan(
            automaton,
            data,
            chunk_size=cfg.chunk_size,
            max_reports=cfg.max_reports,
            on_truncation="ignore",
            hardware_ledger=cfg.hardware_ledger,
            ledger_design=cfg.ledger_design,
            trace=cfg.trace,
        )
        payload = self._scan_payload(
            result,
            explicit_cap=explicit_cap,
            on_truncation=cfg.on_truncation,
            cap=cfg.max_reports,
        )
        if digest is not None:
            payload["config_digest"] = digest
        return payload

    def _op_scan_many(self, conn: _Connection, frame: dict) -> dict:
        automaton = self._automaton_for(frame)
        streams = frame.get("streams")
        if not isinstance(streams, dict):
            raise ProtocolError(
                "scan_many needs a 'streams' dict of name -> base64 data",
                code="bad-request",
            )
        cfg, explicit_cap, digest = self._scan_config(frame)
        decoded = {str(name): decode_data(data) for name, data in streams.items()}
        results = self.service.scan_many(
            automaton,
            decoded,
            chunk_size=cfg.chunk_size,
            max_reports=cfg.max_reports,
            on_truncation="ignore",
            hardware_ledger=cfg.hardware_ledger,
            ledger_design=cfg.ledger_design,
            trace=cfg.trace,
        )
        payload = {
            "results": {
                name: self._scan_payload(
                    result,
                    explicit_cap=explicit_cap,
                    on_truncation=cfg.on_truncation,
                    cap=cfg.max_reports,
                )
                for name, result in results.items()
            }
        }
        if digest is not None:
            payload["config_digest"] = digest
        return payload

    def _op_open(self, conn: _Connection, frame: dict) -> dict:
        automaton = self._automaton_for(frame)
        name = frame.get("session")
        if not isinstance(name, str) or not name:
            raise ProtocolError(
                "open needs a non-empty 'session' name", code="bad-request"
            )
        if name in conn.sessions:
            raise ProtocolError(
                f"session {name!r} is already open on this connection",
                code="bad-request",
            )
        cfg, _, digest = self._scan_config(frame)
        internal = f"conn{conn.conn_id}/{name}"
        # policy is applied at the frame level (below); the underlying
        # session must not warn inside a worker thread
        session = self.service.open_session(
            automaton,
            internal,
            max_reports=cfg.max_reports,
            on_truncation="ignore",
            hardware_ledger=cfg.hardware_ledger,
            ledger_design=cfg.ledger_design,
        )
        state = frame.get("state")
        if state is not None:
            # failover handoff: adopt a checkpointed snapshot taken on
            # another node, so this stream resumes at the snapshot's
            # absolute position (only a fresh session may restore)
            if not isinstance(state, list):
                self.service.close_session(internal)
                raise ProtocolError(
                    "open 'state' must be a list of per-shard engine "
                    "state objects",
                    code="bad-request",
                )
            try:
                session.restore(state)
            except ReproError as exc:
                self.service.close_session(internal)
                raise ProtocolError(str(exc), code="bad-request") from exc
        conn.sessions[name] = _ServerSession(
            name=name,
            internal=internal,
            on_truncation=cfg.on_truncation,
            max_reports=session.max_reports,
            checkpoint=bool(frame.get("checkpoint")),
        )
        payload = {"session": name, "position": session.position}
        if session.ruleset_version is not None:
            payload["version"] = session.ruleset_version
        if digest is not None:
            payload["config_digest"] = digest
        return payload

    def _session_for(self, conn: _Connection, frame: dict) -> _ServerSession:
        name = frame.get("session")
        if not isinstance(name, str):
            raise ProtocolError("request has no 'session'", code="bad-request")
        record = conn.sessions.get(name)
        if record is None:
            raise ProtocolError(
                f"unknown session {name!r} on this connection",
                code="unknown-session",
            )
        return record

    def _op_feed(self, conn: _Connection, frame: dict) -> dict:
        record = self._session_for(conn, frame)
        data = decode_data(frame.get("data", ""))
        session = self.service.sessions[record.internal]
        return self._feed_payload(record, session, session.feed(data))

    async def _op_feed_batched(self, conn: _Connection, frame: dict) -> dict:
        """The batched ``feed`` path: park the chunk on the scheduler.

        Identical wire behaviour to :meth:`_op_feed` — same payload,
        same truncation policy — but the kernel step may advance many
        sessions at once when other connections feed concurrently.
        """
        record = self._session_for(conn, frame)
        data = decode_data(frame.get("data", ""))
        session = self.service.sessions[record.internal]
        reports = await self._batcher.submit(session.dispatcher, session, data)
        return self._feed_payload(record, session, reports)

    def _feed_payload(self, record, session, reports) -> dict:
        """Serialize one feed's outcome, applying the frame-level policy."""
        warnings_out: list[str] = []
        if session.truncated and not record.warned:
            record.warned = True
            message = _truncation_message(
                f"session {record.name!r}", record.max_reports
            )
            if record.on_truncation == "error":
                raise ProtocolError(message, code="truncated")
            if record.on_truncation == "warn":
                warnings_out.append(message)
        payload = {
            "reports": encode_reports(reports),
            "position": session.position,
            "truncated": session.truncated,
            "warnings": warnings_out,
        }
        if record.checkpoint:
            # the serialized per-shard engine states *after* this chunk:
            # whoever holds this response can resume the stream from
            # here on any node with the same ruleset (open with state=)
            payload["state"] = [s.to_dict() for s in session.shard_states]
        ledger = session.ledger()
        if ledger is not None:
            payload["ledger"] = ledger.to_dict()
        return payload

    def _op_close(self, conn: _Connection, frame: dict) -> dict:
        record = self._session_for(conn, frame)
        session = self.service.sessions.get(record.internal)
        ledger = session.ledger() if session is not None else None
        result = self.service.close_session(record.internal)
        del conn.sessions[record.name]
        payload = {
            "num_reports": result.num_reports,
            "cycles": result.stats.num_cycles,
            "truncated": result.truncated,
        }
        if ledger is not None:
            payload["ledger"] = ledger.to_dict()
        return payload

    def _op_stats(self, conn: _Connection, frame: dict) -> dict:
        cache = self.service.cache_stats
        with self._state_lock:
            backend_stats = {
                name: {
                    "scans": stats.scans,
                    "bytes": stats.bytes,
                    "elapsed_s": stats.elapsed_s,
                    "throughput_mbps": stats.throughput_mbps,
                }
                for name, stats in self._backend_stats.items()
            }
            num_rulesets = len(self._rulesets)
        payload = {
            #: stats-frame schema version (2: adds ``stats_version``,
            #: ``ledger`` totals and the ``telemetry`` block; absent
            #: means v1)
            "stats_version": 2,
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "hit_rate": cache.hit_rate,
            },
            "active_sessions": len(self.service.sessions),
            "connections": {
                "active": self._connections_active,
                "total": self._connections_total,
            },
            "frames": self._frames_processed,
            "rulesets": num_rulesets,
            "ruleset_versions": self.service.version_summary(),
            "backends": backend_stats,
            "telemetry": {
                "metrics_enabled": _REGISTRY.enabled,
                "hardware_ledger": self.service.config.hardware_ledger,
            },
            "batching": self._batcher.stats()
            if self._batcher is not None
            else {"enabled": False},
            "draining": self._drain_event.is_set()
            if self._drain_event
            else False,
        }
        totals = self.service.ledger_totals
        if totals is not None:
            with self.service._lock:
                payload["ledger"] = totals.to_dict()
        return payload

    def _op_metrics(self, conn: _Connection, frame: dict) -> dict:
        """The process-wide metrics registry in the Prometheus text
        exposition format (a light op: snapshotting the registry takes
        one lock, never the service's)."""
        return {
            "content_type": "text/plain; version=0.0.4",
            "metrics": render_prometheus(),
        }

    def _op_shutdown(self, conn: _Connection, frame: dict) -> dict:
        if not self.allow_shutdown:
            raise ProtocolError(
                "remote shutdown is disabled on this server", code="bad-request"
            )
        # shutdown is a light op, so this runs on the event loop; the
        # drain task starts only after this frame's response is written
        asyncio.create_task(self.drain())
        return {"draining": True}

    def _close_connection_sessions(self, conn: _Connection) -> None:
        """Release a dropped connection's sessions (results discarded)."""
        for record in conn.sessions.values():
            try:
                self.service.close_session(record.internal)
            except ReproError as exc:
                _log.warning(
                    "session.close_failed",
                    conn_id=conn.conn_id,
                    session=record.name,
                    error=str(exc),
                )
        conn.sessions.clear()


class BackgroundServer:
    """A :class:`MatchingServer` on a daemon thread with its own loop.

    The in-process deployment shape tests, benchmarks and examples use:
    start it, talk to it over real TCP from any thread, stop it.  Extra
    keyword arguments build the server when one is not passed in.

    ::

        with BackgroundServer(config=ScanConfig(num_shards=4)) as bg:
            client = MatchingClient(port=bg.port)
    """

    #: the service-shaped legacy kwargs this wrapper resolves itself, so
    #: the deprecation warning is attributed to *its* caller instead of
    #: this module's forwarding frame (the CI gate errors on repro.*)
    _LEGACY_SERVICE_KWARGS = (
        "num_shards",
        "workers",
        "backend",
        "artifact_store",
        "default_max_reports",
    )

    def __init__(self, server: MatchingServer | None = None, **kwargs) -> None:
        if server is None:
            legacy = {
                (
                    "_default_max_reports"
                    if name == "default_max_reports"
                    else name
                ): kwargs.pop(name)
                for name in self._LEGACY_SERVICE_KWARGS
                if name in kwargs
            }
            config = resolve_legacy_config(
                "BackgroundServer", kwargs.pop("config", None), legacy
            )
            if config is not None:
                kwargs["config"] = config
        self.server = server if server is not None else MatchingServer(**kwargs)
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
                self.loop = asyncio.get_running_loop()
                self.port = self.server.port
            except BaseException as exc:  # surface bind errors to start()
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            try:
                await self.server.serve_forever()
            finally:
                await self.server.stop()

        asyncio.run(main())

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise SimulationError("background server is already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise SimulationError("background server did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain and stop; no-op when already stopped (e.g. by a client
        ``shutdown`` frame)."""
        if self._thread is None:
            return
        if self.loop is not None and self._thread.is_alive():
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.server.stop(), self.loop
                )
                future.result(timeout)
            except (
                RuntimeError,
                asyncio.CancelledError,
                concurrent.futures.CancelledError,
                concurrent.futures.TimeoutError,
            ):
                pass  # the loop already wound down (e.g. client shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise SimulationError("background server did not stop in time")

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def run_server(server: MatchingServer) -> None:
    """Blocking convenience wrapper: start and serve until shutdown.

    Installs the JSON-lines log handler when the host application has
    not configured the ``repro`` logger tree itself, so the listening
    address (and every connection/request event) is observable.
    """
    import logging

    from repro.telemetry.log import configure as _configure_logging

    if not logging.getLogger("repro").handlers:
        _configure_logging()

    async def _main() -> None:
        await server.start()
        host, port = server.address
        _log.info("server.listening", host=host, port=port)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
