"""Cross-stream batch scheduling: coalesced kernel steps for sessions.

The kernel layer amortizes per-symbol work across streams — one
:meth:`~repro.sim.engine.Engine.step_batch` call advances a whole
matrix of stream rows (mirroring how one CAMA search key evaluates
every stored state row at once).  This module supplies the service-side
glue that *finds* those batches:

- :func:`feed_session_batch` — the synchronous core: take N (session,
  chunk) pairs that share a dispatcher, run one
  :meth:`~repro.service.sharding.Dispatcher.run_chunk_batch`, and
  absorb each per-stream result into its session exactly as a solo
  :meth:`~repro.service.session.Session.feed` would.
- :class:`BatchScheduler` — the asyncio half used by the NDJSON
  server: pending feeds accumulate per dispatcher and flush as one
  batched executor job when the batch fills (``rows_full``), when the
  oldest entry has waited ``max_delay_s`` (``max_delay``), when the
  scheduler runs with no delay window or has been closed
  (``immediate``), or when the server drains (``drain``).

Batching never reorders a single stream (the server admits at most one
in-flight chunk per session) and never changes results — every flush
path is byte-identical to sequential per-session feeds.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.sim.reports import Report
from repro.telemetry.metrics import default_registry

_REGISTRY = default_registry()
_BATCH_ROWS = _REGISTRY.histogram(
    "repro_batch_rows",
    "Stream rows advanced per batched kernel flush (occupancy)",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
)
_BATCH_FLUSHES = _REGISTRY.counter(
    "repro_batch_flushes_total",
    "Batched-feed flushes by trigger "
    "(rows_full / max_delay / immediate / drain)",
    ("reason",),
)

FLUSH_REASONS = ("rows_full", "max_delay", "immediate", "drain")


def observe_flush(rows: int, reason: str) -> None:
    """Record one batch flush in the telemetry registry."""
    _BATCH_ROWS.labels().observe(rows)
    _BATCH_FLUSHES.labels(reason).inc()


def feed_session_batch(dispatcher, entries):
    """Feed one chunk into each of several sessions in one batched step.

    ``entries`` is a list of ``(session, chunk)`` pairs whose sessions
    all run on ``dispatcher``.  Returns one ``(reports, exc)`` outcome
    per entry: ``reports`` is the chunk's new reports (as
    :meth:`Session.feed` would return) and ``exc`` is the exception the
    equivalent solo feed would have raised (``on_truncation="error"``),
    or None.  State bookkeeping happens even for erroring entries,
    exactly as in the solo path.

    Closed sessions are filtered out *before* the batched dispatch —
    running their rows would advance their shard states even though
    :meth:`Session.absorb` refuses the result — and get the same
    ``SimulationError`` outcome the solo feed raises.
    """
    from repro.errors import SimulationError

    outcomes: list[tuple[list[Report], BaseException | None] | None] = [
        None
    ] * len(entries)
    live: list[int] = []
    for i, (session, _) in enumerate(entries):
        if session.closed:
            outcomes[i] = (
                [],
                SimulationError(f"session {session.name!r} is closed"),
            )
        else:
            live.append(i)
    if live:
        results = dispatcher.run_chunk_batch(
            [entries[i][1] for i in live],
            [entries[i][0].shard_states for i in live],
            max_reports=[entries[i][0].report_budget for i in live],
        )
        for i, result in zip(live, results):
            session, chunk = entries[i]
            try:
                outcomes[i] = (session.absorb(chunk, result), None)
            except Exception as exc:  # e.g. on_truncation="error"
                outcomes[i] = ([], exc)
    return outcomes


@dataclass
class _Pending:
    """Feeds queued against one dispatcher, awaiting a flush."""

    entries: list = field(default_factory=list)
    futures: list = field(default_factory=list)
    timer: object = None


class BatchScheduler:
    """Coalesces concurrent session feeds into batched kernel steps.

    Owned by the asyncio server; must be used from its event loop.
    ``submit`` parks a feed until either ``max_rows`` feeds for the
    same dispatcher are pending or ``max_delay_s`` has elapsed since
    the group's first feed, then runs the whole group as one
    :func:`feed_session_batch` job on ``executor``.  The trade-off is
    explicit: a lone stream pays up to ``max_delay_s`` extra latency so
    that N concurrent streams pay one kernel invocation instead of N.

    With ``max_delay_s == 0`` every submit flushes its group at once —
    those flushes count under the ``immediate`` reason (no timer ever
    fired).  After :meth:`close` the scheduler keeps working but stops
    parking: feeds that race in behind a drain (frames the server had
    already read) flush immediately instead of waiting on a delay
    timer that may never be serviced again.
    """

    def __init__(self, executor, *, max_rows: int, max_delay_s: float) -> None:
        self._executor = executor
        self._max_rows = max(1, int(max_rows))
        self._max_delay_s = max(0.0, float(max_delay_s))
        self._pending: dict[int, _Pending] = {}
        self._keepalive: dict[int, object] = {}  # dispatcher refs
        self.closed = False
        self.batches = 0
        self.rows = 0
        self.flush_reasons = {reason: 0 for reason in FLUSH_REASONS}

    async def submit(self, dispatcher, session, chunk) -> list:
        """Queue one feed; resolves with the chunk's new reports."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        key = id(dispatcher)
        group = self._pending.get(key)
        if group is None:
            group = _Pending()
            self._pending[key] = group
            self._keepalive[key] = dispatcher
            if self._max_delay_s > 0 and not self.closed:
                group.timer = loop.call_later(
                    self._max_delay_s, self._flush, key, "max_delay"
                )
        group.entries.append((session, chunk))
        group.futures.append(future)
        if len(group.entries) >= self._max_rows:
            self._flush(key, "rows_full")
        elif self.closed or self._max_delay_s == 0:
            self._flush(key, "immediate")
        return await future

    def close(self) -> None:
        """Drain pending groups and switch to immediate-flush mode.

        Called when the server drains.  Feeds submitted afterwards
        still execute (the server finishes every frame it already
        read), but each flushes at once — nothing can park behind a
        ``max_delay_s`` window after the drain pass has run.
        """
        self.closed = True
        self.flush_all("drain")

    def flush_all(self, reason: str = "drain") -> None:
        """Flush every pending group (server drain / shutdown)."""
        for key in list(self._pending):
            self._flush(key, reason)

    def stats(self) -> dict:
        """Plain-dict counters for the server's ``stats`` frame."""
        return {
            "enabled": True,
            "batches": self.batches,
            "rows": self.rows,
            "avg_rows": round(self.rows / self.batches, 3)
            if self.batches
            else 0.0,
            "flush_reasons": dict(self.flush_reasons),
        }

    def _flush(self, key: int, reason: str) -> None:
        group = self._pending.pop(key, None)
        dispatcher = self._keepalive.pop(key, None)
        if group is None or not group.entries:
            return
        if group.timer is not None:
            group.timer.cancel()
        self.batches += 1
        self.rows += len(group.entries)
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        observe_flush(len(group.entries), reason)
        loop = asyncio.get_running_loop()
        job = loop.run_in_executor(
            self._executor, feed_session_batch, dispatcher, group.entries
        )
        futures = group.futures

        def _resolve(done: "asyncio.Future") -> None:
            exc = done.exception()
            if exc is not None:
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
                return
            for future, (reports, entry_exc) in zip(futures, done.result()):
                if future.done():
                    continue
                if entry_exc is not None:
                    future.set_exception(entry_exc)
                else:
                    future.set_result(reports)

        job.add_done_callback(_resolve)
