"""Wire protocol of the network matching service.

The server and both clients speak *newline-delimited JSON frames*: one
UTF-8 JSON object per line, terminated by ``\\n``.  Requests carry an
``id`` (echoed verbatim in the response so a pipelining client can
match them up) and an ``op``; responses carry ``ok`` plus either the
op's payload or ``error``/``code``.  Binary stream data travels as
base64 (JSON has no bytes type), reports as compact ``[cycle,
state_id, code]`` triples.

Frame reference (also in the README):

========== ============================================= ==============
op         request fields                                response fields
========== ============================================= ==============
ping       --                                            ``pong``, ``version``
health     --                                            ``status``, ``uptime_s``,
                                                         ``version``, ``rulesets``,
                                                         ``ruleset_versions``,
                                                         ``open_sessions``,
                                                         ``inflight``, ``connections``
register   ``kind`` ("regex"|"mnrl"), ``rules``|``text`` ``handle``, ``states``, ``cached``
register-  ``data`` (b64 ``.npz`` compiled artifact —    ``handle``, ``states``, ``cached``,
artifact   see :mod:`repro.compile.artifact`)            ``backend``
scan       ``handle``, ``data`` (b64), ``chunk_size?``,  ``reports``, ``num_reports``,
           ``max_reports?``, ``on_truncation?``,         ``truncated``, ``bytes``,
           ``hardware_ledger?``, ``ledger_design?``,     ``elapsed_s``, ``backends``,
           ``trace?``                                    ``cached``, ``warnings``,
                                                         ``ledger?``, ``trace_id?``
scan_many  ``handle``, ``streams`` ({name: b64}), ...    ``results`` ({name: scan payload})
open       ``handle``, ``session``, ``max_reports?``,    ``session``, ``version?``
           ``on_truncation?``, ``checkpoint?``,
           ``state?`` (handoff resume)
update     ``handle``, ``add?`` ({code: pattern} or      ``handle``, ``version``,
           [pattern]), ``remove?`` ([code])              ``fingerprint``, ``states``,
                                                         ``reused_components``,
                                                         ``compiled_components``
feed       ``session``, ``data`` (b64)                   ``reports``, ``position``,
                                                         ``truncated``, ``warnings``,
                                                         ``ledger?``, ``state?``
close      ``session``                                   ``num_reports``, ``cycles``,
                                                         ``truncated``, ``ledger?``
stats      --                                            ``stats_version``, ``cache``,
                                                         ``active_sessions``,
                                                         ``connections``, ``frames``,
                                                         ``backends``, ``telemetry``,
                                                         ``ledger``
metrics    --                                            ``metrics`` (Prometheus text),
                                                         ``content_type``
shutdown   --                                            ``draining``
========== ============================================= ==============

Error codes: ``bad-frame`` (not JSON / not an object), ``bad-request``
(missing or invalid fields), ``bad-artifact`` (corrupt, truncated or
version-incompatible compiled artifact), ``unknown-op``,
``unknown-handle``, ``unknown-session``, ``frame-too-large``
(connection closes), ``truncated`` (strict report-cap policy),
``over-quota`` (tenant admission control rejected the request — see
:mod:`repro.cluster.quotas`; the error frame carries ``retry_after_s``
when the quota is a rate), ``unavailable`` (no live node can serve the
request; cluster router only), ``internal``.

Cluster-mode additions (all backwards-compatible within version 2; see
:mod:`repro.cluster`):

* ``health`` — a light liveness/inventory probe (uptime, ruleset
  versions, open sessions, queued frames).  The cluster router polls it
  per node; it is equally useful against a standalone server.  The
  router answers its own ``health`` with a fleet view (``nodes`` map).
* session handoff — ``open`` accepts ``checkpoint`` (every ``feed``
  response then carries ``state``, the serialized per-shard
  :class:`~repro.sim.backends.base.EngineState` list) and ``state`` (a
  previously checkpointed snapshot to resume from, position included).
  This is the failover mechanism: the router checkpoints after every
  acknowledged chunk and replays the last snapshot onto a replica when
  a node dies mid-stream, so the stream resumes byte-identically.
* ``tenant`` — any request frame may carry a tenant id (a string).
  Nodes ignore it; the cluster router uses it for per-tenant admission
  control (token-bucket byte rates, session caps, compile budgets) and
  answers over-quota requests with code ``over-quota``.
* ``hello`` — router only: ``{"op": "hello", "host": "10.0.0.5",
  "port": 7100}`` (or the compact ``"node": "host:port"`` form) adds a
  node to the fleet at runtime (new placements see it).

The ``register_artifact`` op (wire name; the table row is wrapped) was
added in protocol version 2; version-1 servers answer it with
``unknown-op``, which clients can treat as "upload source instead".

The ``update`` op hot-swaps a registered ruleset to a new *version*
through the incremental compile path: the handle keeps naming the
lineage (new scans and sessions bind the latest version), while
sessions already open finish their streams on the version they opened
against.  ``register`` and ``open`` responses gained ``version``
fields alongside it.  A version-2 addition like the others: old
servers answer ``update`` with ``unknown-op``, old clients ignore the
extra fields.

Scan-shaped requests (``scan``, ``scan_many``, ``open``) may carry a
``config`` object — a :meth:`repro.api.ScanConfig.to_dict` payload —
instead of (or alongside; loose fields win) the loose ``chunk_size`` /
``max_reports`` / ``on_truncation`` fields.  The server validates it
through :class:`~repro.api.config.ScanConfig` itself (the single
validation surface) and echoes ``config_digest`` in the response so the
client can assert the config survived the wire byte-identically.  Only
the per-scan fields apply remotely; sharding/worker/caching fields are
server deployment policy.  Both additions are backwards-compatible
within protocol version 2.
"""

from __future__ import annotations

import base64
import json

from repro.api.config import ScanConfig
from repro.errors import ConfigError, ReproError
from repro.sim.reports import Report

#: protocol version advertised by ``ping`` (2: ``register_artifact``;
#: still 2 after the optional ``config`` request field and the
#: ``config_digest`` response field, and still 2 after the observability
#: additions — the ``metrics`` op, stats-frame v2 fields, and the
#: optional ``ledger``/``trace_id`` response fields — all of which are
#: backwards-compatible additions a v2 peer simply omits/ignores)
PROTOCOL_VERSION = 2

#: the :class:`~repro.api.config.ScanConfig` fields a request frame may
#: override per scan/session; the rest (sharding, workers, caching) are
#: server deployment policy and are ignored when a client sends them.
#: ``hardware_ledger``/``ledger_design``/``trace`` were added with the
#: stats-frame v2 work — a client may request the modeled-cost ledger
#: (and a ``trace_id``) per scan even when the server's deployment
#: config does not ledger by default
SCAN_FRAME_FIELDS = (
    "chunk_size",
    "max_reports",
    "on_truncation",
    "hardware_ledger",
    "ledger_design",
    "trace",
)

#: ops a client may safely re-send after a transient failure mid-flight
#: (the retry policy's send-retry whitelist): pure reads, plus
#: registration ops that are idempotent by content addressing.  ``open``
#: is *not* listed — a duplicate open answers "already open" — and
#: ``update``/``feed``/``close`` mutate state, so a retry could apply an
#: edit or a chunk twice.  Connect-phase failures (nothing sent yet) are
#: retryable for every op.
IDEMPOTENT_OPS = frozenset(
    {
        "ping",
        "health",
        "stats",
        "metrics",
        "register",
        "register_artifact",
        "scan",
        "scan_many",
    }
)

#: default cap on one frame's encoded size (request and response)
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

#: default bound on queued-but-unprocessed frames per connection; the
#: server stops reading the socket past it (TCP backpressure)
DEFAULT_MAX_INFLIGHT = 8


class ProtocolError(ReproError):
    """A frame violated the wire protocol."""

    def __init__(self, message: str, code: str = "bad-frame") -> None:
        self.code = code
        super().__init__(message)


def encode_frame(frame: dict) -> bytes:
    """Serialize one frame to its newline-terminated wire form."""
    return json.dumps(frame, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` (code ``bad-frame``) for anything that
    is not a JSON object — the caller decides whether the connection
    survives.
    """
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def encode_data(data: bytes) -> str:
    """Binary stream data -> base64 text for a JSON frame."""
    return base64.b64encode(data).decode("ascii")


def decode_data(text: str) -> bytes:
    """Base64 text from a frame -> binary stream data."""
    if not isinstance(text, str):
        raise ProtocolError(
            f"data must be a base64 string, got {type(text).__name__}",
            code="bad-request",
        )
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError(
            f"data is not valid base64: {exc}", code="bad-request"
        ) from exc


def encode_reports(reports: list[Report]) -> list[list]:
    """Reports -> compact ``[cycle, state_id, code]`` wire triples."""
    return [[r.cycle, r.state_id, r.code] for r in reports]


def decode_reports(triples: list[list]) -> list[Report]:
    """Wire triples -> :class:`Report` records."""
    return [
        Report(cycle=int(c), state_id=int(s), code=code)
        for c, s, code in triples
    ]


def scan_config_from_frame(
    frame: dict, base: ScanConfig
) -> tuple[ScanConfig, bool, str | None]:
    """Resolve one scan/open request's effective :class:`ScanConfig`.

    ``base`` carries the server's deployment defaults (with the wire's
    ``on_truncation`` default already applied by the caller).  A frame
    may override the per-scan fields (:data:`SCAN_FRAME_FIELDS`) two
    ways — the legacy loose ``chunk_size``/``max_reports``/
    ``on_truncation`` fields, or a ``config`` object in
    ``ScanConfig.to_dict()`` form; loose fields win when both appear.
    Either way the values land in a :class:`ScanConfig`, so the config
    dataclass is the *single* validation surface for the wire too:
    anything it rejects comes back as a ``bad-request``
    :class:`ProtocolError`.

    A serialized config carries *every* field (``to_dict`` is total),
    so a field counts as a request-level override only when its value
    differs from the :class:`ScanConfig` default — otherwise a client
    sending ``ScanConfig(chunk_size=1024)`` would silently replace the
    server's deployment ``max_reports``/``on_truncation`` with the
    client-side defaults and mute the server's truncation messaging.
    A client that really wants a default-valued cap states it with the
    loose ``max_reports`` field.

    Returns ``(config, explicit_cap, config_digest)``:
    ``explicit_cap`` is True when the request set its own
    ``max_reports`` (intentional caps stay silent, mirroring
    :meth:`Engine.run`), and ``config_digest`` is the digest of the
    parsed ``config`` object (None without one) — the server echoes it
    so clients can assert the config survived the wire unchanged.
    """
    overrides: dict = {}
    digest = None
    sent = frame.get("config")
    if sent is not None:
        if not isinstance(sent, dict):
            raise ProtocolError(
                "config must be a JSON object (ScanConfig.to_dict() form)",
                code="bad-request",
            )
        try:
            parsed = ScanConfig.from_dict(sent)
        except (ConfigError, TypeError) as exc:
            raise ProtocolError(
                f"invalid config: {exc}", code="bad-request"
            ) from exc
        digest = parsed.digest()
        defaults = ScanConfig()
        for name in SCAN_FRAME_FIELDS:
            value = getattr(parsed, name)
            if name in sent and value != getattr(defaults, name):
                overrides[name] = value
    for name in SCAN_FRAME_FIELDS:
        if frame.get(name) is not None:
            overrides[name] = frame[name]
    explicit_cap = "max_reports" in overrides
    try:
        return base.merged(**overrides), explicit_cap, digest
    except ConfigError as exc:
        raise ProtocolError(str(exc), code="bad-request") from exc


def ruleset_update_from_frame(frame: dict) -> tuple:
    """Validate an ``update`` frame's edit fields -> ``(add, remove)``.

    ``add`` is a ``{code: pattern}`` mapping or a list of patterns;
    ``remove`` is a list of report codes.  At least one must be
    present.  Pattern/code values must be strings — the compile layer
    re-validates the regexes themselves.
    """
    add = frame.get("add")
    remove = frame.get("remove")
    if add is None and remove is None:
        raise ProtocolError(
            "update needs 'add' and/or 'remove'", code="bad-request"
        )
    if add is not None:
        if isinstance(add, dict):
            ok = all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in add.items()
            )
        elif isinstance(add, list):
            ok = all(isinstance(p, str) for p in add)
        else:
            ok = False
        if not ok or not add:
            raise ProtocolError(
                "'add' must be a non-empty {code: pattern} object or "
                "a non-empty list of pattern strings",
                code="bad-request",
            )
    if remove is not None:
        if (
            not isinstance(remove, list)
            or not remove
            or not all(isinstance(c, str) for c in remove)
        ):
            raise ProtocolError(
                "'remove' must be a non-empty list of report-code strings",
                code="bad-request",
            )
    return add, remove


def error_frame(request_id, message: str, code: str) -> dict:
    """Build the error response for one failed request."""
    return {"id": request_id, "ok": False, "error": message, "code": code}


def ok_frame(request_id, **payload) -> dict:
    """Build the success response for one request."""
    return {"id": request_id, "ok": True, **payload}
