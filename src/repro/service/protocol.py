"""Wire protocol of the network matching service.

The server and both clients speak *newline-delimited JSON frames*: one
UTF-8 JSON object per line, terminated by ``\\n``.  Requests carry an
``id`` (echoed verbatim in the response so a pipelining client can
match them up) and an ``op``; responses carry ``ok`` plus either the
op's payload or ``error``/``code``.  Binary stream data travels as
base64 (JSON has no bytes type), reports as compact ``[cycle,
state_id, code]`` triples.

Frame reference (also in the README):

========== ============================================= ==============
op         request fields                                response fields
========== ============================================= ==============
ping       --                                            ``pong``, ``version``
register   ``kind`` ("regex"|"mnrl"), ``rules``|``text`` ``handle``, ``states``, ``cached``
register-  ``data`` (b64 ``.npz`` compiled artifact —    ``handle``, ``states``, ``cached``,
artifact   see :mod:`repro.compile.artifact`)            ``backend``
scan       ``handle``, ``data`` (b64), ``chunk_size?``,  ``reports``, ``num_reports``,
           ``max_reports?``, ``on_truncation?``          ``truncated``, ``bytes``,
                                                         ``elapsed_s``, ``backends``,
                                                         ``cached``, ``warnings``
scan_many  ``handle``, ``streams`` ({name: b64}), ...    ``results`` ({name: scan payload})
open       ``handle``, ``session``, ``max_reports?``,    ``session``
           ``on_truncation?``
feed       ``session``, ``data`` (b64)                   ``reports``, ``position``,
                                                         ``truncated``, ``warnings``
close      ``session``                                   ``num_reports``, ``cycles``,
                                                         ``truncated``
stats      --                                            ``cache``, ``active_sessions``,
                                                         ``connections``, ``frames``,
                                                         ``backends``
shutdown   --                                            ``draining``
========== ============================================= ==============

Error codes: ``bad-frame`` (not JSON / not an object), ``bad-request``
(missing or invalid fields), ``bad-artifact`` (corrupt, truncated or
version-incompatible compiled artifact), ``unknown-op``,
``unknown-handle``, ``unknown-session``, ``frame-too-large``
(connection closes), ``truncated`` (strict report-cap policy),
``internal``.

The ``register_artifact`` op (wire name; the table row is wrapped) was
added in protocol version 2; version-1 servers answer it with
``unknown-op``, which clients can treat as "upload source instead".
"""

from __future__ import annotations

import base64
import json

from repro.errors import ReproError
from repro.sim.reports import Report

#: protocol version advertised by ``ping`` (2: ``register_artifact``)
PROTOCOL_VERSION = 2

#: default cap on one frame's encoded size (request and response)
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

#: default bound on queued-but-unprocessed frames per connection; the
#: server stops reading the socket past it (TCP backpressure)
DEFAULT_MAX_INFLIGHT = 8


class ProtocolError(ReproError):
    """A frame violated the wire protocol."""

    def __init__(self, message: str, code: str = "bad-frame") -> None:
        self.code = code
        super().__init__(message)


def encode_frame(frame: dict) -> bytes:
    """Serialize one frame to its newline-terminated wire form."""
    return json.dumps(frame, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` (code ``bad-frame``) for anything that
    is not a JSON object — the caller decides whether the connection
    survives.
    """
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def encode_data(data: bytes) -> str:
    """Binary stream data -> base64 text for a JSON frame."""
    return base64.b64encode(data).decode("ascii")


def decode_data(text: str) -> bytes:
    """Base64 text from a frame -> binary stream data."""
    if not isinstance(text, str):
        raise ProtocolError(
            f"data must be a base64 string, got {type(text).__name__}",
            code="bad-request",
        )
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError(
            f"data is not valid base64: {exc}", code="bad-request"
        ) from exc


def encode_reports(reports: list[Report]) -> list[list]:
    """Reports -> compact ``[cycle, state_id, code]`` wire triples."""
    return [[r.cycle, r.state_id, r.code] for r in reports]


def decode_reports(triples: list[list]) -> list[Report]:
    """Wire triples -> :class:`Report` records."""
    return [
        Report(cycle=int(c), state_id=int(s), code=code)
        for c, s, code in triples
    ]


def error_frame(request_id, message: str, code: str) -> dict:
    """Build the error response for one failed request."""
    return {"id": request_id, "ok": False, "error": message, "code": code}


def ok_frame(request_id, **payload) -> dict:
    """Build the success response for one request."""
    return {"id": request_id, "ok": True, **payload}
