"""Resumable named streams: the multi-tenant session API.

A :class:`Session` binds one input stream to one compiled (possibly
sharded) ruleset and carries the stream's active-state snapshot between
:meth:`~Session.feed` calls, so many concurrent streams — different
users, different connections — can interleave arbitrarily against the
same cached engines without interfering.  START_OF_DATA semantics and
report cycles are per-*session*: each session starts its own stream at
position 0 regardless of how its chunks interleave with other
sessions'.
"""

from __future__ import annotations

from repro.api.config import ScanConfig, resolve_legacy_config
from repro.errors import SimulationError
from repro.service.merge import accumulate_stats
from repro.service.sharding import Dispatcher, iter_chunks
from repro.sim.backends.base import handle_truncation
from repro.sim.engine import SimulationResult
from repro.sim.reports import Report
from repro.sim.trace import TraceStats
from repro.telemetry.metrics import default_registry

_REGISTRY = default_registry()
_SESSION_FEEDS = _REGISTRY.counter(
    "repro_session_feeds_total",
    "Chunks fed into streaming sessions",
)
_SESSION_FEED_BYTES = _REGISTRY.counter(
    "repro_session_feed_bytes_total",
    "Input bytes consumed by streaming-session feeds",
)


class Session:
    """One resumable stream scanned against one dispatcher's shards.

    Created by :meth:`repro.service.service.MatchingService.open_session`;
    feed chunks as they arrive and read the accumulated result at any
    point.  Sessions are cheap: per shard they hold only the active
    state indices and the stream position.

    The session consumes two fields of its
    :class:`~repro.api.config.ScanConfig`: ``max_reports`` bounds the
    reports *recorded* over the whole stream (reports keep being
    counted past it), and ``on_truncation`` decides what the first
    chunk that loses a report to the cap does — mark the session
    ``truncated`` and raise a :class:`ReportTruncationWarning`
    (``"warn"``, the default), a :class:`~repro.errors.SimulationError`
    (``"error"``), or nothing (``"ignore"``).  ``max_reports`` /
    ``on_truncation`` loose keywords are deprecated shims.

    Sessions are context managers: leaving the ``with`` block closes
    the stream (the accumulated result stays readable via
    :attr:`reports` / :attr:`stats`).
    """

    def __init__(
        self,
        name: str,
        dispatcher: Dispatcher,
        config: ScanConfig | None = None,
        *,
        max_reports: int | None = None,
        on_truncation: str | None = None,
        ledger_probe=None,
    ) -> None:
        config = resolve_legacy_config(
            "Session",
            config,
            {"max_reports": max_reports, "on_truncation": on_truncation},
        )
        self.config = config if config is not None else ScanConfig()
        self.name = name
        self.dispatcher = dispatcher
        self.truncated = False
        self.closed = False
        #: the ruleset version this stream opened against (set by
        #: MatchingService when the ruleset is version-tracked); the
        #: session keeps these engines through any later hot-swap
        self.ruleset_version: int | None = None
        self._states = dispatcher.initial_states()
        self._reports: list[Report] = []
        self._stats = TraceStats(
            num_states=sum(len(s.global_ids) for s in dispatcher.shards)
        )
        # resumable reference accounting (:class:`~repro.telemetry.
        # ledger.LedgerProbe`): fed the same chunks as the shards, so a
        # running hardware ledger is available at any chunk boundary
        self._ledger_probe = ledger_probe

    @property
    def max_reports(self) -> int:
        return self.config.max_reports

    @property
    def on_truncation(self) -> str:
        return self.config.on_truncation

    @property
    def position(self) -> int:
        """Bytes of this stream consumed so far."""
        return self._states[0].position if self._states else 0

    @property
    def reports(self) -> list[Report]:
        """All reports emitted so far (absolute stream offsets)."""
        return list(self._reports)

    @property
    def stats(self) -> TraceStats:
        return self._stats

    @property
    def report_budget(self) -> int:
        """Reports this stream may still record before hitting its cap."""
        return max(0, self.max_reports - len(self._reports))

    @property
    def shard_states(self):
        """The live per-shard engine states (advanced in place by feeds)."""
        return self._states

    def feed(self, chunk: bytes) -> list[Report]:
        """Consume one chunk; return only the reports it produced."""
        if self.closed:
            raise SimulationError(f"session {self.name!r} is closed")
        result = self.dispatcher.run_chunk(
            chunk, self._states, max_reports=self.report_budget
        )
        return self.absorb(chunk, result)

    def absorb(self, chunk: bytes, result: SimulationResult) -> list[Report]:
        """Record one already-dispatched chunk's result into the session.

        The bookkeeping half of :meth:`feed`, split out so a batch
        scheduler can dispatch many sessions' chunks in one
        :meth:`~repro.service.sharding.Dispatcher.run_chunk_batch` call
        (against :attr:`shard_states`, capped at :attr:`report_budget`)
        and still account each result exactly as a solo feed would.

        Raises the same closed-session error :meth:`feed` does: the
        batched path must never advance a closed stream's accounting
        (batch dispatchers filter closed sessions out *before*
        dispatch, so their shard states are never touched either).
        """
        if self.closed:
            raise SimulationError(f"session {self.name!r} is closed")
        _SESSION_FEEDS.labels().inc()
        _SESSION_FEED_BYTES.labels().inc(len(chunk))
        if self._ledger_probe is not None:
            self._ledger_probe.feed(chunk)
        self._reports.extend(result.reports)
        accumulate_stats(self._stats, result.stats)
        if result.truncated and not self.truncated:
            self.truncated = True
            handle_truncation(
                self.on_truncation,
                f"session {self.name!r} hit its kept-reports cap "
                f"({self.max_reports}); further reports are counted "
                f"but not recorded",
                stacklevel=3,
            )
        return result.reports

    def feed_all(self, data: bytes, chunk_size: int) -> list[Report]:
        """Feed ``data`` in ``chunk_size`` pieces; return its new reports."""
        out: list[Report] = []
        for chunk in iter_chunks(data, chunk_size):
            out.extend(self.feed(chunk))
        return out

    def ledger(self):
        """The running :class:`~repro.telemetry.ledger.HardwareLedger`
        over everything fed so far, or None when the session was opened
        without ``ScanConfig(hardware_ledger=True)``."""
        if self._ledger_probe is None:
            return None
        return self._ledger_probe.ledger()

    def snapshot(self):
        """Copies of the per-shard engine states (a resumable checkpoint)."""
        return [state.copy() for state in self._states]

    def restore(self, states) -> None:
        """Adopt a checkpointed snapshot: the failover handoff.

        ``states`` is a per-shard list of
        :class:`~repro.sim.backends.base.EngineState` objects or their
        ``to_dict()`` wire form (what a checkpointing server ``feed``
        returns).  Only a *fresh* session may restore — the stream then
        resumes from the snapshot's position, so reports produced by
        subsequent feeds carry the same absolute offsets the original
        stream would have.  Shard count must match (same ruleset, same
        sharding) and every shard must sit at the same position.
        """
        from repro.sim.backends.base import EngineState

        if self.closed:
            raise SimulationError(f"session {self.name!r} is closed")
        if self.position != 0 or self._reports:
            raise SimulationError(
                f"session {self.name!r} has already consumed data; "
                f"only a fresh session can restore a snapshot"
            )
        decoded = [
            state if isinstance(state, EngineState) else EngineState.from_dict(state)
            for state in states
        ]
        if len(decoded) != len(self._states):
            raise SimulationError(
                f"snapshot has {len(decoded)} shard states; this session "
                f"runs {len(self._states)} shards (ruleset or sharding "
                f"mismatch)"
            )
        positions = {state.position for state in decoded}
        if len(positions) > 1:
            raise SimulationError(
                f"snapshot shard positions disagree: {sorted(positions)}"
            )
        self._states = decoded

    def close(self) -> SimulationResult:
        """Finish the stream and return the accumulated result."""
        self.closed = True
        return SimulationResult(
            reports=self._reports, stats=self._stats, truncated=self.truncated
        )

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.closed:
            self.close()
