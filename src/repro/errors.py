"""Exception hierarchy for the CAMA reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AutomatonError(ReproError):
    """A homogeneous NFA is structurally invalid (bad state ids, dangling
    transitions, empty symbol classes, and similar)."""


class RegexSyntaxError(ReproError):
    """The regex parser rejected a pattern."""

    def __init__(self, pattern: str, position: int, message: str) -> None:
        self.pattern = pattern
        self.position = position
        super().__init__(f"{message} at position {position} in {pattern!r}")


class ParseError(ReproError):
    """An ANML or MNRL document could not be parsed."""


class EncodingError(ReproError):
    """An encoding cannot represent the requested alphabet or symbol class."""


class MappingError(ReproError):
    """The mapper could not place an automaton onto the CAMA fabric."""


class ConfigError(ReproError):
    """A configuration value is invalid (bad chunk size, unknown
    truncation policy, unsupported stride, and similar).  Raised by the
    typed config objects in :mod:`repro.api` — the single validation
    surface every entry point (service, dispatcher, session, pipeline,
    server protocol, CLI) goes through."""


class SimulationError(ReproError):
    """The cycle simulator was driven with invalid inputs."""


class ArtifactError(ReproError):
    """A compiled-ruleset artifact is unreadable, corrupt, or carries an
    incompatible format version.  Callers that hold the source ruleset
    (e.g. the :class:`~repro.service.ruleset.RulesetManager` disk cache)
    treat this as a cache miss and recompile."""


class ModelError(ReproError):
    """An architecture model was queried outside its calibrated domain."""
