"""Functional execution of a compiled CAMA program (§VI.A-B).

The machine executes the *hardware* path: encode the input symbol,
search the CAM arrays (with CAMA-E's selective precharge masks), OR
multi-entry states, apply row inverters, and route the active vector
through the local/global switches to form the next enable vector.  Its
observable behaviour must equal the reference simulator's on every
input — the integration tests assert lock-step equality, which is the
end-to-end proof that encoding + compression + negation + placement
preserve the automaton's language.

CAMA-E (non-pipelined) and CAMA-T (pipelined) produce identical
reports; they differ in timing and energy, which the architecture
models account for.  The machine records CAMA-specific activity (CAM
units enabled, entries precharged, switch rows active, global events)
that feeds the energy model directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cam import CamArray
from repro.core.compiler import CamaProgram
from repro.errors import SimulationError
from repro.sim.backends.base import (
    DEFAULT_MAX_KEPT_REPORTS,
    EngineState,
    append_reports,
    cached_successor_csr,
    gather_successors,
    reporting_mask,
    start_ids,
)
from repro.sim.reports import Report


@dataclass
class CamaActivity:
    """Per-run activity counters of the CAMA fabric."""

    num_cycles: int = 0
    #: sum over cycles of CAM units with >= 1 enabled entry
    cam_units_enabled_sum: int = 0
    #: sum over cycles of precharged CAM entries (CAMA-E energy driver)
    entries_enabled_sum: int = 0
    #: sum over cycles of local switches with >= 1 active row
    switches_active_sum: int = 0
    #: sum over cycles of active switch rows
    switch_rows_active_sum: int = 0
    #: sum over cycles of global-switch accesses (source units)
    global_accesses_sum: int = 0

    def avg_entries_enabled(self) -> float:
        return self.entries_enabled_sum / self.num_cycles if self.num_cycles else 0.0


@dataclass
class CamaRunResult:
    reports: list[Report]
    activity: CamaActivity

    @property
    def num_reports(self) -> int:
        return len(self.reports)


@dataclass
class _CamUnit:
    """One CAM access unit: a sub-array (rcb16) or a whole-tile CAM."""

    array: CamArray
    #: state ids owning each column (parallel to array columns)
    state_of_column: list[int] = field(default_factory=list)


class CamaMachine:
    """Executes a CamaProgram input-symbol by input-symbol."""

    def __init__(self, program: CamaProgram, variant: str = "E") -> None:
        if variant not in ("E", "T"):
            raise SimulationError(f"unknown CAMA variant: {variant!r}")
        self.program = program
        self.variant = variant
        automaton = program.automaton
        n = len(automaton)
        placement = program.placement(unit="cam")
        self._partition_of = placement.partition_of
        self._num_units = placement.num_partitions

        # Build one CamArray per CAM unit; rows = code length (<= 32).
        rows = program.code_length
        self._units = [
            _CamUnit(array=CamArray(rows=rows, columns=256))
            for _ in range(self._num_units)
        ]
        self._column_of_state: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for state in range(n):
            unit = self._units[self._partition_of[state]]
            encoding = program.state_encodings[state]
            for pattern in encoding.patterns:
                column = unit.array.program(
                    pattern, state, invert=encoding.negated
                )
                unit.state_of_column.append(state)
                self._column_of_state[state].append(
                    (self._partition_of[state], column)
                )

        # Owner lookup arrays per unit for vectorized match-to-state OR.
        self._unit_owner = [
            unit.array.owners() for unit in self._units
        ]

        # Transition structures (the switch network's routing function),
        # shared with the execution backends via the fingerprint-keyed
        # CSR cache — a machine compiled after an engine (or vice versa)
        # reuses the same arrays.
        self._succ_offsets, self._succ_targets = cached_successor_csr(automaton)
        self._start_all, self._start_sod = start_ids(automaton)
        self._reporting = reporting_mask(automaton)
        self._report_codes = [s.report_code for s in automaton.states]
        self._switch_of = program.mapping.state_switch
        self._num_switches = len(program.mapping.switches)
        self._cross_source = np.zeros(n, dtype=bool)
        for u, _v in program.mapping.cross_edges:
            self._cross_source[u] = True
        self._n = n

    # -- execution ----------------------------------------------------------
    def initial_state(self) -> EngineState:
        """A fresh :class:`EngineState` at stream position 0."""
        return EngineState()

    def run(
        self, data: bytes, *, max_reports: int = DEFAULT_MAX_KEPT_REPORTS
    ) -> CamaRunResult:
        """Execute the program over ``data``."""
        return self.run_chunk(data, self.initial_state(), max_reports=max_reports)

    def run_chunk(
        self,
        data: bytes,
        state: EngineState,
        *,
        max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
    ) -> CamaRunResult:
        """Execute one chunk of a stream, advancing ``state`` in place.

        Mirrors :meth:`repro.sim.engine.Engine.run_chunk`: START_OF_DATA
        states enable only at stream position 0 and report cycles are
        absolute stream offsets, so chunked execution stays in lock-step
        with the reference simulator's.
        """
        activity = CamaActivity()
        reports: list[Report] = []
        base = state.position
        active = state.active
        encoder = self.program.encoder
        for offset, symbol in enumerate(data):
            cycle = base + offset
            code, valid = encoder.encode(symbol)
            enabled = self._enabled_states(active, first_cycle=cycle == 0)

            # Per-unit search with selective precharge (the enable mask
            # performs the AND with the transition results).
            enable_masks = [
                np.zeros(unit.array.columns, dtype=bool) for unit in self._units
            ]
            for enabled_state in enabled:
                for unit_index, column in self._column_of_state[enabled_state]:
                    enable_masks[unit_index][column] = True
            active_list: list[int] = []
            entries_enabled = 0
            units_enabled = 0
            for unit_index, unit in enumerate(self._units):
                mask = enable_masks[unit_index]
                count = unit.array.enabled_column_count(mask)
                if count == 0:
                    continue
                units_enabled += 1
                entries_enabled += count
                match = unit.array.search(code, valid, enable=mask)
                if match.any():
                    owners = self._unit_owner[unit_index]
                    hit = np.unique(owners[match[: len(owners)]])
                    active_list.extend(int(s) for s in hit)
            # Negated states match when their (single) inverted entry
            # does NOT hit; the inverter output is still gated by the
            # enable mask, handled inside CamArray.search via XOR. A
            # negated enabled state whose entry missed must be added:
            # search() already returns True for those columns, so
            # nothing extra is needed here.
            active = np.array(sorted(active_list), dtype=np.int64)

            activity.num_cycles += 1
            activity.cam_units_enabled_sum += units_enabled
            activity.entries_enabled_sum += entries_enabled
            if active.size:
                switches = self._switch_of[active]
                activity.switches_active_sum += int(np.unique(switches).size)
                activity.switch_rows_active_sum += int(active.size)
                crossing = active[self._cross_source[active]]
                if crossing.size:
                    activity.global_accesses_sum += int(
                        np.unique(self._switch_of[crossing]).size
                    )

            firing = active[self._reporting[active]]
            if firing.size:
                append_reports(
                    reports, firing, cycle, self._report_codes, max_reports
                )
        state.active = active
        state.position = base + len(data)
        return CamaRunResult(reports=reports, activity=activity)

    def _enabled_states(self, active: np.ndarray, first_cycle: bool) -> np.ndarray:
        succ = gather_successors(self._succ_offsets, self._succ_targets, active)
        if first_cycle:
            return np.unique(np.concatenate((self._start_all, self._start_sod, succ)))
        return np.unique(np.concatenate((self._start_all, succ)))
