"""The 128x128 reconfigurable reduced crossbar (RRCB, §IV.B).

One physical 128x128 8T SRAM array realizes the tile's local switch.
It operates in one of two modes:

* **RCB mode** — a remapping of a 256x256 full crossbar restricted to a
  diagonal band: with BFS placement, a transition (u -> v) is routable
  iff |pos(u) - pos(v)| <= k_dia (43 for CAMA; eAP's 96x96 RCB uses 21).
  The diagonal groups are folded two-per-column into the physical
  array, which is why the band and the 128^2 cell budget both bind.
* **FCB mode** — reconfigured into a full 128x128 crossbar: any
  transition among a 128-state *domain* is routable, but the domain is
  half a tile.

This module is the structural model: it validates routability, stores
the programmed transitions, and routes active-state vectors (used by
the functional CAMA machine).  Energy/area live in :mod:`repro.arch`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError

SWITCH_SIZE = 128
#: diagonal band half-width of CAMA's RCB remapping (paper Fig. 4b)
CAMA_KDIA = 43
#: eAP's 96x96 RCB band (paper §III.C)
EAP_KDIA = 21
#: logical positions served by one switch in RCB mode (256x256 remapped)
RCB_POSITIONS = 256
#: logical positions served by one switch in FCB mode (one domain)
FCB_POSITIONS = 128
#: STEs a local switch can send to / receive from the global switch
GLOBAL_PORTS = 16


class LocalSwitch:
    """One 128x128 RRCB programmed with intra-switch transitions."""

    def __init__(self, mode: str, kdia: int = CAMA_KDIA) -> None:
        if mode not in ("rcb", "fcb"):
            raise MappingError(f"unknown switch mode: {mode!r}")
        self.mode = mode
        self.kdia = kdia
        self.positions = RCB_POSITIONS if mode == "rcb" else FCB_POSITIONS
        self._matrix = np.zeros((self.positions, self.positions), dtype=bool)
        self._cells = SWITCH_SIZE * SWITCH_SIZE

    def routable(self, src: int, dst: int) -> bool:
        """Whether a (src -> dst) position pair is physically routable."""
        if not (0 <= src < self.positions and 0 <= dst < self.positions):
            return False
        if self.mode == "fcb":
            return True
        return abs(src - dst) <= self.kdia

    def program(self, src: int, dst: int) -> None:
        if not self.routable(src, dst):
            raise MappingError(
                f"transition ({src} -> {dst}) not routable in {self.mode} mode "
                f"(kdia={self.kdia})"
            )
        self._matrix[src, dst] = True
        if int(self._matrix.sum()) > self._cells:
            raise MappingError("local switch cell budget exceeded")

    def route(self, active: np.ndarray) -> np.ndarray:
        """Positions enabled next cycle given active positions (bool[positions])."""
        if active.shape != (self.positions,):
            raise MappingError(
                f"active vector must have {self.positions} positions"
            )
        if not active.any():
            return np.zeros(self.positions, dtype=bool)
        return self._matrix[active].any(axis=0)

    @property
    def num_transitions(self) -> int:
        return int(self._matrix.sum())


def rcb_band_feasible(
    edges: list[tuple[int, int]], positions: dict[int, int], kdia: int = CAMA_KDIA
) -> bool:
    """Whether every edge fits the RCB diagonal band under ``positions``."""
    return all(abs(positions[u] - positions[v]) <= kdia for u, v in edges)
