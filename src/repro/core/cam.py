"""Functional model of the 16x256 8T CAM state-matching array (§IV.A).

Geometry: ``rows`` search lines (code bits, 16 per physical sub-array)
by ``columns`` match lines (CAM entries).  Each column stores one
entry: a code pattern, an optional inversion flag (negation
optimization) and the owning state.  Searching broadcasts the encoded
input on the search lines; a column matches when every stored '1' sees
an input '1' (:func:`repro.core.encoding.base.cam_match`).

Two architectural behaviours are modeled:

* *selective precharge* (CAMA-E): only columns whose states are enabled
  by the previous cycle's transitions are precharged — the enable mask
  both saves energy and performs the AND with the transition results;
* *row inverters*: columns flagged ``invert`` report the complement of
  their raw match, realizing negated symbol classes; the encoder's
  ``valid`` flag gates them so out-of-alphabet inputs cannot
  spuriously activate negated states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError

CAM_ROWS = 16
CAM_COLUMNS = 256


@dataclass(frozen=True)
class CamEntry:
    """One programmed CAM column."""

    column: int
    pattern: int
    invert: bool
    state_id: int


class CamArray:
    """A rows x columns ternary-capable CAM built from 8T SRAM cells."""

    def __init__(self, rows: int = CAM_ROWS, columns: int = CAM_COLUMNS) -> None:
        if rows < 1 or columns < 1:
            raise MappingError(f"bad CAM geometry: {rows}x{columns}")
        self.rows = rows
        self.columns = columns
        self._patterns = np.zeros(columns, dtype=np.uint64)
        self._valid = np.zeros(columns, dtype=bool)
        self._invert = np.zeros(columns, dtype=bool)
        self._owner = np.full(columns, -1, dtype=np.int64)
        self._next_free = 0

    # -- programming ------------------------------------------------------
    def program(self, pattern: int, state_id: int, *, invert: bool = False) -> int:
        """Program ``pattern`` into the next free column; returns it."""
        if self._next_free >= self.columns:
            raise MappingError("CAM array is full")
        if not 0 < pattern < (1 << self.rows):
            raise MappingError(
                f"pattern {pattern:#x} does not fit {self.rows} rows "
                f"(all-don't-care entries are forbidden)"
            )
        column = self._next_free
        self._patterns[column] = pattern
        self._valid[column] = True
        self._invert[column] = invert
        self._owner[column] = state_id
        self._next_free += 1
        return column

    @property
    def used_columns(self) -> int:
        return self._next_free

    @property
    def free_columns(self) -> int:
        return self.columns - self._next_free

    def entries(self) -> list[CamEntry]:
        return [
            CamEntry(
                column=i,
                pattern=int(self._patterns[i]),
                invert=bool(self._invert[i]),
                state_id=int(self._owner[i]),
            )
            for i in range(self._next_free)
        ]

    def owners(self) -> np.ndarray:
        """State id per programmed column."""
        return self._owner[: self._next_free].copy()

    # -- searching --------------------------------------------------------
    def search(
        self,
        input_code: int,
        input_valid: bool,
        enable: np.ndarray | None = None,
    ) -> np.ndarray:
        """Column match vector for one encoded input.

        Args:
            input_code: the encoded search-line pattern.
            input_valid: encoder valid flag; when False nothing matches.
            enable: optional per-column precharge mask (CAMA-E); disabled
                columns never match.
        """
        raw = np.zeros(self.columns, dtype=bool)
        if input_valid:
            live = self._valid
            raw[live] = (
                self._patterns[live] & np.uint64(~input_code & ((1 << self.rows) - 1))
            ) == 0
            # row inverters realize negated classes
            raw = raw ^ (self._invert & live)
        match = raw & self._valid
        if enable is not None:
            match = match & enable
        return match

    def enabled_column_count(self, enable: np.ndarray) -> int:
        """Number of precharged columns — CAMA-E's energy driver."""
        return int((enable & self._valid).sum())
