"""Greedy mapping of a homogeneous NFA onto the CAMA fabric (§IV, §VI).

The mapper mirrors the paper's flow:

1. split the automaton into connected components (transitions never
   cross CCs);
2. order each CC breadth-first from its start states, which places most
   transitions near the diagonal (the eAP observation);
3. classify each CC: if every transition fits the RCB band
   (|Δposition| <= k_dia = 43) it is RCB-eligible, otherwise it needs
   FCB-mode tiles; a code length > 16 forces 32-bit mode for the whole
   automaton (both CAM sub-arrays hold one 32-bit word);
4. cut oversized CCs into switch-sized chunks (chunk-crossing edges are
   routed through the global switch and must respect the 16-in/16-out
   port budget of each local switch);
5. first-fit-decreasing pack chunks into local switches, pair switches
   into tiles, and group tiles 8-per-array, each array sharing one
   256x256 global switch.

Capacities per local switch:

=========  ==========  ============  =================
mode       states      CAM entries   physical switch
=========  ==========  ============  =================
rcb        256         256           128x128 (RCB remap, band 43)
fcb        128         128           128x128 full crossbar (half tile)
=========  ==========  ============  =================

In 16-bit FCB mode only one CAM sub-array of the tile is powered and
its 256 entries are split between the tile's two 128-state domains; in
32-bit mode both sub-arrays hold one logical 32-row x 256-entry CAM,
split the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.automata.analysis import bfs_order, connected_components
from repro.automata.nfa import Automaton
from repro.core.encoding.base import Encoding
from repro.core.encoding.negation import StateEncoding
from repro.core.rrcb import CAMA_KDIA, FCB_POSITIONS, GLOBAL_PORTS, RCB_POSITIONS
from repro.errors import MappingError
from repro.sim.trace import PartitionAssignment

#: tiles per array; one array shares one 256x256 global switch
TILES_PER_ARRAY = 8
SWITCHES_PER_TILE = 2


@dataclass
class SwitchPlan:
    """One local switch (128x128 RRCB) with its placed states."""

    index: int
    mode: str  # "rcb" | "fcb"
    capacity_states: int
    capacity_entries: int
    states: list[int] = field(default_factory=list)
    entry_count: int = 0
    in_signals: int = 0
    out_signals: int = 0

    @property
    def used_states(self) -> int:
        return len(self.states)

    def fits(self, num_states: int, num_entries: int, inp: int, out: int) -> bool:
        return (
            self.used_states + num_states <= self.capacity_states
            and self.entry_count + num_entries <= self.capacity_entries
            and self.in_signals + inp <= GLOBAL_PORTS
            and self.out_signals + out <= GLOBAL_PORTS
        )


@dataclass
class TilePlan:
    """One tile: two stacked local switches + two 16x256 CAM sub-arrays."""

    index: int
    mode: str  # "rcb16" | "fcb16" | "mode32"
    switch_indices: list[int]

    @property
    def active_cam_subarrays(self) -> int:
        """Sub-arrays powered: 2 in rcb16 (one per switch), 1 in fcb16
        (the other is power-gated), 2 in mode32 (one logical CAM)."""
        return 1 if self.mode == "fcb16" else 2


@dataclass
class CamaMapping:
    """The full placement of one automaton onto CAMA."""

    automaton_name: str
    code_length: int
    switches: list[SwitchPlan]
    tiles: list[TilePlan]
    #: switch index per state
    state_switch: np.ndarray
    #: position of each state inside its switch
    state_position: np.ndarray
    #: CAM entries per state
    state_entries: np.ndarray
    #: transitions routed through the global switch
    cross_edges: list[tuple[int, int]]
    #: number of 256x256 global switches in use
    num_global_switches: int
    #: chunks whose boundary cut exceeded the 16-signal port budget
    oversubscribed_ports: int

    # -- Table V quantities ------------------------------------------------
    @property
    def num_rcb_switches(self) -> int:
        """Used RCB-mode local switches (tile-padding empties excluded)."""
        return sum(1 for s in self.switches if s.mode == "rcb" and s.states)

    @property
    def num_fcb_switches(self) -> int:
        """Used FCB-mode local switches (128-state domains)."""
        return sum(1 for s in self.switches if s.mode == "fcb" and s.states)

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def num_arrays(self) -> int:
        """Arrays provisioned (8 tiles each share one global switch)."""
        return -(-len(self.tiles) // TILES_PER_ARRAY)

    @property
    def num_banks(self) -> int:
        """Banks provisioned (16 arrays each, §VI.A's 65536-state unit)."""
        return -(-self.num_arrays // 16)

    @property
    def total_entries(self) -> int:
        return int(self.state_entries.sum())

    def tile_of_switch(self, switch_index: int) -> int:
        return switch_index // SWITCHES_PER_TILE

    def cam_units(self) -> tuple[dict[int, int], list[str]]:
        """(switch index -> CAM unit index, unit modes).

        A *CAM unit* is one state-matching access: in rcb16 mode each
        switch has its own 16x256 sub-array; in fcb16/mode32 the tile's
        two switches share one (16- or 32-row) CAM.
        """
        tile_mode = {t.index: t.mode for t in self.tiles}
        unit_of_switch: dict[int, int] = {}
        modes: list[str] = []
        seen_tiles: dict[int, int] = {}
        for switch in self.switches:
            tile = self.tile_of_switch(switch.index)
            mode = tile_mode[tile]
            if mode == "rcb16":
                unit_of_switch[switch.index] = len(modes)
                modes.append(mode)
            else:
                if tile not in seen_tiles:
                    seen_tiles[tile] = len(modes)
                    modes.append(mode)
                unit_of_switch[switch.index] = seen_tiles[tile]
        return unit_of_switch, modes

    def placement(self, unit: str = "cam") -> PartitionAssignment:
        """Partition assignment for the simulator's activity trace.

        ``unit="cam"`` partitions by CAM access unit (see
        :meth:`cam_units`); ``unit="switch"`` partitions by local switch.
        """
        if unit == "switch":
            return PartitionAssignment(
                partition_of=self.state_switch.copy(),
                num_partitions=len(self.switches),
                weights=self.state_entries.astype(np.float64),
            )
        if unit != "cam":
            raise MappingError(f"unknown placement unit: {unit!r}")
        unit_of_switch, modes = self.cam_units()
        partition = np.empty_like(self.state_switch)
        for state, switch_index in enumerate(self.state_switch):
            partition[state] = unit_of_switch[int(switch_index)]
        return PartitionAssignment(
            partition_of=partition,
            num_partitions=len(modes),
            weights=self.state_entries.astype(np.float64),
        )


def _chunk_component(
    order: list[int],
    automaton: Automaton,
    entries_of: np.ndarray,
    max_states: int,
    max_entries: int,
) -> tuple[list[list[int]], int]:
    """Cut a BFS-ordered component into switch-sized chunks.

    Returns (chunks, oversubscribed): boundary cuts are moved earlier
    until the crossing-signal count fits the 16-port budget; if even a
    single-state reduction loop cannot satisfy it, the cut is accepted
    and counted as oversubscribed (diagnosed, not fatal, mirroring the
    paper's dense benchmarks that stress global routing).
    """
    chunks: list[list[int]] = []
    oversubscribed = 0
    start = 0
    n = len(order)
    while start < n:
        # widest prefix satisfying the state/entry budgets
        end = start
        entry_sum = 0
        while end < n and (end - start) < max_states:
            cost = int(entries_of[order[end]])
            if entry_sum + cost > max_entries:
                break
            entry_sum += cost
            end += 1
        if end == start:
            raise MappingError(
                f"state {order[start]} needs {int(entries_of[order[start]])} "
                f"CAM entries, exceeding the switch budget of {max_entries}"
            )
        if end < n:
            # shrink until the boundary signal counts fit the port budget
            best = end
            while end > start + 1:
                chunk_set = set(order[start:end])
                out = sum(
                    1
                    for u in chunk_set
                    if any(v not in chunk_set for v in automaton.successors(u))
                )
                inp = sum(
                    1
                    for v in chunk_set
                    if any(u not in chunk_set for u in automaton.predecessors(v))
                )
                if out <= GLOBAL_PORTS and inp <= GLOBAL_PORTS:
                    break
                end -= 1
            else:
                end = best
                oversubscribed += 1
        chunks.append(order[start:end])
        start = end
    return chunks, oversubscribed


def map_automaton(
    automaton: Automaton,
    encoding: Encoding,
    state_encodings: list[StateEncoding],
    *,
    kdia: int = CAMA_KDIA,
) -> CamaMapping:
    """Place ``automaton`` onto the CAMA fabric (see module docstring)."""
    n = len(automaton)
    if len(state_encodings) != n:
        raise MappingError("state_encodings length must match automaton size")
    entries_of = np.array([se.num_entries for se in state_encodings], dtype=np.int64)
    mode32 = encoding.code_length > 16
    if encoding.code_length > 32:
        raise MappingError(
            f"code length {encoding.code_length} exceeds the 32-bit mode"
        )

    components = connected_components(automaton)
    rcb_chunks: list[list[int]] = []
    fcb_chunks: list[list[int]] = []
    oversubscribed = 0
    for component in components:
        order = bfs_order(automaton, component)
        position = {s: i for i, s in enumerate(order)}
        band_ok = all(
            abs(position[u] - position[v]) <= kdia
            for u, v in automaton.transitions()
            if u in position and v in position
        )
        if mode32 or not band_ok:
            chunks, over = _chunk_component(
                order, automaton, entries_of, FCB_POSITIONS, FCB_POSITIONS
            )
            fcb_chunks.extend(chunks)
        else:
            chunks, over = _chunk_component(
                order, automaton, entries_of, RCB_POSITIONS, RCB_POSITIONS
            )
            rcb_chunks.extend(chunks)
        oversubscribed += over

    switches: list[SwitchPlan] = []
    state_switch = np.full(n, -1, dtype=np.int64)
    state_position = np.full(n, -1, dtype=np.int64)

    def chunk_signals(chunk: list[int]) -> tuple[int, int]:
        chunk_set = set(chunk)
        out = sum(
            1
            for u in chunk_set
            if any(v not in chunk_set for v in automaton.successors(u))
        )
        inp = sum(
            1
            for v in chunk_set
            if any(u not in chunk_set for u in automaton.predecessors(v))
        )
        return inp, out

    def pack(chunks: list[list[int]], mode: str) -> list[SwitchPlan]:
        capacity_states = RCB_POSITIONS if mode == "rcb" else FCB_POSITIONS
        capacity_entries = RCB_POSITIONS if mode == "rcb" else FCB_POSITIONS
        plans: list[SwitchPlan] = []
        # first-fit decreasing by state count
        for chunk in sorted(chunks, key=len, reverse=True):
            chunk_entries = int(entries_of[chunk].sum())
            inp, out = chunk_signals(chunk)
            target = None
            for plan in plans:
                if plan.fits(len(chunk), chunk_entries, inp, out):
                    target = plan
                    break
            if target is None:
                target = SwitchPlan(
                    index=-1,  # assigned after both modes are packed
                    mode=mode,
                    capacity_states=capacity_states,
                    capacity_entries=capacity_entries,
                )
                plans.append(target)
            offset = target.used_states
            for i, state in enumerate(chunk):
                state_switch[state] = id(target)  # temporary: plan identity
                state_position[state] = offset + i
            target.states.extend(chunk)
            target.entry_count += chunk_entries
            target.in_signals += inp
            target.out_signals += out
        return plans

    rcb_plans = pack(rcb_chunks, "rcb")
    fcb_plans = pack(fcb_chunks, "fcb")

    # Assign dense switch indices: rcb switches first, then fcb, so that
    # tiles (consecutive pairs) are mode-homogeneous.
    plan_index: dict[int, int] = {}
    ordered = rcb_plans + fcb_plans
    if len(rcb_plans) % 2:
        # a tile cannot mix rcb and fcb switches: pad with an empty switch
        pad = SwitchPlan(
            index=-1,
            mode="rcb",
            capacity_states=RCB_POSITIONS,
            capacity_entries=RCB_POSITIONS,
        )
        ordered = rcb_plans + [pad] + fcb_plans
    for dense, plan in enumerate(ordered):
        plan.index = dense
        plan_index[id(plan)] = dense
    for state in range(n):
        if state_switch[state] >= 0:
            state_switch[state] = plan_index[int(state_switch[state])]

    tiles: list[TilePlan] = []
    for tile_index in range(0, len(ordered), SWITCHES_PER_TILE):
        pair = ordered[tile_index : tile_index + SWITCHES_PER_TILE]
        if pair[0].mode == "rcb":
            mode = "rcb16"
        else:
            mode = "mode32" if mode32 else "fcb16"
        tiles.append(
            TilePlan(
                index=tile_index // SWITCHES_PER_TILE,
                mode=mode,
                switch_indices=[p.index for p in pair],
            )
        )

    cross_edges = [
        (u, v)
        for u, v in automaton.transitions()
        if state_switch[u] != state_switch[v]
    ]
    arrays_used = {
        int(state_switch[u]) // (SWITCHES_PER_TILE * TILES_PER_ARRAY)
        for u, v in cross_edges
    } | {
        int(state_switch[v]) // (SWITCHES_PER_TILE * TILES_PER_ARRAY)
        for u, v in cross_edges
    }

    return CamaMapping(
        automaton_name=automaton.name,
        code_length=encoding.code_length,
        switches=ordered,
        tiles=tiles,
        state_switch=state_switch,
        state_position=state_position,
        state_entries=entries_of,
        cross_edges=cross_edges,
        num_global_switches=len(arrays_used),
        oversubscribed_ports=oversubscribed,
    )
