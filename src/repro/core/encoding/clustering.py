"""Frequency-first symbol clustering (paper §V.B).

After the encoding shape (ls, lp, zeros) is selected, symbols must be
assigned to clusters (= prefixes).  Suffix compression can only merge
symbols of the *same* cluster, so the goal is to co-locate symbols that
tend to appear in the same symbol classes.

The paper's algorithm, implemented here: compute each symbol's
frequency across the automaton's symbol classes; seed each cluster with
the most frequent unassigned symbol; then repeatedly add the unassigned
symbol with the highest estimated probability of co-occurring with the
cluster's current members (we use the co-occurrence count
P(X, C) = sum over c in C of #classes containing both X and c),
until the cluster is full; repeat until all symbols are assigned.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

from repro.automata.symbols import SymbolClass
from repro.errors import EncodingError


def cooccurrence_matrix(symbol_classes: Iterable[SymbolClass]) -> np.ndarray:
    """256x256 matrix counting classes containing each symbol pair.

    The diagonal holds plain symbol frequencies.  Duplicate classes are
    weighted by multiplicity (a class used by many states makes its
    symbols co-occur more often).
    """
    counts = Counter(symbol_classes)
    matrix = np.zeros((256, 256), dtype=np.int64)
    for symbol_class, count in counts.items():
        index = np.fromiter(symbol_class, dtype=np.int64)
        matrix[np.ix_(index, index)] += count
    return matrix


def cluster_symbols(
    symbol_classes: Sequence[SymbolClass],
    alphabet: SymbolClass,
    cluster_capacity: int,
    max_clusters: int,
) -> list[list[int]]:
    """Greedy frequency-first clustering of ``alphabet``.

    Returns clusters (lists of symbols, slot order = insertion order).
    Raises EncodingError when the capacity cannot hold the alphabet.
    """
    if cluster_capacity < 1:
        raise EncodingError("cluster capacity must be positive")
    symbols = list(alphabet)
    if len(symbols) > cluster_capacity * max_clusters:
        raise EncodingError(
            f"alphabet of {len(symbols)} symbols does not fit "
            f"{max_clusters} clusters of {cluster_capacity}"
        )
    matrix = cooccurrence_matrix(symbol_classes)
    frequency = matrix.diagonal().copy()
    unassigned = set(symbols)
    clusters: list[list[int]] = []
    while unassigned:
        # Seed with the most frequent unassigned symbol (stable tie-break
        # on symbol value for determinism).
        seed = max(unassigned, key=lambda s: (frequency[s], -s))
        cluster = [seed]
        unassigned.remove(seed)
        while len(cluster) < cluster_capacity and unassigned:
            members = np.fromiter(cluster, dtype=np.int64)
            # Sorted for determinism: set iteration order is unstable and
            # argmax ties must resolve the same way on every run.
            candidates = np.fromiter(sorted(unassigned), dtype=np.int64)
            affinity = matrix[np.ix_(candidates, members)].sum(axis=1)
            if affinity.max() > 0:
                best = int(candidates[int(affinity.argmax())])
            else:
                # Nothing co-occurs with this cluster; fill with the most
                # frequent remaining symbol (the paper fills all clusters).
                best = max(unassigned, key=lambda s: (frequency[s], -s))
            cluster.append(best)
            unassigned.remove(best)
        clusters.append(cluster)
        if len(clusters) > max_clusters:
            raise EncodingError("clustering exceeded the cluster budget")
    return clusters


def identity_clusters(
    alphabet: SymbolClass, cluster_capacity: int
) -> list[list[int]]:
    """Clustering baseline used by Table II's "fixed 32-bit, no
    clustering optimization" column: symbols packed in numeric order."""
    symbols = list(alphabet)
    return [
        symbols[i : i + cluster_capacity]
        for i in range(0, len(symbols), cluster_capacity)
    ]
