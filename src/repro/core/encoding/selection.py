"""Encoding-scheme selection (paper §V.B).

Given an automaton's symbol classes, pick the scheme and code length
that balance CAM entry count against code length:

1. alphabet fits a CAM word (A <= 16)  ->  One-Zero, L = A
   (every class compresses to one entry);
2. every class is a singleton after negation optimization (S = 1)
   ->  Multi-Zeros with Eq. (1): no compression needed, shortest code;
3. otherwise compare Two-Zeros-Prefix via the Eq. (2) sweep against
   One-Zero-Prefix at its minimal length (~2 sqrt(A)); pick the shorter,
   preferring Two-Zeros on ties.  When the mean class size exceeds
   sqrt(A) the Eq. (2) sweep is empty and One-Zero-Prefix is forced
   (RandomForest is the paper's example: S ~ 52, L = 32).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.automata.nfa import Automaton
from repro.automata.symbols import SymbolClass
from repro.core.encoding.base import Encoding
from repro.core.encoding.clustering import cluster_symbols, identity_clusters
from repro.core.encoding.multi_zeros import MultiZerosEncoding, multi_zeros_length
from repro.core.encoding.negation import effective_class_size
from repro.core.encoding.one_zero import OneZeroEncoding
from repro.core.encoding.prefix import (
    build_prefix_encoding,
    one_zero_prefix_params,
    two_zeros_prefix_params,
)
from repro.errors import EncodingError

#: a CAM word has 16 rows; alphabets at most this big use plain One-Zero
ONE_ZERO_ALPHABET_LIMIT = 16


@dataclass(frozen=True)
class EncodingChoice:
    """The outcome of encoding selection for one automaton."""

    encoding: Encoding
    scheme: str
    code_length: int
    alphabet_size: int
    #: mean symbol-class size with negation optimization (the paper's S)
    mean_class_size_no: float

    def __str__(self) -> str:
        return (
            f"{self.scheme}(L={self.code_length}, A={self.alphabet_size}, "
            f"S={self.mean_class_size_no:.2f})"
        )


def class_statistics(
    symbol_classes: Sequence[SymbolClass],
) -> tuple[SymbolClass, float]:
    """(alphabet, mean class size with NO) over the given classes."""
    if not symbol_classes:
        raise EncodingError("cannot select an encoding for zero classes")
    alphabet = SymbolClass.empty()
    for symbol_class in symbol_classes:
        alphabet = alphabet | symbol_class
    sizes = [effective_class_size(c, alphabet) for c in symbol_classes]
    return alphabet, sum(sizes) / len(sizes)


def stored_classes(
    symbol_classes: Sequence[SymbolClass], alphabet: SymbolClass
) -> list[SymbolClass]:
    """What the CAM actually stores per state: the class itself, or its
    complement when negation optimization will flip the row.  Symbol
    clustering must co-locate the *stored* symbols, so the frequency
    statistics are computed over these."""
    stored = []
    for symbol_class in symbol_classes:
        complement = alphabet - symbol_class
        if complement and len(complement) < len(symbol_class):
            stored.append(complement)
        else:
            stored.append(symbol_class)
    return stored


def select_encoding(
    source: Automaton | Sequence[SymbolClass],
    *,
    clustered: bool = True,
) -> EncodingChoice:
    """Select and *construct* the optimal encoding for an automaton.

    Args:
        source: an automaton or its list of symbol classes.
        clustered: apply frequency-first clustering (True, the proposed
            flow) or pack symbols in numeric order (the Table II
            "without clustering" baseline).
    """
    if isinstance(source, Automaton):
        symbol_classes = [s.symbol_class for s in source.states]
    else:
        symbol_classes = list(source)
    alphabet, mean_no = class_statistics(symbol_classes)
    a_size = len(alphabet)

    if a_size <= ONE_ZERO_ALPHABET_LIMIT:
        encoding: Encoding = OneZeroEncoding(alphabet)
        return EncodingChoice(
            encoding, encoding.name, encoding.code_length, a_size, mean_no
        )

    if mean_no <= 1.0 + 1e-12:
        encoding = MultiZerosEncoding(alphabet)
        return EncodingChoice(
            encoding, encoding.name, encoding.code_length, a_size, mean_no
        )

    two = two_zeros_prefix_params(a_size, mean_no)
    one_ls, one_lp = one_zero_prefix_params(a_size)
    if two is not None and (two[0] + two[1]) <= (one_ls + one_lp):
        ls, lp, zeros = two[0], two[1], 2
    else:
        ls, lp, zeros = one_ls, one_lp, 1
    clusters = (
        cluster_symbols(
            stored_classes(symbol_classes, alphabet),
            alphabet,
            ls,
            _max_clusters(lp, zeros),
        )
        if clustered
        else identity_clusters(alphabet, ls)
    )
    encoding = build_prefix_encoding(clusters, ls, lp, zeros)
    return EncodingChoice(
        encoding, encoding.name, encoding.code_length, a_size, mean_no
    )


def fixed_one_zero_prefix_encoding(
    source: Automaton | Sequence[SymbolClass],
    *,
    suffix_length: int = 16,
    prefix_length: int = 16,
    clustered: bool = False,
) -> EncodingChoice:
    """The Table II baseline: fixed 32-bit One-Zero-Prefix encoding.

    The paper compares its selected encodings against this fixed shape
    without clustering optimization; both knobs are exposed so the
    ablation bench can isolate their effects.
    """
    if isinstance(source, Automaton):
        symbol_classes = [s.symbol_class for s in source.states]
    else:
        symbol_classes = list(source)
    alphabet, mean_no = class_statistics(symbol_classes)
    if clustered:
        clusters = cluster_symbols(
            stored_classes(symbol_classes, alphabet),
            alphabet,
            suffix_length,
            prefix_length,
        )
    else:
        clusters = identity_clusters(alphabet, suffix_length)
    encoding = build_prefix_encoding(clusters, suffix_length, prefix_length, 1)
    return EncodingChoice(
        encoding,
        f"fixed-{encoding.name}",
        encoding.code_length,
        len(alphabet),
        mean_no,
    )


def _max_clusters(prefix_length: int, zeros: int) -> int:
    from math import comb

    return comb(prefix_length, zeros)
