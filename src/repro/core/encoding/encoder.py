"""The online input encoder (paper §III, §VI.A).

Every cycle, the 8-bit input symbol is translated to its code word and
broadcast on the CAM search lines.  CAMA implements this with a small
256x32 6T SRAM lookup (the inversion required by the 8T match rule is
folded into the stored table at programming time, costing nothing).
The paper measures the encoder at ~0.11% (CAMA-E) / 0.05% (CAMA-T) of
total energy; the architecture model charges one encoder access per
cycle using this module's geometry.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding.base import Encoding
from repro.errors import EncodingError

#: the encoder SRAM geometry used by the paper (256 rows x 32 bits)
ENCODER_ROWS = 256
ENCODER_BITS = 32


class InputEncoder:
    """Lookup-table model of the 256x32 input encoder SRAM."""

    def __init__(self, encoding: Encoding) -> None:
        if encoding.code_length > ENCODER_BITS:
            raise EncodingError(
                f"code length {encoding.code_length} exceeds the encoder's "
                f"{ENCODER_BITS}-bit word"
            )
        self.encoding = encoding
        self._table = np.zeros(ENCODER_ROWS, dtype=np.uint64)
        self._valid = np.zeros(ENCODER_ROWS, dtype=bool)
        for symbol in encoding.alphabet:
            self._table[symbol] = encoding.symbol_code(symbol)
            self._valid[symbol] = True

    def encode(self, symbol: int) -> tuple[int, bool]:
        """(search-line pattern, valid flag) for one input symbol.

        Out-of-alphabet symbols return (0, False): pattern 0 matches no
        non-zero entry, and the valid flag additionally gates negated
        rows (whose inverters would otherwise turn the miss into a
        spurious match).
        """
        if not 0 <= symbol < ENCODER_ROWS:
            raise EncodingError(f"input symbol out of range: {symbol}")
        return int(self._table[symbol]), bool(self._valid[symbol])

    def encode_stream(self, data: bytes) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized encoding of a whole input stream."""
        index = np.frombuffer(data, dtype=np.uint8)
        return self._table[index], self._valid[index]

    @property
    def utilized_bits(self) -> int:
        """Encoder word bits actually used (the rest are masked off)."""
        return self.encoding.code_length
