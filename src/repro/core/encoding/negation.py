"""Negation Optimization (NO, paper §IV.A and Table I).

Symbol classes written with negation (``[^abcd]``) accept almost the
whole alphabet; storing them directly costs many CAM entries.  CAMA
instead stores the *excluded* symbols and inverts the row's match
output.  The row inverter flips a single match line, so the negated
form is only hardware-realizable when the complement compresses into
**one** CAM entry — with frequency clustering the excluded symbols of a
real negated class almost always share a cluster, so this holds in
practice.  When it does not, or when it would not reduce the entry
count, the state falls back to the direct form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.symbols import SymbolClass
from repro.core.encoding.base import Encoding
from repro.core.encoding.compression import compress_class


@dataclass(frozen=True)
class StateEncoding:
    """The CAM realization of one state's symbol class."""

    patterns: tuple[int, ...]
    #: True when the row output is inverted (patterns store the complement)
    negated: bool

    @property
    def num_entries(self) -> int:
        return len(self.patterns)


def effective_class_size(symbol_class: SymbolClass, alphabet: SymbolClass) -> int:
    """Symbol-class size *with NO*: min(|C|, |alphabet \\ C|) when the
    complement is non-empty (Table I's "Symbol Class Size with NO")."""
    complement = alphabet - symbol_class
    if not complement:
        return len(symbol_class)
    return min(len(symbol_class), len(complement))


def encode_state_class(
    encoding: Encoding,
    symbol_class: SymbolClass,
    *,
    allow_negation: bool = True,
) -> StateEncoding:
    """Choose the cheaper of direct and negated CAM forms for a class."""
    direct = compress_class(encoding, symbol_class)
    if allow_negation:
        complement = encoding.alphabet - symbol_class
        if not complement:
            # The class covers the whole live alphabet: store the
            # all-ones pattern inverted.  Every valid input code has at
            # least one '0', so the raw search always misses and the
            # inverter turns the row into "match any alphabet symbol"
            # (the encoder's valid flag keeps out-of-alphabet symbols
            # from matching).
            if len(direct) > 1:
                all_ones = (1 << encoding.code_length) - 1
                return StateEncoding(patterns=(all_ones,), negated=True)
        elif len(complement) < len(symbol_class):
            negated = compress_class(encoding, complement)
            # A single inverted row is the only hardware-realizable
            # negated form (one inverter per match line).
            if len(negated) == 1 and len(negated) < len(direct):
                return StateEncoding(patterns=tuple(negated), negated=True)
    return StateEncoding(patterns=tuple(direct), negated=False)
