"""CAMA data-encoding framework (paper §V)."""

from repro.core.encoding.base import Encoding, cam_match
from repro.core.encoding.clustering import (
    cluster_symbols,
    cooccurrence_matrix,
    identity_clusters,
)
from repro.core.encoding.compression import (
    compress_class,
    memory_bits,
    verify_exact,
)
from repro.core.encoding.encoder import ENCODER_BITS, ENCODER_ROWS, InputEncoder
from repro.core.encoding.multi_zeros import MultiZerosEncoding, multi_zeros_length
from repro.core.encoding.negation import (
    StateEncoding,
    effective_class_size,
    encode_state_class,
)
from repro.core.encoding.one_zero import OneZeroEncoding
from repro.core.encoding.prefix import (
    PrefixEncoding,
    build_prefix_encoding,
    one_zero_prefix_params,
    two_zeros_prefix_params,
)
from repro.core.encoding.selection import (
    ONE_ZERO_ALPHABET_LIMIT,
    EncodingChoice,
    class_statistics,
    fixed_one_zero_prefix_encoding,
    select_encoding,
)

__all__ = [
    "ENCODER_BITS",
    "ENCODER_ROWS",
    "Encoding",
    "EncodingChoice",
    "InputEncoder",
    "MultiZerosEncoding",
    "ONE_ZERO_ALPHABET_LIMIT",
    "OneZeroEncoding",
    "PrefixEncoding",
    "StateEncoding",
    "build_prefix_encoding",
    "cam_match",
    "class_statistics",
    "cluster_symbols",
    "compress_class",
    "cooccurrence_matrix",
    "effective_class_size",
    "encode_state_class",
    "fixed_one_zero_prefix_encoding",
    "identity_clusters",
    "memory_bits",
    "multi_zeros_length",
    "one_zero_prefix_params",
    "select_encoding",
    "two_zeros_prefix_params",
    "verify_exact",
]
