"""Prefix encodings: Two-Zeros-Prefix and One-Zero-Prefix (paper §V.A).

A code word is split into a *suffix* (low ``ls`` bits, One-Zero style:
exactly one '0') and a *prefix* (high ``lp`` bits with exactly one or
two '0's).  Symbols are grouped into *clusters*: all symbols of a
cluster share the prefix and occupy distinct suffix slots.

* *Suffix compression* — clearing suffix '1's merges any subset of one
  cluster into a single entry, always exactly.
* *Prefix compression* — clearing prefix '1's merges entries that share
  a suffix pattern across clusters; with a one-zero prefix any subset
  of clusters merges exactly, with a two-zeros prefix only complete
  combinatorial sets do (the C(m, n) rule), which is why the two
  schemes trade code length against compression space.

Capacity: C(lp, zeros) clusters x ls slots >= alphabet size (Eq. 2).
"""

from __future__ import annotations

from itertools import combinations
from math import comb, isqrt

from repro.automata.symbols import SymbolClass
from repro.core.encoding.base import Encoding
from repro.errors import EncodingError
from repro.utils.bitvec import bits_from_positions, mask_of_width


class PrefixEncoding(Encoding):
    """Shared implementation of both prefix schemes.

    Args:
        assignment: symbol -> (cluster index, suffix slot) map; slots
            must be unique within a cluster and < ``suffix_length``.
        suffix_length: ls, number of suffix bits (= cluster capacity).
        prefix_length: lp, number of prefix bits.
        prefix_zeros: 1 (One-Zero-Prefix) or 2 (Two-Zeros-Prefix).
    """

    def __init__(
        self,
        assignment: dict[int, tuple[int, int]],
        suffix_length: int,
        prefix_length: int,
        prefix_zeros: int,
    ) -> None:
        if prefix_zeros not in (1, 2):
            raise EncodingError("prefix must have one or two zeros")
        if suffix_length < 1 or prefix_length <= prefix_zeros:
            raise EncodingError(
                f"bad prefix-encoding shape: ls={suffix_length}, lp={prefix_length}"
            )
        if not assignment:
            raise EncodingError("prefix encoding needs a non-empty assignment")
        self._ls = suffix_length
        self._lp = prefix_length
        self._zeros = prefix_zeros
        self.name = "one-zero-prefix" if prefix_zeros == 1 else "two-zeros-prefix"

        max_clusters = comb(prefix_length, prefix_zeros)
        self._prefix_patterns = _prefix_patterns(prefix_length, prefix_zeros)
        used = {}
        for symbol, (cluster, slot) in assignment.items():
            if not 0 <= symbol < 256:
                raise EncodingError(f"symbol out of range: {symbol}")
            if not 0 <= cluster < max_clusters:
                raise EncodingError(
                    f"cluster {cluster} exceeds capacity {max_clusters}"
                )
            if not 0 <= slot < suffix_length:
                raise EncodingError(f"slot {slot} exceeds suffix length")
            key = (cluster, slot)
            if key in used:
                raise EncodingError(
                    f"symbols {used[key]} and {symbol} share cluster/slot {key}"
                )
            used[key] = symbol
        self._assignment = dict(assignment)
        self._alphabet = SymbolClass.from_symbols(assignment)
        suffix_full = mask_of_width(suffix_length)
        self._codes = {
            symbol: (self._prefix_patterns[cluster] << suffix_length)
            | (suffix_full ^ (1 << slot))
            for symbol, (cluster, slot) in assignment.items()
        }

    # -- shape accessors --------------------------------------------------
    @property
    def suffix_length(self) -> int:
        return self._ls

    @property
    def prefix_length(self) -> int:
        return self._lp

    @property
    def prefix_zeros(self) -> int:
        return self._zeros

    @property
    def code_length(self) -> int:
        return self._ls + self._lp

    @property
    def alphabet(self) -> SymbolClass:
        return self._alphabet

    def cluster_of(self, symbol: int) -> int:
        return self._assignment[symbol][0]

    @property
    def assignment(self) -> dict[int, tuple[int, int]]:
        """Symbol -> (cluster, slot) map (a copy; the constructor's
        input form, which is also the serialized-artifact form)."""
        return dict(self._assignment)

    def symbol_code(self, symbol: int) -> int:
        try:
            return self._codes[symbol]
        except KeyError:
            raise EncodingError(
                f"symbol {symbol} is not in the prefix-encoding alphabet"
            ) from None

    def compress_groups(self, codes: list[int]) -> list[list[int]]:
        # Same prefix => suffix compression, exact for any subset.
        groups: dict[int, list[int]] = {}
        prefix_mask = mask_of_width(self._lp) << self._ls
        for code in codes:
            groups.setdefault(code & prefix_mask, []).append(code)
        return list(groups.values())


def _prefix_patterns(prefix_length: int, zeros: int) -> list[int]:
    full = mask_of_width(prefix_length)
    return [
        full ^ bits_from_positions(zero_positions)
        for zero_positions in combinations(range(prefix_length), zeros)
    ]


def build_prefix_encoding(
    clusters: list[list[int]],
    suffix_length: int,
    prefix_length: int,
    prefix_zeros: int,
) -> PrefixEncoding:
    """Build a prefix encoding from explicit symbol clusters.

    ``clusters[i]`` lists the symbols of cluster ``i`` in slot order.
    """
    assignment: dict[int, tuple[int, int]] = {}
    for cluster_index, members in enumerate(clusters):
        if len(members) > suffix_length:
            raise EncodingError(
                f"cluster {cluster_index} has {len(members)} symbols, "
                f"suffix length is {suffix_length}"
            )
        for slot, symbol in enumerate(members):
            if symbol in assignment:
                raise EncodingError(f"symbol {symbol} assigned twice")
            assignment[symbol] = (cluster_index, slot)
    return PrefixEncoding(assignment, suffix_length, prefix_length, prefix_zeros)


def two_zeros_prefix_params(
    alphabet_size: int, mean_class_size: float
) -> tuple[int, int] | None:
    """Eq. (2): the (ls, lp) minimizing code length for Two-Zeros-Prefix.

    Sweeps the suffix length from max(2, ⌈S⌉) to ⌊√A⌋; for each ls the
    minimal lp satisfies C(lp, 2) * ls >= A.  Returns None when the sweep
    range is empty (S > √A), in which case One-Zero-Prefix must be used.
    Ties prefer the larger suffix (more suffix-compression headroom).
    """
    if alphabet_size < 1:
        raise EncodingError("alphabet size must be positive")
    lo = max(2, -(-int(mean_class_size * 1e9) // 10**9))  # ceil without fp drift
    hi = isqrt(alphabet_size)
    best: tuple[int, int] | None = None
    for ls in range(lo, hi + 1):
        lp = 3
        while comb(lp, 2) * ls < alphabet_size:
            lp += 1
        if best is None or ls + lp <= best[0] + best[1]:
            best = (ls, lp)
    return best


def one_zero_prefix_params(alphabet_size: int) -> tuple[int, int]:
    """Minimal (ls, lp) with lp * ls >= A; total ≈ 2√A (Cauchy).

    Ties prefer the larger suffix.
    """
    if alphabet_size < 1:
        raise EncodingError("alphabet size must be positive")
    best: tuple[int, int] | None = None
    for ls in range(2, alphabet_size + 1):
        lp = max(2, -(-alphabet_size // ls))
        if best is None or ls + lp <= best[0] + best[1]:
            best = (ls, lp)
        if ls > alphabet_size // 2 + 1:
            break
    return best
