"""One-Zero encoding: code length = alphabet size, one '0' per code.

This is the bit-vector (one-hot, complemented) representation of AP and
CA expressed in CAM form: symbol with rank r gets the all-ones word
with bit r cleared.  Any subset of symbols compresses into a single
entry (clear every member's bit), which is why the paper adopts it
whenever the alphabet is small enough to fit a CAM word outright
(e.g. BlockRings with its 2-symbol alphabet).
"""

from __future__ import annotations

from repro.automata.symbols import SymbolClass
from repro.core.encoding.base import Encoding
from repro.errors import EncodingError
from repro.utils.bitvec import mask_of_width


class OneZeroEncoding(Encoding):
    """One '0' at the symbol's alphabet rank; code length = |alphabet|."""

    name = "one-zero"

    def __init__(self, alphabet: SymbolClass) -> None:
        if not alphabet:
            raise EncodingError("one-zero encoding needs a non-empty alphabet")
        self._alphabet = alphabet
        self._rank = {symbol: i for i, symbol in enumerate(alphabet)}
        # A 1-symbol alphabet would yield the all-don't-care code 0;
        # pad to two bits so every code keeps at least one '1'.
        self._width = max(2, len(alphabet))
        self._full = mask_of_width(self._width)

    @property
    def code_length(self) -> int:
        return self._width

    @property
    def alphabet(self) -> SymbolClass:
        return self._alphabet

    def symbol_code(self, symbol: int) -> int:
        try:
            rank = self._rank[symbol]
        except KeyError:
            raise EncodingError(
                f"symbol {symbol} is not in the one-zero alphabet"
            ) from None
        return self._full ^ (1 << rank)

    def compress_groups(self, codes: list[int]) -> list[list[int]]:
        # Any subset of one-zero codes merges exactly: the AND clears
        # exactly the members' rank bits, and a non-member code keeps a
        # '1' at its own rank where the AND also keeps '1' only if the
        # rank is not a member — so non-members always mismatch.
        return [list(codes)]
