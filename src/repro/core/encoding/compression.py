"""Exact symbol-class compression into CAM entries.

A symbol class is stored as one or more CAM entries; each entry is the
bitwise AND of its member codes.  An entry's *match set* (all alphabet
symbols it matches) can exceed its members, so merging is only legal
when the union of match sets still equals the class — the compression
must be **exact** (no false positives, no false negatives).

The algorithm: first apply the encoding's structural fast path
(`Encoding.compress_groups`: same-prefix groups for prefix encodings,
a single group for One-Zero), then greedily merge the remaining entries
pairwise, verifying exactness with the encoding's match sets.  Entries
are never compressed to the all-don't-care pattern 0 (a stored 0 would
match *every* input, including out-of-alphabet miss codes); a group
whose AND would be 0 is split instead.
"""

from __future__ import annotations

from repro.automata.symbols import SymbolClass
from repro.core.encoding.base import Encoding
from repro.errors import EncodingError


def _merge_nonzero(codes: list[int]) -> list[int]:
    """AND ``codes`` into as few non-zero patterns as possible.

    The AND of a guaranteed-mergeable group is only zero in the corner
    case where the group exhausts every '1' position (e.g. a one-zero
    class covering the whole alphabet); splitting the group in half
    restores a '1' in each part.
    """
    merged = codes[0]
    for code in codes[1:]:
        merged &= code
    if merged != 0 or len(codes) == 1:
        if merged == 0:
            raise EncodingError("single code word is zero")
        return [merged]
    mid = len(codes) // 2
    return _merge_nonzero(codes[:mid]) + _merge_nonzero(codes[mid:])


def compress_class(encoding: Encoding, symbol_class: SymbolClass) -> list[int]:
    """Compress ``symbol_class`` into an exact list of stored patterns.

    Raises EncodingError if the class contains unencodable symbols.
    """
    if not symbol_class:
        raise EncodingError("cannot compress an empty symbol class")
    if not symbol_class.issubset(encoding.alphabet):
        missing = symbol_class - encoding.alphabet
        raise EncodingError(
            f"class contains symbols outside the encoding alphabet: "
            f"{missing.to_anml()}"
        )
    codes = [encoding.symbol_code(s) for s in symbol_class]

    # Phase 1: structural fast path (exact by the encoding's contract).
    entries: list[int] = []
    for group in encoding.compress_groups(codes):
        entries.extend(_merge_nonzero(group))

    # Phase 2: greedy verified pairwise merging (prefix compression for
    # the prefix encodings; opportunistic merging otherwise).
    class_mask = symbol_class.mask
    merged_any = True
    while merged_any and len(entries) > 1:
        merged_any = False
        for i in range(len(entries)):
            if merged_any:
                break
            for j in range(i + 1, len(entries)):
                candidate = entries[i] & entries[j]
                if candidate == 0:
                    continue
                if encoding.match_set(candidate).mask & ~class_mask == 0:
                    entries[i] = candidate
                    del entries[j]
                    merged_any = True
                    break
    return entries


def verify_exact(
    encoding: Encoding, symbol_class: SymbolClass, entries: list[int]
) -> bool:
    """True iff ``entries`` match exactly ``symbol_class``.

    Used by tests and by the compiler's self-check mode.
    """
    covered = SymbolClass.empty()
    for stored in entries:
        covered = covered | encoding.match_set(stored)
    return covered == symbol_class


def memory_bits(encoding: Encoding, entries: list[int]) -> int:
    """State-matching memory bits consumed: entries x code length
    (Table II's "memory usage = code length x #states")."""
    return len(entries) * encoding.code_length
