"""Multi-Zeros encoding: balanced codes with ⌊L/2⌋ zeros (paper Eq. 1).

Balanced codes maximize the number of distinct code words per bit
(C(L, L/2) codes of length L), so this is the shortest possible code —
but compression is nearly impossible: ANDing k codes produces m > L/2
zeros and the merged entry matches *all* C(m, L/2) codes inside the
zero positions, which is almost never exactly the wanted class.  The
selection algorithm therefore picks Multi-Zeros only when the average
symbol-class size (with negation optimization) is exactly 1, i.e. no
compression is needed (Brill, Hamming, Levenshtein: L = 11 for a
256-symbol alphabet).
"""

from __future__ import annotations

from itertools import combinations
from math import comb

from repro.automata.symbols import SymbolClass
from repro.core.encoding.base import Encoding
from repro.errors import EncodingError
from repro.utils.bitvec import bits_from_positions, mask_of_width


def multi_zeros_length(alphabet_size: int) -> int:
    """Eq. (1): minimal L with C(L, ⌊L/2⌋) >= alphabet size."""
    if alphabet_size < 1:
        raise EncodingError("alphabet size must be positive")
    length = 1
    while comb(length, length // 2) < alphabet_size:
        length += 1
    return length


class MultiZerosEncoding(Encoding):
    """Balanced fixed-weight code; symbols take combinations in rank order."""

    name = "multi-zeros"

    def __init__(self, alphabet: SymbolClass, length: int | None = None) -> None:
        if not alphabet:
            raise EncodingError("multi-zeros encoding needs a non-empty alphabet")
        self._alphabet = alphabet
        self._length = length or multi_zeros_length(len(alphabet))
        zeros = self._length // 2
        if comb(self._length, zeros) < len(alphabet):
            raise EncodingError(
                f"length {self._length} encodes only "
                f"{comb(self._length, zeros)} symbols, need {len(alphabet)}"
            )
        full = mask_of_width(self._length)
        self._codes: dict[int, int] = {}
        combos = combinations(range(self._length), zeros)
        for symbol, zero_positions in zip(alphabet, combos):
            self._codes[symbol] = full ^ bits_from_positions(zero_positions)

    @property
    def code_length(self) -> int:
        return self._length

    @property
    def alphabet(self) -> SymbolClass:
        return self._alphabet

    def symbol_code(self, symbol: int) -> int:
        try:
            return self._codes[symbol]
        except KeyError:
            raise EncodingError(
                f"symbol {symbol} is not in the multi-zeros alphabet"
            ) from None
