"""Code words and the 8T-CAM match semantics (paper §IV.A, §V.A).

CAMA re-purposes 8T SRAM cells as CAM cells with a *single* search
line per cell.  After the input encoder's built-in inversion, the
effective matching rule is:

    a stored '1' requires the input bit to be '1';
    a stored '0' is a don't-care.

so an entry matches iff ``stored & ~input == 0`` (:func:`cam_match`).
All single-symbol codes within one encoding have the same Hamming
weight; by the pigeonhole principle two *different* equal-weight codes
always produce at least one (stored 1, input 0) position, so exact-match
behaviour is preserved without differential search lines.

*Compression* stores the bitwise AND of several member codes, turning
the positions where members disagree into don't-cares.  An entry set
for a symbol class is **exact** when the union of the entries' match
sets equals the class; :mod:`repro.core.encoding.compression` enforces
this invariant.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property

import numpy as np

from repro.automata.symbols import SymbolClass
from repro.errors import EncodingError
from repro.utils.bitvec import popcount


def cam_match(stored: int, input_code: int) -> bool:
    """True iff a CAM entry holding ``stored`` matches ``input_code``."""
    return stored & ~input_code == 0


class Encoding(ABC):
    """A fixed-weight code over some alphabet of 8-bit symbols.

    Concrete encodings (One-Zero, Multi-Zeros, Two-Zeros-Prefix,
    One-Zero-Prefix) assign every alphabet symbol a ``code_length``-bit
    code word with a fixed number of '0's.  Codes are Python ints with
    bit ``i`` = code position ``i``.
    """

    #: short scheme identifier, e.g. "two-zeros-prefix"
    name: str = "encoding"

    @property
    @abstractmethod
    def code_length(self) -> int:
        """Number of code bits (CAM rows used per entry)."""

    @property
    @abstractmethod
    def alphabet(self) -> SymbolClass:
        """The symbols this encoding can represent."""

    @abstractmethod
    def symbol_code(self, symbol: int) -> int:
        """Code word of ``symbol``; raises EncodingError if unencodable."""

    # -- shared machinery -------------------------------------------------
    @cached_property
    def _alphabet_array(self) -> np.ndarray:
        return np.fromiter(self.alphabet, dtype=np.int64)

    @cached_property
    def _code_array(self) -> np.ndarray:
        codes = np.zeros(256, dtype=np.uint64)
        for symbol in self.alphabet:
            codes[symbol] = self.symbol_code(symbol)
        return codes

    def input_code(self, symbol: int) -> int:
        """Search-line pattern for an input symbol.

        Symbols outside the alphabet return 0, which matches no
        (non-zero) stored entry; the hardware encoder additionally
        raises a miss flag for them (see ``InputEncoder``).
        """
        if not 0 <= symbol < 256:
            raise EncodingError(f"input symbol out of range: {symbol}")
        if symbol not in self.alphabet:
            return 0
        return int(self._code_array[symbol])

    def match_set(self, stored: int) -> SymbolClass:
        """All alphabet symbols whose codes match a stored entry."""
        symbols = self._alphabet_array
        codes = self._code_array[symbols]
        # match rule: stored & ~code == 0, with ~code taken within L bits
        full = np.uint64((1 << self.code_length) - 1)
        hits = (np.uint64(stored) & (codes ^ full)) == 0
        return SymbolClass.from_symbols(int(s) for s in symbols[hits])

    @cached_property
    def weight(self) -> int:
        """Hamming weight shared by all single-symbol codes."""
        symbols = self.alphabet.symbols()
        weights = {popcount(self.symbol_code(s)) for s in symbols}
        if len(weights) != 1:
            raise EncodingError(
                f"{self.name}: symbol codes do not have fixed weight: {weights}"
            )
        return weights.pop()

    def compress_groups(self, codes: list[int]) -> list[list[int]]:
        """Partition ``codes`` into groups that are *guaranteed* to be
        exactly mergeable by AND.  The default is the safe trivial
        partition; subclasses override with their structural fast path.
        """
        return [[code] for code in codes]

    def validate(self) -> None:
        """Check the fixed-weight and uniqueness invariants."""
        seen: dict[int, int] = {}
        for symbol in self.alphabet:
            code = self.symbol_code(symbol)
            if code <= 0 or code >= 1 << self.code_length:
                raise EncodingError(
                    f"{self.name}: code of symbol {symbol} out of range"
                )
            if code in seen:
                raise EncodingError(
                    f"{self.name}: symbols {seen[code]} and {symbol} share a code"
                )
            seen[code] = symbol
        _ = self.weight  # raises on non-fixed weight

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(L={self.code_length}, "
            f"A={len(self.alphabet)})"
        )
