"""The CAMA optimization framework (§V.B, §VI): NFA -> CamaProgram.

This is the toolchain the paper describes as "automatically analyzes
the homogeneous NFA in an MNRL/ANML file, and chooses the optimal
encoding scheme, the code length, and the CAMA operation mode", then
"maps the optimized NFA to the hardware".  The compiled program bundles
everything the functional machine and the architecture models need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.nfa import Automaton
from repro.core.encoding.encoder import InputEncoder
from repro.core.encoding.negation import StateEncoding
from repro.core.encoding.selection import (
    EncodingChoice,
    fixed_one_zero_prefix_encoding,
    select_encoding,
)
from repro.core.mapping import CamaMapping
from repro.sim.trace import PartitionAssignment


@dataclass
class CamaProgram:
    """A fully compiled automaton: encoding + state entries + placement."""

    automaton: Automaton
    choice: EncodingChoice
    state_encodings: list[StateEncoding]
    mapping: CamaMapping
    encoder: InputEncoder

    @property
    def code_length(self) -> int:
        return self.choice.code_length

    @property
    def total_entries(self) -> int:
        return self.mapping.total_entries

    @property
    def memory_bits(self) -> int:
        """State-matching bits = entries x code length (Table II)."""
        return self.total_entries * self.code_length

    @property
    def num_negated_states(self) -> int:
        return sum(1 for se in self.state_encodings if se.negated)

    def placement(self, unit: str = "cam") -> PartitionAssignment:
        return self.mapping.placement(unit)

    def summary(self) -> dict:
        """Human-readable compilation summary (used by examples/docs)."""
        return {
            "automaton": self.automaton.name,
            "states": len(self.automaton),
            "encoding": self.choice.scheme,
            "code_length": self.code_length,
            "cam_entries": self.total_entries,
            "negated_states": self.num_negated_states,
            "rcb_switches": self.mapping.num_rcb_switches,
            "fcb_switches": self.mapping.num_fcb_switches,
            "tiles": self.mapping.num_tiles,
            "global_switches": self.mapping.num_global_switches,
            "cross_edges": len(self.mapping.cross_edges),
        }


class CamaCompiler:
    """Compiles homogeneous NFAs to CAMA programs.

    Since the staged-pipeline refactor this class is a thin,
    backwards-compatible driver over :func:`repro.compile.pipeline.
    compile_ruleset` (parse → optimize → stride → encode → map →
    kernel): it configures the encode/map passes and returns the
    assembled :class:`CamaProgram`.  Use the pipeline directly for pass
    timings, kernel prebuilds, or serializable artifacts.

    Args:
        allow_negation: apply negation optimization (NO) per state.
        clustered: apply frequency-first symbol clustering.
        fixed_32bit: bypass selection and use the fixed 32-bit
            One-Zero-Prefix baseline of Table II.
    """

    def __init__(
        self,
        *,
        allow_negation: bool = True,
        clustered: bool = True,
        fixed_32bit: bool = False,
    ) -> None:
        self.allow_negation = allow_negation
        self.clustered = clustered
        self.fixed_32bit = fixed_32bit

    def select(self, automaton: Automaton) -> EncodingChoice:
        if self.fixed_32bit:
            return fixed_one_zero_prefix_encoding(
                automaton, clustered=self.clustered
            )
        return select_encoding(automaton, clustered=self.clustered)

    def options(self) -> "object":
        """This compiler's settings as program-only pipeline options."""
        # imported lazily: repro.compile assembles CamaProgram from here
        from repro.compile.ir import PipelineOptions

        return PipelineOptions(
            optimize=False,
            stride=1,
            backend=None,  # program-only: no kernel prebuild
            allow_negation=self.allow_negation,
            clustered=self.clustered,
            fixed_32bit=self.fixed_32bit,
        )

    def compile(self, automaton: Automaton) -> CamaProgram:
        from repro.compile.pipeline import compile_ruleset

        return compile_ruleset(automaton, self.options()).program


def compile_automaton(automaton: Automaton, **kwargs) -> CamaProgram:
    """Convenience wrapper: ``CamaCompiler(**kwargs).compile(automaton)``."""
    return CamaCompiler(**kwargs).compile(automaton)
