"""CAMA core: encodings, CAM fabric, mapping, compiler and machine."""

from repro.core.cam import CAM_COLUMNS, CAM_ROWS, CamArray, CamEntry
from repro.core.compiler import CamaCompiler, CamaProgram, compile_automaton
from repro.core.encoding import (
    Encoding,
    EncodingChoice,
    InputEncoder,
    MultiZerosEncoding,
    OneZeroEncoding,
    PrefixEncoding,
    StateEncoding,
    cam_match,
    compress_class,
    encode_state_class,
    select_encoding,
    verify_exact,
)
from repro.core.machine import CamaActivity, CamaMachine, CamaRunResult
from repro.core.mapping import (
    CamaMapping,
    SwitchPlan,
    TilePlan,
    map_automaton,
)
from repro.core.rrcb import (
    CAMA_KDIA,
    EAP_KDIA,
    GLOBAL_PORTS,
    LocalSwitch,
    rcb_band_feasible,
)

__all__ = [
    "CAMA_KDIA",
    "CAM_COLUMNS",
    "CAM_ROWS",
    "CamArray",
    "CamEntry",
    "CamaActivity",
    "CamaCompiler",
    "CamaMachine",
    "CamaMapping",
    "CamaProgram",
    "CamaRunResult",
    "EAP_KDIA",
    "Encoding",
    "EncodingChoice",
    "GLOBAL_PORTS",
    "InputEncoder",
    "LocalSwitch",
    "MultiZerosEncoding",
    "OneZeroEncoding",
    "PrefixEncoding",
    "StateEncoding",
    "SwitchPlan",
    "TilePlan",
    "cam_match",
    "compile_automaton",
    "compress_class",
    "encode_state_class",
    "map_automaton",
    "rcb_band_feasible",
    "select_encoding",
    "verify_exact",
]
