"""Fig. 10: chip area per benchmark for CAMA, 2-stride Impala, eAP, CA.

Shape to reproduce: CAMA needs the least area on every benchmark; on
the largest benchmark the paper reports 2.48x (CA), 1.91x (Impala) and
1.78x (eAP) more area than CAMA.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable

AREA_DESIGNS = ("CAMA-E", "2-stride Impala", "eAP", "CA")
PAPER_LARGEST_RATIOS = {"CA": 2.48, "2-stride Impala": 1.91, "eAP": 1.78}


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    largest = None
    for name in ctx.benchmarks:
        areas = {
            design: ctx.build(name, design).area_mm2 for design in AREA_DESIGNS
        }
        cama = areas["CAMA-E"]
        rows.append(
            [
                name,
                round(cama, 4),
                round(areas["2-stride Impala"], 4),
                round(areas["eAP"], 4),
                round(areas["CA"], 4),
                round(areas["2-stride Impala"] / cama, 2),
                round(areas["eAP"] / cama, 2),
                round(areas["CA"] / cama, 2),
            ]
        )
        # "largest tested benchmark" in the paper's sense: most states
        paper_states = ctx.benchmark(name).profile.paper.onehot_states
        if largest is None or paper_states > largest[3]:
            largest = (name, cama, areas, paper_states)
    name, cama, areas, _ = largest
    notes = (
        f"Largest benchmark ({name}): area ratios over CAMA — "
        f"CA {areas['CA'] / cama:.2f}x (paper {PAPER_LARGEST_RATIOS['CA']}x), "
        f"Impala {areas['2-stride Impala'] / cama:.2f}x "
        f"(paper {PAPER_LARGEST_RATIOS['2-stride Impala']}x), "
        f"eAP {areas['eAP'] / cama:.2f}x (paper {PAPER_LARGEST_RATIOS['eAP']}x)."
    )
    return ExperimentTable(
        experiment="Fig 10 — chip area in mm^2 (CAMA-E/T share one mapping)",
        headers=[
            "benchmark",
            "CAMA",
            "Impala",
            "eAP",
            "CA",
            "Impala/CAMA",
            "eAP/CAMA",
            "CA/CAMA",
        ],
        rows=rows,
        notes=notes,
    )
