"""Fig. 13: 2-stride CAMA vs 4-stride Impala energy per byte.

Shape to reproduce: 4-stride Impala consumes ~2.18x more energy than
2-stride CAMA-T and ~3.77x more than 2-stride CAMA-E on average (the
four 16x256 banks cost 61.2 pJ vs the 64x256 CAM's 22 pJ).

The paper's figure omits the big Dotstar benchmark; we run all
benchmarks whose 2-strided automata stay within a state budget (the
pair construction is quadratic in fan-out, and the dense RandomForest /
EntityResolution automata explode at full stride — the paper strides
them with Becchi's compaction which we approximate by capping).
"""

from __future__ import annotations

from repro.arch.stride_models import multistride_energy
from repro.automata.striding import stride2
from repro.experiments.common import (
    ExperimentContext,
    ExperimentTable,
    geometric_mean,
)

PAPER_AVG_RATIO = {"2-stride CAMA-E": 3.77, "2-stride CAMA-T": 2.18}
#: skip benchmarks whose 2-strided automaton exceeds this state budget
MAX_STRIDED_STATES = 40_000


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    ratios_e = []
    ratios_t = []
    skipped = []
    for name in ctx.benchmarks:
        automaton = ctx.benchmark(name).automaton
        strided = stride2(automaton)
        if len(strided) > MAX_STRIDED_STATES:
            skipped.append(name)
            continue
        data = ctx.stream(name)[: max(2000, ctx.stream_length // 4)]
        result = multistride_energy(automaton, data, ctx.lib)
        e = result.energy_nj_per_byte
        ratio_e = result.ratio_impala_over("2-stride CAMA-E")
        ratio_t = result.ratio_impala_over("2-stride CAMA-T")
        ratios_e.append(ratio_e)
        ratios_t.append(ratio_t)
        rows.append(
            [
                name,
                result.strided_states,
                result.impala4_states,
                round(e["2-stride CAMA-E"] * 1000, 2),
                round(e["2-stride CAMA-T"] * 1000, 2),
                round(e["4-stride Impala"] * 1000, 2),
                round(ratio_e, 2),
                round(ratio_t, 2),
            ]
        )
    notes = (
        f"Average Impala/CAMA energy ratio: vs CAMA-E "
        f"{geometric_mean(ratios_e):.2f}x (paper {PAPER_AVG_RATIO['2-stride CAMA-E']}x), "
        f"vs CAMA-T {geometric_mean(ratios_t):.2f}x "
        f"(paper {PAPER_AVG_RATIO['2-stride CAMA-T']}x)."
    )
    if skipped:
        notes += f" Skipped (strided-state budget): {', '.join(skipped)}."
    return ExperimentTable(
        experiment="Fig 13 — multi-stride energy (pJ/byte and ratios)",
        headers=[
            "benchmark",
            "2-stride states",
            "4-stride states",
            "CAMA-E pJ/B",
            "CAMA-T pJ/B",
            "Impala4 pJ/B",
            "Impala/CAMA-E",
            "Impala/CAMA-T",
        ],
        rows=rows,
        notes=notes,
    )
