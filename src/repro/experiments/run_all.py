"""Run every experiment and emit the results (console + results/ dir).

Usage:
    python -m repro.experiments.run_all [--scale 0.0625] [--stream 10000]
                                        [--out results]

Regenerates every table and figure of the paper's evaluation; the
printed output is what EXPERIMENTS.md's measured columns record.
"""

from __future__ import annotations

import argparse
import csv
import time
from pathlib import Path

from repro.experiments import (
    extra_report_buffers,
    fig10_area,
    fig11_density_energy_power,
    fig12_energy_breakdown,
    fig13_multistride,
    table1_symbol_classes,
    table2_encoding,
    table4_timing,
    table5_switch_mapping,
)
from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.workloads.profiles import DEFAULT_SCALE

EXPERIMENTS = [
    ("table1", table1_symbol_classes),
    ("table2", table2_encoding),
    ("table4", table4_timing),
    ("table5", table5_switch_mapping),
    ("fig10", fig10_area),
    ("fig11", fig11_density_energy_power),
    ("fig12", fig12_energy_breakdown),
    ("fig13", fig13_multistride),
    ("buffers", extra_report_buffers),
]


def write_csv(table: ExperimentTable, path: Path) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.headers)
        writer.writerows(table.rows)


def run_all(
    scale: float = DEFAULT_SCALE,
    stream_length: int = 10_000,
    out_dir: str | Path | None = "results",
    only: list[str] | None = None,
) -> dict[str, ExperimentTable]:
    ctx = ExperimentContext(scale=scale, stream_length=stream_length)
    results: dict[str, ExperimentTable] = {}
    out_path = Path(out_dir) if out_dir else None
    if out_path:
        out_path.mkdir(parents=True, exist_ok=True)
    for key, module in EXPERIMENTS:
        if only and key not in only:
            continue
        started = time.time()
        table = module.run(ctx)
        results[key] = table
        print(table.format())
        print(f"[{key} done in {time.time() - started:.1f}s]\n")
        if out_path:
            write_csv(table, out_path / f"{key}.csv")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--stream", type=int, default=10_000)
    parser.add_argument("--out", type=str, default="results")
    parser.add_argument(
        "--only",
        nargs="*",
        choices=[key for key, _ in EXPERIMENTS],
        help="run a subset of experiments",
    )
    args = parser.parse_args()
    run_all(
        scale=args.scale,
        stream_length=args.stream,
        out_dir=args.out,
        only=args.only,
    )


if __name__ == "__main__":
    main()
