"""Fig. 12: CAMA energy breakdown — encoder / switch+wire / state match.

Shape to reproduce: for CAMA-E the interconnect dominates (~73% on
average, state matching ~27%); for CAMA-T state matching dominates
(~65%, interconnect ~35%); the encoder is a rounding error (<<1% at
paper scale, ~0.1%).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    sums = {"E": [0.0, 0.0, 0.0], "T": [0.0, 0.0, 0.0]}
    for name in ctx.benchmarks:
        cells: list[object] = [name]
        for variant in ("E", "T"):
            build = ctx.build(name, f"CAMA-{variant}")
            stats = ctx.stats(name, f"CAMA-{variant}")
            fractions = build.energy(stats).fractions()
            cells.extend(
                [
                    round(fractions["state_match"] * 100, 1),
                    round(fractions["switch_wire"] * 100, 1),
                    round(fractions["encoder"] * 100, 2),
                ]
            )
            sums[variant][0] += fractions["state_match"]
            sums[variant][1] += fractions["switch_wire"]
            sums[variant][2] += fractions["encoder"]
        rows.append(cells)
    n = len(ctx.benchmarks)
    notes = (
        "Averages (measured vs paper): CAMA-E state match "
        f"{sums['E'][0] / n:.0%} (27%), switch+wire {sums['E'][1] / n:.0%} "
        f"(72.89%), encoder {sums['E'][2] / n:.2%} (0.11%); "
        f"CAMA-T state match {sums['T'][0] / n:.0%} (64.6%), switch+wire "
        f"{sums['T'][1] / n:.0%} (35.35%), encoder {sums['T'][2] / n:.2%} "
        "(0.05%). Encoder fractions shrink with automaton scale; at 1/16 "
        "scale they sit above the paper's full-scale value."
    )
    return ExperimentTable(
        experiment="Fig 12 — CAMA energy breakdown (% of total)",
        headers=[
            "benchmark",
            "E: match%",
            "E: switch%",
            "E: encoder%",
            "T: match%",
            "T: switch%",
            "T: encoder%",
        ],
        rows=rows,
        notes=notes,
    )
