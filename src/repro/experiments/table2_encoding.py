"""Table II: the proposed encoding vs one-hot and fixed 32-bit baselines.

Columns: states under 256-bit one-hot (= automaton states), CAM entries
under a fixed 32-bit One-Zero-Prefix encoding *without* clustering, and
the proposed selected encoding's code length and entries.  Shape to
reproduce: the proposed flow increases entries by ~13% on average over
one-hot while the fixed-32-bit flow costs ~25% (and always 32 bits).
"""

from __future__ import annotations

from repro.core.compiler import CamaCompiler
from repro.experiments.common import ExperimentContext, ExperimentTable


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    proposed_increase = []
    fixed_increase = []
    for name in ctx.benchmarks:
        benchmark = ctx.benchmark(name)
        automaton = benchmark.automaton
        paper = benchmark.profile.paper
        onehot_states = len(automaton)
        program = ctx.program(name)
        fixed = CamaCompiler(fixed_32bit=True).compile(automaton)
        proposed_increase.append(program.total_entries / onehot_states)
        fixed_increase.append(fixed.total_entries / onehot_states)
        rows.append(
            [
                name,
                onehot_states,
                fixed.total_entries,
                program.choice.code_length,
                paper.code_length,
                program.total_entries,
                round(program.total_entries / onehot_states, 3),
                round(paper.proposed_states / paper.onehot_states, 3),
            ]
        )
    avg_prop = sum(proposed_increase) / len(proposed_increase)
    avg_fixed = sum(fixed_increase) / len(fixed_increase)
    return ExperimentTable(
        experiment="Table II — encoding comparison (measured vs paper)",
        headers=[
            "benchmark",
            "one-hot states",
            "fixed-32b states",
            "L",
            "L(paper)",
            "proposed states",
            "increase",
            "increase(paper)",
        ],
        rows=rows,
        notes=(
            f"Average state increase: proposed {avg_prop - 1:+.1%} "
            f"(paper ~+13%), fixed 32-bit {avg_fixed - 1:+.1%} (paper ~+25%)."
        ),
    )
