"""Experiment harnesses: one module per paper table/figure."""

from repro.experiments import (
    extra_report_buffers,
    fig10_area,
    fig11_density_energy_power,
    fig12_energy_breakdown,
    fig13_multistride,
    table1_symbol_classes,
    table2_encoding,
    table4_timing,
    table5_switch_mapping,
)
from repro.experiments.common import (
    DESIGNS,
    ExperimentContext,
    ExperimentTable,
    geometric_mean,
)
from repro.experiments.run_all import run_all

__all__ = [
    "DESIGNS",
    "ExperimentContext",
    "ExperimentTable",
    "extra_report_buffers",
    "fig10_area",
    "fig11_density_energy_power",
    "fig12_energy_breakdown",
    "fig13_multistride",
    "geometric_mean",
    "run_all",
    "table1_symbol_classes",
    "table2_encoding",
    "table4_timing",
    "table5_switch_mapping",
]
