"""Shared plumbing for the experiment harnesses.

One :class:`ExperimentContext` caches everything expensive — generated
benchmarks, compiled CAMA programs, design builds and simulation traces
— so the table/figure harnesses can share work.  CAMA-E and CAMA-T
share one placement (and therefore one simulation); CA and eAP share
the baseline 256-STE placement; Impala has its own projected placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.arch.baselines import BaselineMapping, map_baseline
from repro.arch.circuits import CircuitLibrary
from repro.arch.designs import (
    DesignBuild,
    build_ca,
    build_cama,
    build_eap,
    build_impala,
)
from repro.core.compiler import CamaCompiler, CamaProgram
from repro.errors import ReproError
from repro.sim.engine import Engine
from repro.sim.trace import TraceStats
from repro.utils.tables import format_table
from repro.workloads import DEFAULT_SCALE, Benchmark, get_benchmark
from repro.workloads.profiles import BENCHMARK_NAMES

DESIGNS = ("CAMA-E", "CAMA-T", "2-stride Impala", "eAP", "CA")


@dataclass
class ExperimentTable:
    """One regenerated table/figure: headers, rows, and provenance."""

    experiment: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""

    def format(self) -> str:
        text = format_table(self.headers, self.rows, title=self.experiment)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text


@dataclass
class ExperimentContext:
    """Caching evaluation context shared by all experiments."""

    scale: float = DEFAULT_SCALE
    stream_length: int = 10_000
    benchmarks: Sequence[str] = BENCHMARK_NAMES
    #: execution backend for the simulation engines ("sparse" keeps the
    #: published-trace baseline; "auto"/"bitparallel" trade it for speed)
    engine_backend: str = "sparse"
    lib: CircuitLibrary = field(default_factory=CircuitLibrary)
    _programs: dict[str, CamaProgram] = field(default_factory=dict)
    _baselines: dict[str, BaselineMapping] = field(default_factory=dict)
    _builds: dict[tuple[str, str], DesignBuild] = field(default_factory=dict)
    _engines: dict[str, Engine] = field(default_factory=dict)
    _stats: dict[tuple[str, str], TraceStats] = field(default_factory=dict)
    _streams: dict[str, bytes] = field(default_factory=dict)

    # -- benchmark artifacts ------------------------------------------------
    def benchmark(self, name: str) -> Benchmark:
        return get_benchmark(name, scale=self.scale)

    def stream(self, name: str) -> bytes:
        if name not in self._streams:
            self._streams[name] = self.benchmark(name).input_stream(
                length=self.stream_length
            )
        return self._streams[name]

    def program(self, name: str) -> CamaProgram:
        if name not in self._programs:
            self._programs[name] = CamaCompiler().compile(
                self.benchmark(name).automaton
            )
        return self._programs[name]

    def baseline_mapping(self, name: str) -> BaselineMapping:
        if name not in self._baselines:
            self._baselines[name] = map_baseline(self.benchmark(name).automaton)
        return self._baselines[name]

    def engine(self, name: str) -> Engine:
        if name not in self._engines:
            self._engines[name] = Engine(
                self.benchmark(name).automaton, backend=self.engine_backend
            )
        return self._engines[name]

    # -- design builds --------------------------------------------------------
    def build(self, name: str, design: str) -> DesignBuild:
        key = (name, design)
        if key not in self._builds:
            automaton = self.benchmark(name).automaton
            if design in ("CAMA-E", "CAMA-T"):
                build = build_cama(
                    automaton,
                    design[-1],
                    self.lib,
                    program=self.program(name),
                )
            elif design == "CA":
                build = build_ca(automaton, self.lib, self.baseline_mapping(name))
            elif design == "eAP":
                build = build_eap(automaton, self.lib, self.baseline_mapping(name))
            elif design == "2-stride Impala":
                build = build_impala(automaton, self.lib)
            else:
                raise ReproError(f"unknown design {design!r}")
            self._builds[key] = build
        return self._builds[key]

    # -- simulation traces ------------------------------------------------------
    def stats(self, name: str, design: str) -> TraceStats:
        """Partition-resolved activity for (benchmark, design).

        CAMA-E/T share one trace; CA/eAP share one trace.
        """
        trace_kind = {
            "CAMA-E": "cama",
            "CAMA-T": "cama",
            "CA": "baseline",
            "eAP": "baseline",
            "2-stride Impala": "impala",
        }[design]
        key = (name, trace_kind)
        if key not in self._stats:
            build = self.build(name, design)
            result = self.engine(name).run(
                self.stream(name), placement=build.placement, max_reports=0
            )
            self._stats[key] = result.stats
        return self._stats[key]

    def energy_per_cycle(self, name: str, design: str) -> float:
        return self.build(name, design).energy(self.stats(name, design)).per_cycle_pj()


def geometric_mean(values: list[float]) -> float:
    if not values:
        raise ReproError("geometric mean of no values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
