"""Table I: symbol-class sizes and CAM entry counts, with and without NO.

For each benchmark: the average symbol-class size, the class size after
negation optimization, the alphabet size, and the number of CAM entries
when compressing the raw classes vs the NO-optimized classes under the
selected encoding.  Shape to reproduce: NO cuts entries sharply on the
negation-heavy benchmarks (TCP, SPM, EntityResolution, RandomForest,
Protomata, Snort) and is neutral where classes are singletons.
"""

from __future__ import annotations

from repro.core.compiler import CamaCompiler
from repro.core.encoding.selection import class_statistics
from repro.experiments.common import ExperimentContext, ExperimentTable


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    for name in ctx.benchmarks:
        benchmark = ctx.benchmark(name)
        automaton = benchmark.automaton
        paper = benchmark.profile.paper
        classes = [s.symbol_class for s in automaton.states]
        raw_avg = sum(len(c) for c in classes) / len(classes)
        _, no_avg = class_statistics(classes)
        alphabet = len(automaton.alphabet())

        with_no = ctx.program(name).total_entries
        raw_program = CamaCompiler(allow_negation=False).compile(automaton)
        raw_entries = raw_program.total_entries
        rows.append(
            [
                name,
                round(raw_avg, 2),
                paper.class_size_raw,
                round(no_avg, 2),
                paper.class_size_no,
                alphabet,
                paper.alphabet,
                raw_entries,
                with_no,
                round(paper.cam_entries_no / paper.cam_entries_raw, 3),
                round(with_no / raw_entries, 3),
            ]
        )
    return ExperimentTable(
        experiment="Table I — symbol classes and CAM entries (measured vs paper)",
        headers=[
            "benchmark",
            "S_raw",
            "S_raw(paper)",
            "S_NO",
            "S_NO(paper)",
            "A",
            "A(paper)",
            "entries_raw",
            "entries_NO",
            "NO_ratio(paper)",
            "NO_ratio",
        ],
        rows=rows,
        notes=(
            "Entry counts are at the context's scale; the comparable "
            "quantity is NO_ratio = entries_with_NO / entries_raw."
        ),
    )
