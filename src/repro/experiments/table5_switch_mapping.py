"""Table V: switch mapping results for CA (baseline) and CAMA (proposed).

Shape to reproduce: which benchmarks map entirely to RCB-mode switches,
which need FCB mode (RandomForest, EntityResolution fully; Snort,
Protomata, TCP partially), and which need global switches.  Counts are
at the context's scale (1/16 of the paper's by default); the paper
columns are printed scaled for comparison.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    for name in ctx.benchmarks:
        paper = ctx.benchmark(name).profile.paper
        baseline = ctx.baseline_mapping(name)
        mapping = ctx.program(name).mapping
        s = ctx.scale
        rows.append(
            [
                name,
                baseline.num_partitions,
                round(paper.baseline_local * s, 1),
                baseline.num_global_switches,
                paper.baseline_global,
                mapping.num_rcb_switches,
                round(paper.rcb_mode * s, 1),
                mapping.num_global_switches,
                paper.proposed_global,
                mapping.num_fcb_switches,
                round(paper.fcb_mode * s, 1),
            ]
        )
    return ExperimentTable(
        experiment="Table V — switch mapping (measured vs scaled paper)",
        headers=[
            "benchmark",
            "B.local",
            "B.local(paper*s)",
            "B.global",
            "B.global(paper)",
            "RCB",
            "RCB(paper*s)",
            "global",
            "global(paper)",
            "FCB",
            "FCB(paper*s)",
        ],
        rows=rows,
        notes=(
            "Global-switch counts do not scale linearly (they count "
            "arrays touched, not volume); compare which benchmarks need "
            "any at all."
        ),
    )
