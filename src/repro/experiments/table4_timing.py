"""Table IV: stage delays and clock frequencies per design.

Fully analytic (no workload dependence): the circuit library plus the
wire-delay model must reproduce the paper's row for every design.
"""

from __future__ import annotations

from repro.arch.timing import all_timings
from repro.experiments.common import ExperimentContext, ExperimentTable

_PAPER = {
    "CAMA-E": (325, 292, 420.1, 1.34, 1.21),
    "CAMA-T": (325, 292, 420.1, 2.38, 2.14),
    "2-stride Impala": (317, 394, 442.69, 2.26, 2.03),
    "eAP": (394, 394, 515, 1.94, 1.75),
    "CA": (416, 394, 493, 2.03, 1.82),
    "AP": (None, None, None, 0.133, 0.133),
}


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    for timing in all_timings(ctx.lib):
        paper = _PAPER[timing.design]
        rows.append(
            [
                timing.design,
                round(timing.state_match_ps, 1) if paper[0] else "-",
                paper[0] or "-",
                round(timing.global_switch_ps, 1) if paper[2] else "-",
                paper[2] or "-",
                round(timing.freq_max_ghz, 3),
                paper[3],
                round(timing.freq_operated_ghz, 3),
                paper[4],
            ]
        )
    return ExperimentTable(
        experiment="Table IV — delays and frequency (measured vs paper)",
        headers=[
            "design",
            "SM ps",
            "SM ps(paper)",
            "G-sw ps",
            "G-sw ps(paper)",
            "f_max GHz",
            "f_max(paper)",
            "f_op GHz",
            "f_op(paper)",
        ],
        rows=rows,
    )
