"""Fig. 11: compute density (a), energy per symbol (b), power (c).

All three panels are normalized to CAMA-E, as in the paper.  Headline
shapes: CAMA-T has the highest compute density (2.68x Impala, 3.87x CA,
2.62x eAP on average); CAMA-E has the lowest energy (2.1x vs CA, 2.8x
vs Impala, 2.04x vs eAP and CAMA-T) and the lowest power.
"""

from __future__ import annotations

from repro.experiments.common import (
    DESIGNS,
    ExperimentContext,
    ExperimentTable,
    geometric_mean,
)

PAPER_AVG_ENERGY_RATIO = {"CA": 2.1, "2-stride Impala": 2.8, "eAP": 2.04, "CAMA-T": 2.04}
PAPER_AVG_DENSITY_RATIO_CAMA_T = {"2-stride Impala": 2.68, "CA": 3.87, "eAP": 2.62}


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    ratios: dict[str, list[float]] = {d: [] for d in DESIGNS}
    density_t: dict[str, list[float]] = {d: [] for d in DESIGNS}
    for name in ctx.benchmarks:
        density = {}
        energy = {}
        power = {}
        for design in DESIGNS:
            build = ctx.build(name, design)
            stats = ctx.stats(name, design)
            density[design] = build.compute_density_gbps_mm2()
            energy[design] = build.energy(stats).per_cycle_pj()
            power[design] = build.power_w(stats)
        base_e = energy["CAMA-E"]
        base_d = density["CAMA-E"]
        base_p = power["CAMA-E"]
        for design in DESIGNS:
            ratios[design].append(energy[design] / base_e)
            density_t[design].append(density["CAMA-T"] / density[design])
        rows.append(
            [
                name,
                round(base_d, 2),
                round(base_e, 1),
                round(base_p, 3),
                *(round(density[d] / base_d, 2) for d in DESIGNS[1:]),
                *(round(energy[d] / base_e, 2) for d in DESIGNS[1:]),
            ]
        )
    avg_energy = {d: geometric_mean(ratios[d]) for d in DESIGNS}
    avg_density = {d: geometric_mean(density_t[d]) for d in DESIGNS}
    notes_lines = ["Average energy ratio vs CAMA-E (measured, paper):"]
    for design, paper_value in PAPER_AVG_ENERGY_RATIO.items():
        notes_lines.append(
            f"  {design}: {avg_energy[design]:.2f}x (paper {paper_value}x)"
        )
    notes_lines.append("Average CAMA-T compute-density advantage (measured, paper):")
    for design, paper_value in PAPER_AVG_DENSITY_RATIO_CAMA_T.items():
        notes_lines.append(
            f"  vs {design}: {avg_density[design]:.2f}x (paper {paper_value}x)"
        )
    return ExperimentTable(
        experiment=(
            "Fig 11 — compute density / energy / power "
            "(CAMA-E absolutes, then ratios to CAMA-E)"
        ),
        headers=[
            "benchmark",
            "CAMA-E Gbps/mm2",
            "CAMA-E pJ/cyc",
            "CAMA-E W",
            *(f"dens {d}" for d in DESIGNS[1:]),
            *(f"energy {d}" for d in DESIGNS[1:]),
        ],
        rows=rows,
        notes="\n".join(notes_lines),
    )
