"""Extra experiment: output-report characterization (paper §VI.B).

The paper sizes CAMA's 64-entry output buffer citing Wadden et al.'s
observation that 10 of 12 ANMLZoo benchmarks average < 0.5 reports per
cycle, which lets output interrupts hide behind the 128-entry input
buffer's refill interrupts.  This harness measures the report rate and
the interrupt balance per benchmark — the reproduction of that sizing
argument.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.buffers import buffer_activity
from repro.sim.reports import Report


def run(ctx: ExperimentContext) -> ExperimentTable:
    rows = []
    hidden_count = 0
    for name in ctx.benchmarks:
        engine = ctx.engine(name)
        data = ctx.stream(name)
        result = engine.run(data)
        reports = [Report(0, 0)] * result.stats.num_reports
        activity = buffer_activity(len(data), reports)
        hidden_count += activity.output_hidden
        rows.append(
            [
                name,
                round(result.stats.report_rate(), 4),
                result.stats.num_reports,
                activity.input_interrupts,
                activity.output_interrupts,
                "yes" if activity.output_hidden else "no",
            ]
        )
    notes = (
        f"Output interrupts hidden behind input interrupts on "
        f"{hidden_count}/{len(rows)} benchmarks (the paper's sizing "
        "argument holds whenever the report rate stays below ~0.5/cycle)."
    )
    return ExperimentTable(
        experiment="Extra — report rates and buffer interrupts (§VI.B)",
        headers=[
            "benchmark",
            "reports/cycle",
            "reports",
            "input irq",
            "output irq",
            "hidden",
        ],
        rows=rows,
        notes=notes,
    )
