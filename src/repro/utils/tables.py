"""Plain-text table rendering for experiment output.

The experiment harnesses print the same rows the paper's tables report;
this module renders them with aligned columns so the output can be
diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)
