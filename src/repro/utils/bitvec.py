"""Fixed-width bitset helpers on top of Python integers.

Symbol classes, CAM codes and CAM entries are all fixed-width bit
strings.  Python integers give constant-factor-fast bitwise operations
on 256-bit values, so the whole library represents bit vectors as plain
``int`` masks plus an explicit width carried by the owning object.
Bit ``i`` of a mask corresponds to element ``i`` (symbol value, code
position, ...).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def popcount(mask: int) -> int:
    """Number of set bits in ``mask``."""
    return mask.bit_count()


def mask_of_width(width: int) -> int:
    """An all-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_positions(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_from_positions(positions: Iterable[int]) -> int:
    """Build a mask with the given bit positions set."""
    mask = 0
    for pos in positions:
        if pos < 0:
            raise ValueError(f"bit position must be non-negative, got {pos}")
        mask |= 1 << pos
    return mask


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield every submask of ``mask`` (including 0 and ``mask`` itself).

    Uses the standard ``(sub - 1) & mask`` enumeration; the caller is
    responsible for keeping ``popcount(mask)`` small.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask
