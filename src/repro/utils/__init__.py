"""Small shared utilities: bit vectors and table rendering."""

from repro.utils.bitvec import (
    bit_positions,
    bits_from_positions,
    iter_submasks,
    mask_of_width,
    popcount,
)
from repro.utils.tables import format_table

__all__ = [
    "bit_positions",
    "bits_from_positions",
    "iter_submasks",
    "mask_of_width",
    "popcount",
    "format_table",
]
