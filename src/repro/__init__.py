"""repro — a full reproduction of CAMA (HPCA 2022).

CAMA is a content-addressable-memory automata accelerator.  This
package provides the automata substrate, a reference cycle simulator,
the CAMA encoding/compression/mapping framework, architecture models of
CAMA and its baselines (CA, Impala, eAP, AP), the synthetic benchmark
suite, and the experiment harnesses that regenerate the paper's tables
and figures.  See DESIGN.md for the inventory and EXPERIMENTS.md for
paper-vs-measured results.

:mod:`repro.api` is the documented front door — typed configs
(:class:`CompileConfig` / :class:`ScanConfig`) plus the fluent
:class:`Ruleset` facade over compile, engines, service and server; its
names are re-exported here::

    from repro import Ruleset, ScanConfig

    handle = Ruleset.from_regexes({"r1": "(a|b)e*cd+"}).compile(
        scan=ScanConfig(num_shards=4)
    )
    result = handle.scan(payload)
"""

from repro.automata import (
    Automaton,
    StartKind,
    SymbolClass,
    compile_regex_set,
    glushkov_nfa,
    load_anml,
    load_mnrl,
)
from repro.errors import ConfigError
from repro.sim import Engine, Report, SimulationResult

__version__ = "1.1.0"

__all__ = [
    "Automaton",
    "CompileConfig",
    "ConfigError",
    "Engine",
    "Report",
    "Ruleset",
    "RulesetHandle",
    "ScanConfig",
    "SimulationResult",
    "StartKind",
    "SymbolClass",
    "compile_regex_set",
    "glushkov_nfa",
    "load_anml",
    "load_mnrl",
    "__version__",
]

#: facade names served lazily so ``import repro`` stays light (the
#: service/server stack loads only when the facade is actually used)
_API_EXPORTS = ("CompileConfig", "Ruleset", "RulesetHandle", "ScanConfig")


def __getattr__(name: str):
    if name in _API_EXPORTS:
        import repro.api as api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_EXPORTS))
