"""repro — a full reproduction of CAMA (HPCA 2022).

CAMA is a content-addressable-memory automata accelerator.  This
package provides the automata substrate, a reference cycle simulator,
the CAMA encoding/compression/mapping framework, architecture models of
CAMA and its baselines (CA, Impala, eAP, AP), the synthetic benchmark
suite, and the experiment harnesses that regenerate the paper's tables
and figures.  See DESIGN.md for the inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.automata import (
    Automaton,
    StartKind,
    SymbolClass,
    compile_regex_set,
    glushkov_nfa,
    load_anml,
    load_mnrl,
)
from repro.sim import Engine, Report, SimulationResult

__version__ = "1.0.0"

__all__ = [
    "Automaton",
    "Engine",
    "Report",
    "SimulationResult",
    "StartKind",
    "SymbolClass",
    "compile_regex_set",
    "glushkov_nfa",
    "load_anml",
    "load_mnrl",
    "__version__",
]
