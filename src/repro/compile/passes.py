"""The compilation passes (paper §V.B, §VI, staged).

Each pass is a small object with a ``name``, the IR fields it
``requires`` / ``produces`` (checked by the :class:`~repro.compile.
pipeline.Pipeline` driver), and a ``run(state)`` that mutates the
:class:`~repro.compile.ir.PipelineState` in place and returns a detail
dict for the timing trace.  A pass may *skip itself* by returning a
reason string from :meth:`applies`, so one pipeline definition covers
every configuration (program-only, kernel-only, strided) without
callers assembling pass lists by hand.

The default order mirrors the paper's toolchain::

    parse -> optimize -> stride -> encode -> map -> kernel
"""

from __future__ import annotations

from pathlib import Path

from repro.automata.nfa import Automaton
from repro.automata.optimize import optimize as optimize_automaton
from repro.automata.striding import stride2
from repro.compile.ir import PipelineState
from repro.errors import ReproError


def load_source(source, *, name: str | None = None) -> Automaton:
    """Resolve any accepted ruleset source into an :class:`Automaton`.

    Accepts an :class:`Automaton` (validated and passed through), a
    file path (ANML ``.anml``/``.xml``, MNRL ``.mnrl``/``.json``, or a
    newline-separated regex list ``.regex``/``.txt``), or a regex rule
    set as a dict/list of patterns.
    """
    from repro.automata import compile_regex_set, load_anml, load_mnrl

    if isinstance(source, Automaton):
        source.validate()
        return source
    if isinstance(source, (dict, list, tuple)):
        if not source:
            raise ReproError("cannot compile an empty regex rule set")
        return compile_regex_set(source, name=name or "ruleset")
    if isinstance(source, (str, Path)):
        file = Path(source)
        if not file.exists():
            raise ReproError(f"no such file: {source}")
        suffix = file.suffix.lower()
        if suffix in (".anml", ".xml"):
            return load_anml(file)
        if suffix in (".mnrl", ".json"):
            return load_mnrl(file)
        if suffix in (".regex", ".txt"):
            patterns = [
                line.strip()
                for line in file.read_text().splitlines()
                if line.strip() and not line.startswith("#")
            ]
            return compile_regex_set(patterns, name=name or file.stem)
        raise ReproError(
            f"unrecognized automaton format {suffix!r} "
            f"(expected .anml/.xml, .mnrl/.json, or .regex/.txt)"
        )
    raise ReproError(
        f"cannot compile a {type(source).__name__} "
        f"(expected an Automaton, a file path, or regex rules)"
    )


class CompilePass:
    """Base class: one stage of the pipeline."""

    #: stable pass name (appears in timings, manifests, and the CLI)
    name: str = "pass"
    #: IR fields that must be populated before this pass runs
    requires: tuple[str, ...] = ()
    #: IR fields this pass fills in
    produces: tuple[str, ...] = ()

    def applies(self, state: PipelineState) -> str | None:
        """None to run; a human-readable reason string to skip."""
        return None

    def run(self, state: PipelineState) -> dict:
        """Execute the pass, mutating ``state``; returns timing detail."""
        raise NotImplementedError


class ParsePass(CompilePass):
    """Resolve the caller's source into a validated automaton."""

    name = "parse"
    produces = ("automaton",)

    def run(self, state: PipelineState) -> dict:
        state.automaton = load_source(state.source)
        return {
            "states": len(state.automaton),
            "transitions": state.automaton.num_transitions(),
        }


class OptimizePass(CompilePass):
    """VASim-style dead-state removal + common-prefix merging."""

    name = "optimize"
    requires = ("automaton",)
    produces = ("optimization",)

    def applies(self, state: PipelineState) -> str | None:
        return None if state.options.optimize else "options.optimize=False"

    def run(self, state: PipelineState) -> dict:
        state.automaton, state.optimization = optimize_automaton(
            state.automaton
        )
        report = state.optimization
        return {
            "before": report.states_before,
            "after": report.states_after,
            "passes": report.passes,
        }


class StridePass(CompilePass):
    """Temporal 2-striding (one automaton step per symbol pair)."""

    name = "stride"
    requires = ("automaton",)
    produces = ("strided",)

    def applies(self, state: PipelineState) -> str | None:
        return None if state.options.stride == 2 else "stride=1"

    def run(self, state: PipelineState) -> dict:
        state.strided = stride2(state.automaton)
        return {
            "strided_states": len(state.strided),
            "strided_transitions": state.strided.num_transitions(),
        }


class EncodingPass(CompilePass):
    """Encoding-scheme selection + per-state CAM realization (§V)."""

    name = "encode"
    requires = ("automaton",)
    produces = ("choice", "state_encodings")

    def applies(self, state: PipelineState) -> str | None:
        if state.options.stride != 1:
            return "CAMA encoding applies at stride 1 only"
        return None

    def run(self, state: PipelineState) -> dict:
        from repro.core.compiler import CamaCompiler
        from repro.core.encoding.negation import encode_state_class

        options = state.options
        automaton = state.automaton
        # CamaCompiler.select is the one home of the selection policy
        # (fixed-32-bit baseline vs the paper's Eq. 1/2 sweep)
        choice = CamaCompiler(
            allow_negation=options.allow_negation,
            clustered=options.clustered,
            fixed_32bit=options.fixed_32bit,
        ).select(automaton)
        # Benchmarks reuse symbol classes heavily; memoize per class mask.
        cache: dict[int, object] = {}

        def encode(symbol_class):
            key = symbol_class.mask
            if key not in cache:
                cache[key] = encode_state_class(
                    choice.encoding,
                    symbol_class,
                    allow_negation=options.allow_negation,
                )
            return cache[key]

        state.choice = choice
        state.state_encodings = [
            encode(ste.symbol_class) for ste in automaton.states
        ]
        return {
            "scheme": choice.scheme,
            "code_length": choice.code_length,
            "entries": sum(se.num_entries for se in state.state_encodings),
        }


class MappingPass(CompilePass):
    """CAM mapping/placement onto the fabric + input-encoder build (§VI)."""

    name = "map"
    requires = ("automaton", "choice", "state_encodings")
    produces = ("mapping", "encoder")

    def applies(self, state: PipelineState) -> str | None:
        if state.options.stride != 1:
            return "CAMA mapping applies at stride 1 only"
        return None

    def run(self, state: PipelineState) -> dict:
        from repro.core.encoding.encoder import InputEncoder
        from repro.core.mapping import map_automaton

        state.mapping = map_automaton(
            state.automaton, state.choice.encoding, state.state_encodings
        )
        state.encoder = InputEncoder(state.choice.encoding)
        return {
            "tiles": state.mapping.num_tiles,
            "cross_edges": len(state.mapping.cross_edges),
        }


class KernelPass(CompilePass):
    """Prebuild the execution kernel for the configured backend hint."""

    name = "kernel"
    requires = ("automaton",)
    produces = ("kernel",)

    def applies(self, state: PipelineState) -> str | None:
        if state.options.backend is None:
            return "options.backend=None (program-only compilation)"
        return None

    def run(self, state: PipelineState) -> dict:
        from repro.sim.backends import get_backend
        from repro.sim.engine import StridedEngine

        if state.options.stride == 2:
            if state.strided is None:
                raise ReproError("stride pass did not run before kernel pass")
            state.kernel = StridedEngine(
                state.strided, backend=state.options.backend
            )
            return {"backend": state.kernel.backend_name, "strided": True}
        state.kernel = get_backend(state.options.backend).compile(
            state.automaton
        )
        return {"backend": state.kernel.name}


#: the default pass order; Pipeline copies it so callers can extend
DEFAULT_PASSES: tuple[CompilePass, ...] = (
    ParsePass(),
    OptimizePass(),
    StridePass(),
    EncodingPass(),
    MappingPass(),
    KernelPass(),
)
