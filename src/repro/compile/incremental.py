"""Incremental compilation: per-component artifacts, composed engines.

Transitions never cross weakly-connected components (the property the
sharded dispatcher already exploits), so a ruleset's compile output is
exactly the disjoint union of its components' compile outputs.  This
module turns that into a cache strategy:

* each reporting component is compiled to its own
  :class:`~repro.compile.artifact.CompiledArtifact`, keyed by
  :func:`~repro.compile.fingerprint.component_fingerprint` — a key that
  survives pattern reordering and any edit to *other* components;
* a cheap JSON *composition manifest*, keyed by the whole ruleset's
  :func:`~repro.compile.fingerprint.ruleset_fingerprint`, records which
  component keys compose the ruleset;
* recompiling after an edit detects unchanged components by fingerprint
  *before any pipeline pass runs* and reuses their cached artifacts;
  only genuinely new components go through the pipeline — concurrently,
  via a process pool, when more than one needs compiling;
* the composed result rebuilds dispatcher-ready shards by merging
  cached per-component kernel tables block-diagonally
  (:meth:`KernelTables.concat`) instead of re-deriving anything.

:func:`apply_update` is the automaton-level edit operation behind
``Ruleset.update(add=..., remove=...)`` and the server's hot-swap op:
it drops the components of removed report codes and merges freshly
parsed patterns, preserving every untouched component's relative state
order — and therefore its fingerprint.
"""

from __future__ import annotations

import multiprocessing
from collections import OrderedDict
from dataclasses import dataclass

from repro.automata.analysis import (
    balanced_component_groups,
    connected_components,
)
from repro.automata.nfa import Automaton
from repro.compile.artifact import CompiledArtifact
from repro.compile.fingerprint import (
    component_fingerprint,
    composition_key,
    ruleset_fingerprint,
)
from repro.compile.ir import PipelineOptions
from repro.compile.pipeline import compile_ruleset
from repro.compile.store import ArtifactStore
from repro.errors import ConfigError
from repro.telemetry.metrics import default_registry

MANIFEST_FORMAT_VERSION = 1

#: in-memory component-artifact cache entries kept when no store backs
#: the compiler (and as a first level in front of the store)
DEFAULT_MEMORY_ENTRIES = 512

_COMPONENTS = default_registry().counter(
    "repro_incremental_components_total",
    "Per-component incremental compile outcomes "
    "(memory/disk = cached artifact reused, compiled = pipeline ran)",
    ("outcome",),
)


def _compile_component_job(task):
    """Process-pool job: compile one component, return artifact bytes.

    Top-level so it pickles under any multiprocessing start method; the
    artifact round-trips as bytes because engines and kernels do not
    cross process boundaries.
    """
    sub, options = task
    compiled = compile_ruleset(sub, options)
    return CompiledArtifact.from_compiled(compiled).to_bytes()


@dataclass
class ComponentCompile:
    """One component's share of a composed ruleset."""

    key: str
    #: the component's state ids in the *parent* automaton (sorted)
    states: list[int]
    artifact: CompiledArtifact
    reused: bool


@dataclass
class ComposedRuleset:
    """The output of an incremental compile: components + composition.

    Functionally equivalent to a monolithic
    :class:`~repro.compile.ir.CompiledRuleset` of the same automaton —
    :meth:`build_shards` produces shard/engine pairs whose merged scan
    reports are byte-identical to a cold compile (the dispatcher's
    report merge orders by ``(cycle, global state id)``, erasing any
    difference in per-shard state layout).
    """

    automaton: Automaton
    options: PipelineOptions
    #: artifact key of the whole ruleset (state-order dependent)
    key: str
    #: language fingerprint of the whole ruleset (no options)
    fingerprint: str
    #: order-independent digest of the component key set
    composition_key: str
    components: list[ComponentCompile]
    #: states in non-reporting components, dropped from execution
    num_dropped_states: int = 0

    @property
    def reused_components(self) -> int:
        return sum(1 for c in self.components if c.reused)

    @property
    def compiled_components(self) -> int:
        return sum(1 for c in self.components if not c.reused)

    @property
    def component_keys(self) -> tuple[str, ...]:
        return tuple(c.key for c in self.components)

    def manifest(self) -> dict:
        """The JSON composition manifest persisted next to the artifacts."""
        return {
            "format_version": MANIFEST_FORMAT_VERSION,
            "key": self.key,
            "ruleset_fingerprint": self.fingerprint,
            "composition_key": self.composition_key,
            "options": self.options.to_dict(),
            "num_states": len(self.automaton),
            "num_dropped_states": self.num_dropped_states,
            "components": [
                {"key": c.key, "states": list(c.states)}
                for c in self.components
            ],
        }

    def build_shards(self, num_shards: int, backend=None):
        """Compose dispatcher-ready ``(shards, engines)`` from the cache.

        Components are packed into shard groups by the exact greedy
        rule :func:`make_shards` uses (same membership), but each
        shard's automaton and kernel tables are *composed* from the
        cached per-component artifacts — merged states plus a
        block-diagonal :meth:`KernelTables.concat` — so no table is
        re-derived from scratch.
        """
        from repro.service.sharding import Shard
        from repro.sim.backends.base import KernelTables

        if backend is None:
            backend = self.options.backend or "sparse"
        groups = balanced_component_groups(
            [c.states for c in self.components], num_shards
        )
        shards: list = []
        engines: list = []
        for index, member_indices in enumerate(groups):
            merged = Automaton(name=f"{self.automaton.name}.shard{index}")
            global_ids: list[int] = []
            tables: list[KernelTables] = []
            sizes: list[int] = []
            for ci in member_indices:
                part = self.components[ci]
                merged.merge(part.artifact.automaton())
                global_ids.extend(part.states)
                tables.append(part.artifact.kernel_tables())
                sizes.append(len(part.states))
            engine = engine_from_tables(
                merged, KernelTables.concat(tables, sizes), backend
            )
            shards.append(
                Shard(index=index, automaton=merged, global_ids=global_ids)
            )
            engines.append(engine)
        return shards, engines


def engine_from_tables(automaton: Automaton, tables, backend: str):
    """Build an :class:`Engine` from precomputed tables, like
    :meth:`CompiledArtifact.engine` — same backend dispatch, including
    the ``auto`` policy's dense-family upgrade."""
    from repro.sim.backends import choose_backend_name
    from repro.sim.backends.bitparallel import BitParallelKernel
    from repro.sim.backends.native import dense_backend
    from repro.sim.backends.sparse import SparseKernel
    from repro.sim.engine import Engine

    name = backend or "sparse"
    if name == "auto":
        name = choose_backend_name(automaton)
        if name == "bitparallel":
            name = dense_backend().name
    if name == "native":
        kernel = dense_backend().from_tables(automaton, tables)
    elif name == "bitparallel":
        kernel = BitParallelKernel(automaton, tables=tables)
    elif name == "sparse":
        kernel = SparseKernel(automaton, tables=tables)
    else:
        raise ConfigError(f"unknown execution backend {name!r}")
    return Engine.from_kernel(kernel)


@dataclass
class IncrementalStats:
    reused_memory: int = 0
    reused_disk: int = 0
    compiled: int = 0

    @property
    def reused(self) -> int:
        return self.reused_memory + self.reused_disk


class IncrementalCompiler:
    """Compile rulesets component-by-component, reusing cached artifacts.

    Backed by an :class:`ArtifactStore` when one is given (per-component
    ``.npz`` files plus ``<ruleset key>.manifest.json`` sidecars) and
    always by a bounded in-memory artifact LRU, so storeless services
    still get fast updates within one process.

    Only stride-1, non-optimizing option sets are supported: the
    optimizer renumbers states globally and 2-striding fuses symbols
    across positions, either of which would break the per-component
    id arithmetic composition relies on.  (The service layer already
    forces exactly these options for its engines.)
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        options: PipelineOptions | None = None,
        *,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        options = options or PipelineOptions()
        if options.stride != 1 or options.optimize:
            raise ConfigError(
                "incremental compilation requires stride=1 and "
                "optimize=False (got stride="
                f"{options.stride}, optimize={options.optimize})"
            )
        self.options = options
        self.store = store
        self.stats = IncrementalStats()
        self._memory: OrderedDict[str, CompiledArtifact] = OrderedDict()
        self._memory_entries = memory_entries

    # -- cache plumbing ---------------------------------------------------

    def _lookup(self, key: str) -> CompiledArtifact | None:
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats.reused_memory += 1
            _COMPONENTS.labels("memory").inc()
            return cached
        if self.store is not None:
            artifact = self.store.get(key)
            if artifact is not None:
                self._remember(artifact)
                self.stats.reused_disk += 1
                _COMPONENTS.labels("disk").inc()
                return artifact
        return None

    def _remember(self, artifact: CompiledArtifact) -> None:
        self._memory[artifact.key] = artifact
        self._memory.move_to_end(artifact.key)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)

    def _admit(self, artifact: CompiledArtifact) -> None:
        self._remember(artifact)
        if self.store is not None:
            self.store.put(artifact)

    # -- the incremental path ---------------------------------------------

    def plan(self, automaton: Automaton):
        """``(components, keys, cached)`` for ``automaton``'s reporting
        components — the unchanged-component detection step, run before
        any pipeline pass.  ``cached[i]`` is the reusable artifact or
        None when component ``i`` must be compiled."""
        automaton.validate()
        components = [
            comp
            for comp in connected_components(automaton)
            if any(automaton.states[s].reporting for s in comp)
        ]
        keys = [
            component_fingerprint(automaton, comp, self.options)
            for comp in components
        ]
        cached = [self._lookup(key) for key in keys]
        return components, keys, cached

    def compile(
        self,
        automaton: Automaton,
        *,
        workers: int = 1,
        mp_start_method: str | None = None,
    ) -> ComposedRuleset:
        """Compile ``automaton``, reusing every cached component.

        Missing components compile through the full pipeline — in a
        process pool of up to ``workers`` when more than one is missing
        (the same fan-out model as the dispatcher's sharded scans).
        """
        components, keys, cached = self.plan(automaton)
        missing = [i for i, artifact in enumerate(cached) if artifact is None]
        if missing:
            subs = [
                automaton.subautomaton(
                    components[i], name=f"{automaton.name}.c{i}"
                )
                for i in missing
            ]
            fresh = self._compile_missing(
                subs, workers=workers, mp_start_method=mp_start_method
            )
            for i, artifact in zip(missing, fresh):
                if artifact.key != keys[i]:
                    raise ConfigError(
                        "component artifact key mismatch: expected "
                        f"{keys[i][:12]}..., compiled {artifact.key[:12]}..."
                    )
                cached[i] = artifact
                self._admit(artifact)
            self.stats.compiled += len(missing)
            for _ in missing:
                _COMPONENTS.labels("compiled").inc()
        parts = [
            ComponentCompile(
                key=keys[i],
                states=components[i],
                artifact=cached[i],
                reused=i not in set(missing),
            )
            for i in range(len(components))
        ]
        composed = ComposedRuleset(
            automaton=automaton,
            options=self.options,
            key=ruleset_fingerprint(automaton, self.options),
            fingerprint=ruleset_fingerprint(automaton),
            composition_key=composition_key(keys),
            components=parts,
            num_dropped_states=len(automaton)
            - sum(len(c) for c in components),
        )
        if self.store is not None:
            self.store.put_manifest(composed.key, composed.manifest())
        return composed

    def _compile_missing(
        self,
        subs: list[Automaton],
        *,
        workers: int,
        mp_start_method: str | None,
    ) -> list[CompiledArtifact]:
        if workers > 1 and len(subs) > 1:
            ctx = multiprocessing.get_context(mp_start_method)
            tasks = [(sub, self.options) for sub in subs]
            with ctx.Pool(processes=min(workers, len(subs))) as pool:
                blobs = pool.map(_compile_component_job, tasks)
            return [CompiledArtifact.from_bytes(blob) for blob in blobs]
        return [
            CompiledArtifact.from_compiled(compile_ruleset(sub, self.options))
            for sub in subs
        ]


def incremental_compile(
    automaton: Automaton,
    options: PipelineOptions | None = None,
    *,
    store: ArtifactStore | None = None,
    workers: int = 1,
) -> ComposedRuleset:
    """One-call front door: compile ``automaton`` incrementally against
    ``store`` (cold when the store is empty or None)."""
    return IncrementalCompiler(store, options).compile(
        automaton, workers=workers
    )


# -- ruleset edits --------------------------------------------------------


def apply_update(
    automaton: Automaton,
    *,
    add=None,
    remove=None,
    name: str | None = None,
) -> Automaton:
    """A new automaton with patterns added and/or report codes removed.

    ``remove`` names report codes; each removed code drops its whole
    connected component.  A component carrying both removed and kept
    codes is refused — silently deleting the kept patterns would be a
    correctness trap.  ``add`` is a mapping ``{code: pattern}`` (or a
    plain list of patterns, each reporting its own text), parsed exactly
    like :func:`~repro.automata.glushkov.compile_regex_set`.

    Untouched components keep their relative state order, so their
    :func:`component_fingerprint` — and the incremental compiler's
    cached artifacts — survive the edit.
    """
    from repro.automata.glushkov import compile_regex_set

    if not add and not remove:
        raise ConfigError("apply_update needs add= and/or remove=")
    new_name = name or automaton.name
    keep: list[int]
    if remove:
        remove_set = {str(code) for code in remove}
        keep = []
        found: set[str] = set()
        for comp in connected_components(automaton):
            codes = {
                automaton.states[s].report_code
                for s in comp
                if automaton.states[s].reporting
            }
            hit = codes & remove_set
            if not hit:
                keep.extend(comp)
                continue
            kept_codes = codes - remove_set
            if kept_codes:
                raise ConfigError(
                    f"cannot remove {sorted(hit)}: component also reports "
                    f"{sorted(kept_codes)}, which would be deleted with it"
                )
            found |= hit
        unknown = remove_set - found
        if unknown:
            raise ConfigError(
                f"cannot remove unknown report codes: {sorted(unknown)}"
            )
        keep.sort()
    else:
        keep = list(range(len(automaton)))
    updated = Automaton(name=new_name)
    if keep:
        updated = automaton.subautomaton(keep, name=new_name)
    if add:
        updated.merge(compile_regex_set(add, name=f"{new_name}.add"))
    if not len(updated):
        raise ConfigError("update would remove every pattern")
    updated.validate()
    return updated
