"""Typed intermediate representation of the staged compilation pipeline.

The pipeline (:mod:`repro.compile.pipeline`) threads one
:class:`PipelineState` through its passes; every pass reads the fields
it *requires* and fills in the fields it *produces* (declared on the
pass class and checked by the driver, so a mis-ordered pipeline fails
loudly instead of with an ``AttributeError`` three passes later).
:class:`PipelineOptions` is the immutable configuration every pass
sees; it also defines the *option digest* mixed into artifact keys so
two differently configured compilations can never alias one cache
entry.  The finished product is a :class:`CompiledRuleset`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.config import SUPPORTED_STRIDES, CompileConfig
from repro.automata.nfa import Automaton
from repro.automata.optimize import OptimizationReport
from repro.automata.striding import StridedAutomaton
from repro.errors import ReproError

#: the pipeline's configuration object, canonically defined as
#: :class:`repro.api.config.CompileConfig`; this alias keeps the name
#: every pass, artifact manifest and pre-facade caller was built
#: against (the two are the *same class* — field set, ``to_dict`` form
#: and ``digest`` are unchanged, so artifact keys never moved)
PipelineOptions = CompileConfig


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock record of one executed (or skipped) pass."""

    name: str
    seconds: float
    #: why the pass did not run (None when it did)
    skipped: str | None = None
    #: pass-specific facts (state counts, chosen scheme, kernel name...)
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "skipped": self.skipped,
            "detail": self.detail,
        }


def render_timing_rows(timings) -> list[list]:
    """``[pass, ms, note]`` table rows from :class:`PassTiming` objects
    or their ``to_dict`` form (e.g. out of an artifact manifest) — the
    one renderer behind ``repro compile --timings`` and ``repro
    inspect``, ending with a total row."""
    rows = []
    total = 0.0
    for timing in timings:
        if isinstance(timing, PassTiming):
            timing = timing.to_dict()
        total += timing["seconds"]
        note = timing.get("skipped") or ", ".join(
            f"{k}={v}" for k, v in (timing.get("detail") or {}).items()
        )
        rows.append([timing["name"], f"{timing['seconds'] * 1e3:.2f}", note])
    rows.append(["total", f"{total * 1e3:.2f}", ""])
    return rows


@dataclass
class PipelineState:
    """The mutable IR threaded through the passes.

    Field population by pass (``-`` = untouched)::

        pass       automaton  optimization  strided  choice+encodings  mapping+encoder  kernel
        parse      set        -             -        -                 -                -
        optimize   replaced   set           -        -                 -                -
        stride     -          -             set      -                 -                -
        encode     -          -             -        set               -                -
        map        -          -             -        -                 set              -
        kernel     -          -             -        -                 -                set
    """

    options: PipelineOptions
    #: what the caller handed the pipeline (path, text, Automaton, ...)
    source: object = None
    #: the (possibly optimized) 1-stride automaton under compilation
    automaton: Automaton | None = None
    #: what the optimization pass did, when it ran
    optimization: OptimizationReport | None = None
    #: the 2-strided automaton (stride=2 pipelines only)
    strided: StridedAutomaton | None = None
    #: encoding selection output (:class:`EncodingChoice`)
    choice: object = None
    #: per-state CAM realizations (list of :class:`StateEncoding`)
    state_encodings: list | None = None
    #: CAM placement (:class:`CamaMapping`)
    mapping: object = None
    #: the 256x32 input-encoder model (:class:`InputEncoder`)
    encoder: object = None
    #: prebuilt execution kernel (:class:`CompiledKernel`) or, at
    #: stride 2, the :class:`StridedEngine`
    kernel: object = None
    timings: list[PassTiming] = field(default_factory=list)


@dataclass
class CompiledRuleset:
    """The pipeline's finished product.

    Bundles everything downstream consumers need: the executed
    automaton, the compiled CAMA program (stride-1 pipelines that ran
    the encode/map passes), the prebuilt execution kernel, and the
    per-pass timing trace.  Convert to a shippable on-disk form with
    :meth:`repro.compile.artifact.CompiledArtifact.from_compiled`.
    """

    automaton: Automaton
    options: PipelineOptions
    #: artifact key: language fingerprint + option digest
    key: str
    program: object = None
    kernel: object = None
    strided: StridedAutomaton | None = None
    optimization: OptimizationReport | None = None
    timings: list[PassTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    def engine(self, **engine_kwargs):
        """Wrap the prebuilt kernel in an :class:`~repro.sim.engine.Engine`.

        At stride 2 the kernel *is* the :class:`StridedEngine` (its
        construction already fixed the execution strategy), so extra
        engine kwargs are rejected there.
        """
        from repro.sim.engine import Engine, StridedEngine

        if self.kernel is None:
            raise ReproError(
                "this ruleset was compiled without a kernel prebuild "
                "(options.backend=None); recompile with a backend"
            )
        if isinstance(self.kernel, StridedEngine):
            if engine_kwargs:
                raise ReproError(
                    "a strided kernel is already an engine; "
                    "per-engine options must be set at compile time"
                )
            return self.kernel
        return Engine.from_kernel(self.kernel, **engine_kwargs)

    def timing_rows(self) -> list[list]:
        """``[pass, ms, note]`` rows for the CLI's timing table."""
        return render_timing_rows(self.timings)


def timed(fn) -> tuple[object, float]:
    """Run ``fn()`` and return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
