"""On-disk artifact store: a content-addressed cache with a byte budget.

One :class:`ArtifactStore` manages a directory of ``<key>.npz``
artifacts (``key`` = ``ruleset_fingerprint(automaton, options)``).  It
is the *second-level* cache behind the in-memory LRUs of
:class:`~repro.service.ruleset.RulesetManager`: process restarts and
spawn workers hit the disk instead of recompiling, and several
processes can share one store directory (writes are atomic
tmp-file-plus-rename, reads treat any unreadable file as a miss).

Eviction is LRU by *bytes*, not entries: when the directory exceeds
``max_bytes`` the least-recently-used artifacts (by file mtime, which
:meth:`get` refreshes on every hit) are deleted until the budget holds
again.  Corrupt or version-mismatched files are deleted on sight and
counted in :attr:`StoreStats.invalid`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.compile.artifact import CompiledArtifact
from repro.errors import ArtifactError, ReproError

#: default disk budget: plenty for a service's working set of rulesets
DEFAULT_STORE_BYTES = 512 * 1024 * 1024

_SUFFIX = ".npz"
_MANIFEST_SUFFIX = ".manifest.json"


@dataclass
class StoreStats:
    """Hit/miss/eviction counters of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: corrupt / version-mismatched files discarded
    invalid: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArtifactStore:
    """A directory of compiled artifacts with an LRU byte budget."""

    def __init__(
        self,
        root: str | Path,
        *,
        max_bytes: int = DEFAULT_STORE_BYTES,
    ) -> None:
        if max_bytes < 1:
            raise ReproError("artifact store byte budget must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        self._lock = threading.Lock()
        #: refcounted eviction pins (key -> count); pinned artifacts are
        #: referenced by a live ruleset version and must survive byte
        #: pressure — evicting one mid-hot-swap would force a recompile
        #: (or worse, fail a spawn worker shipping artifacts)
        self._pins: dict[str, int] = {}

    # -- paths ------------------------------------------------------------
    def path(self, key: str) -> Path:
        """Where ``key``'s artifact lives (whether or not it exists)."""
        if not key or any(c in key for c in "/\\."):
            raise ReproError(f"bad artifact key: {key!r}")
        return self.root / f"{key}{_SUFFIX}"

    def contains(self, key: str) -> bool:
        return self.path(key).exists()

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob(f"*{_SUFFIX}"))

    def __len__(self) -> int:
        return len(self.keys())

    def total_bytes(self) -> int:
        return sum(
            p.stat().st_size
            for p in self.root.glob(f"*{_SUFFIX}")
            if p.is_file()
        )

    # -- cache surface ----------------------------------------------------
    def get(self, key: str) -> CompiledArtifact | None:
        """Load ``key``'s artifact, or None (missing *or* unreadable).

        A hit refreshes the file's mtime — that is the LRU clock.  An
        unreadable or incompatible file is deleted so it cannot shadow
        a future :meth:`put` forever.
        """
        path = self.path(key)
        with self._lock:
            if not path.exists():
                self.stats.misses += 1
                return None
            try:
                artifact = CompiledArtifact.load(path)
            except ArtifactError:
                self.stats.invalid += 1
                self.stats.misses += 1
                path.unlink(missing_ok=True)
                return None
            self.stats.hits += 1
            try:
                os.utime(path, (time.time(), time.time()))
            except OSError:
                # a sharing process evicted the file after we read it;
                # the loaded artifact is still a perfectly good hit
                pass
            return artifact

    def put(self, artifact: CompiledArtifact) -> Path:
        """Write an artifact under its own content-addressed key."""
        with self._lock:
            path = artifact.save(self.path(artifact.key))
            self._evict_over_budget(keep=path)
            return path

    def clear(self) -> None:
        with self._lock:
            for path in self.root.glob(f"*{_SUFFIX}"):
                path.unlink(missing_ok=True)
            for path in self.root.glob(f"*{_MANIFEST_SUFFIX}"):
                path.unlink(missing_ok=True)
            self._pins.clear()

    # -- eviction pins -----------------------------------------------------
    def pin(self, keys) -> None:
        """Exempt ``keys`` from LRU eviction (refcounted).

        Live ruleset versions pin the component artifacts their
        composition manifests reference; byte-budget pressure then falls
        entirely on unpinned entries.
        """
        with self._lock:
            for key in keys:
                self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, keys) -> None:
        """Drop one pin reference per key; fully unpinned artifacts
        rejoin the LRU eviction pool."""
        with self._lock:
            for key in keys:
                count = self._pins.get(key, 0) - 1
                if count > 0:
                    self._pins[key] = count
                else:
                    self._pins.pop(key, None)

    def pinned_keys(self) -> set[str]:
        with self._lock:
            return set(self._pins)

    # -- composition manifests ---------------------------------------------
    def manifest_path(self, key: str) -> Path:
        """Where ``key``'s composition manifest lives."""
        if not key or any(c in key for c in "/\\."):
            raise ReproError(f"bad manifest key: {key!r}")
        return self.root / f"{key}{_MANIFEST_SUFFIX}"

    def put_manifest(self, key: str, manifest: dict) -> Path:
        """Atomically persist a composition manifest (JSON sidecar).

        Manifests are tiny and sit outside the byte budget: the budget
        protects against artifact bloat, and a manifest without its
        component artifacts is harmlessly re-derived on the next
        compile.
        """
        path = self.manifest_path(key)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(manifest, sort_keys=True))
        os.replace(tmp, path)
        return path

    def get_manifest(self, key: str) -> dict | None:
        """Load a composition manifest, or None (missing or corrupt)."""
        path = self.manifest_path(key)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def manifest_keys(self) -> list[str]:
        return sorted(
            p.name[: -len(_MANIFEST_SUFFIX)]
            for p in self.root.glob(f"*{_MANIFEST_SUFFIX}")
        )

    def _evict_over_budget(self, keep: Path) -> None:
        """Delete least-recently-used artifacts past the byte budget.

        The just-written artifact is never evicted, even when it alone
        exceeds the budget — the caller is about to use it.  Pinned
        artifacts are skipped too (they still count toward the total,
        so unpinned entries absorb the pressure).
        """
        entries = []
        total = 0
        for path in self.root.glob(f"*{_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:  # concurrently removed
                continue
            total += stat.st_size
            if path != keep and path.stem not in self._pins:
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            path.unlink(missing_ok=True)
            total -= size
            self.stats.evictions += 1

    def __repr__(self) -> str:
        return (
            f"ArtifactStore({str(self.root)!r}, entries={len(self)}, "
            f"max_bytes={self.max_bytes})"
        )
