"""On-disk artifact store: a content-addressed cache with a byte budget.

One :class:`ArtifactStore` manages a directory of ``<key>.npz``
artifacts (``key`` = ``ruleset_fingerprint(automaton, options)``).  It
is the *second-level* cache behind the in-memory LRUs of
:class:`~repro.service.ruleset.RulesetManager`: process restarts and
spawn workers hit the disk instead of recompiling, and several
processes can share one store directory (writes are atomic
tmp-file-plus-rename, reads treat any unreadable file as a miss).

Eviction is LRU by *bytes*, not entries: when the directory exceeds
``max_bytes`` the least-recently-used artifacts (by file mtime, which
:meth:`get` refreshes on every hit) are deleted until the budget holds
again.  Corrupt or version-mismatched files are deleted on sight and
counted in :attr:`StoreStats.invalid`.

Two cluster-facing extensions:

* **remote fetch seam** — construct with ``fetch=callable``; a local
  miss asks the callable for the artifact bytes by key and publishes
  them atomically before returning.  :func:`remote_fetcher` builds such
  a callable from another store (or plain directory): how fleet nodes
  pull compiled components from a shared store instead of recompiling.
* **cross-process pins** — :meth:`pin` also drops a per-process token
  file under ``<root>/.pins/<key>/``, so byte-pressure eviction in *any*
  process sharing the directory skips artifacts a sibling process still
  references.  Tokens of dead processes are swept opportunistically.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.compile.artifact import CompiledArtifact
from repro.errors import ArtifactError, ReproError

#: default disk budget: plenty for a service's working set of rulesets
DEFAULT_STORE_BYTES = 512 * 1024 * 1024

_SUFFIX = ".npz"
_MANIFEST_SUFFIX = ".manifest.json"
#: cross-process pin tokens live here (invisible to keys()/total_bytes,
#: whose globs are non-recursive)
_PINS_DIR = ".pins"


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def _rmdir_quiet(path: Path) -> None:
    """Remove a directory if (still) empty; races are fine."""
    try:
        path.rmdir()
    except OSError:
        pass


def remote_fetcher(source):
    """Build a ``fetch`` callable pulling artifact bytes from ``source``.

    ``source`` may be another :class:`ArtifactStore` or a directory path
    (the shared fleet store).  The returned callable maps a key to the
    raw ``.npz`` bytes, or None when the source does not have it —
    exactly the seam :class:`ArtifactStore(fetch=...)` consumes, so a
    node's local store becomes a read-through cache over the shared one::

        local = ArtifactStore(node_dir, fetch=remote_fetcher(shared_dir))
    """
    root = source.root if isinstance(source, ArtifactStore) else Path(source)

    def fetch(key: str) -> bytes | None:
        path = root / f"{key}{_SUFFIX}"
        try:
            return path.read_bytes()
        except OSError:
            return None

    return fetch


@dataclass
class StoreStats:
    """Hit/miss/eviction counters of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: corrupt / version-mismatched files discarded
    invalid: int = 0
    #: local misses satisfied by the remote ``fetch`` seam (these count
    #: as neither hit nor miss: the request was served, but not locally)
    fetched: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArtifactStore:
    """A directory of compiled artifacts with an LRU byte budget."""

    def __init__(
        self,
        root: str | Path,
        *,
        max_bytes: int = DEFAULT_STORE_BYTES,
        fetch=None,
    ) -> None:
        if max_bytes < 1:
            raise ReproError("artifact store byte budget must be >= 1")
        if fetch is not None and not callable(fetch):
            raise ReproError("fetch must be a callable(key) -> bytes | None")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        self._lock = threading.Lock()
        #: remote fill: called with a key on local miss, returns the
        #: artifact's ``.npz`` bytes or None (see :func:`remote_fetcher`)
        self._fetch = fetch
        #: refcounted eviction pins (key -> count); pinned artifacts are
        #: referenced by a live ruleset version and must survive byte
        #: pressure — evicting one mid-hot-swap would force a recompile
        #: (or worse, fail a spawn worker shipping artifacts)
        self._pins: dict[str, int] = {}

    # -- paths ------------------------------------------------------------
    def path(self, key: str) -> Path:
        """Where ``key``'s artifact lives (whether or not it exists)."""
        if not key or any(c in key for c in "/\\."):
            raise ReproError(f"bad artifact key: {key!r}")
        return self.root / f"{key}{_SUFFIX}"

    def contains(self, key: str) -> bool:
        return self.path(key).exists()

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob(f"*{_SUFFIX}"))

    def __len__(self) -> int:
        return len(self.keys())

    def total_bytes(self) -> int:
        return sum(
            p.stat().st_size
            for p in self.root.glob(f"*{_SUFFIX}")
            if p.is_file()
        )

    # -- cache surface ----------------------------------------------------
    def get(self, key: str) -> CompiledArtifact | None:
        """Load ``key``'s artifact, or None (missing *or* unreadable).

        A hit refreshes the file's mtime — that is the LRU clock.  An
        unreadable or incompatible file is deleted so it cannot shadow
        a future :meth:`put` forever.
        """
        path = self.path(key)
        with self._lock:
            if not path.exists():
                fetched = self._fetch_remote(key, path)
                if fetched is None:
                    self.stats.misses += 1
                return fetched
            try:
                artifact = CompiledArtifact.load(path)
            except ArtifactError:
                self.stats.invalid += 1
                self.stats.misses += 1
                path.unlink(missing_ok=True)
                return None
            self.stats.hits += 1
            try:
                os.utime(path, (time.time(), time.time()))
            except OSError:
                # a sharing process evicted the file after we read it;
                # the loaded artifact is still a perfectly good hit
                pass
            return artifact

    def _fetch_remote(self, key: str, path: Path) -> CompiledArtifact | None:
        """Fill a local miss from the remote seam (lock held).

        The bytes are validated *before* publication and the publish is
        atomic (``save`` writes a tmp file then ``os.replace``), so a
        reader in another process never observes a partial or corrupt
        artifact.  Any fetcher failure is just a miss — the caller
        falls back to compiling.
        """
        if self._fetch is None:
            return None
        try:
            data = self._fetch(key)
        except Exception:  # noqa: BLE001 — a flaky remote must degrade
            # to a compile, never poison the compile pipeline
            return None
        if data is None:
            return None
        try:
            artifact = CompiledArtifact.from_bytes(bytes(data))
        except (ArtifactError, TypeError, ValueError):
            self.stats.invalid += 1
            return None
        if artifact.key != key:
            # the remote answered with *something*, but not this key's
            # content — publishing it would poison the address space
            self.stats.invalid += 1
            return None
        artifact.save(path)
        self._evict_over_budget(keep=path)
        self.stats.fetched += 1
        return artifact

    def put(self, artifact: CompiledArtifact) -> Path:
        """Write an artifact under its own content-addressed key."""
        with self._lock:
            path = artifact.save(self.path(artifact.key))
            self._evict_over_budget(keep=path)
            return path

    def clear(self) -> None:
        with self._lock:
            for path in self.root.glob(f"*{_SUFFIX}"):
                path.unlink(missing_ok=True)
            for path in self.root.glob(f"*{_MANIFEST_SUFFIX}"):
                path.unlink(missing_ok=True)
            pins_dir = self.root / _PINS_DIR
            if pins_dir.is_dir():
                for key_dir in pins_dir.iterdir():
                    if key_dir.is_dir():
                        for token in key_dir.iterdir():
                            token.unlink(missing_ok=True)
                        _rmdir_quiet(key_dir)
            self._pins.clear()

    # -- eviction pins -----------------------------------------------------
    def pin(self, keys) -> None:
        """Exempt ``keys`` from LRU eviction (refcounted).

        Live ruleset versions pin the component artifacts their
        composition manifests reference; byte-budget pressure then falls
        entirely on unpinned entries.  The first pin of a key in this
        process also drops a pid token file under ``.pins/<key>/``, so
        *other* processes sharing the directory honour the pin too.
        """
        with self._lock:
            for key in keys:
                count = self._pins.get(key, 0)
                self._pins[key] = count + 1
                if count == 0:
                    self._write_pin_token(key)

    def unpin(self, keys) -> None:
        """Drop one pin reference per key; fully unpinned artifacts
        rejoin the LRU eviction pool (in every sharing process, once
        this process's pid token is removed)."""
        with self._lock:
            for key in keys:
                count = self._pins.get(key, 0) - 1
                if count > 0:
                    self._pins[key] = count
                else:
                    self._pins.pop(key, None)
                    self._remove_pin_token(key)

    def pinned_keys(self) -> set[str]:
        """Keys pinned by this process *or* any live sibling process."""
        with self._lock:
            return set(self._pins) | self._disk_pinned_stems()

    # -- cross-process pin tokens ------------------------------------------
    def _pin_token_path(self, key: str) -> Path:
        return self.root / _PINS_DIR / key / f"{os.getpid()}.pin"

    def _write_pin_token(self, key: str) -> None:
        token = self._pin_token_path(key)
        try:
            token.parent.mkdir(parents=True, exist_ok=True)
            token.touch()
        except OSError:
            # a read-only shared store still gets in-process pins; the
            # cross-process guarantee just doesn't extend to it
            pass

    def _remove_pin_token(self, key: str) -> None:
        token = self._pin_token_path(key)
        try:
            token.unlink(missing_ok=True)
            _rmdir_quiet(token.parent)
        except OSError:
            pass

    def _disk_pinned_stems(self) -> set[str]:
        """Keys with a live pid token on disk; dead tokens are swept.

        A token whose pid no longer exists belongs to a crashed (or
        SIGKILLed) process — its pins die with it, otherwise one dead
        node would exempt its artifacts from eviction forever.
        """
        pins_dir = self.root / _PINS_DIR
        pinned: set[str] = set()
        if not pins_dir.is_dir():
            return pinned
        for key_dir in pins_dir.iterdir():
            if not key_dir.is_dir():
                continue
            alive = False
            for token in key_dir.glob("*.pin"):
                try:
                    pid = int(token.stem)
                except ValueError:
                    token.unlink(missing_ok=True)
                    continue
                if _pid_alive(pid):
                    alive = True
                else:
                    token.unlink(missing_ok=True)
            if alive:
                pinned.add(key_dir.name)
            else:
                _rmdir_quiet(key_dir)
        return pinned

    # -- composition manifests ---------------------------------------------
    def manifest_path(self, key: str) -> Path:
        """Where ``key``'s composition manifest lives."""
        if not key or any(c in key for c in "/\\."):
            raise ReproError(f"bad manifest key: {key!r}")
        return self.root / f"{key}{_MANIFEST_SUFFIX}"

    def put_manifest(self, key: str, manifest: dict) -> Path:
        """Atomically persist a composition manifest (JSON sidecar).

        Manifests are tiny and sit outside the byte budget: the budget
        protects against artifact bloat, and a manifest without its
        component artifacts is harmlessly re-derived on the next
        compile.
        """
        path = self.manifest_path(key)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(manifest, sort_keys=True))
        os.replace(tmp, path)
        return path

    def get_manifest(self, key: str) -> dict | None:
        """Load a composition manifest, or None (missing or corrupt)."""
        path = self.manifest_path(key)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def manifest_keys(self) -> list[str]:
        return sorted(
            p.name[: -len(_MANIFEST_SUFFIX)]
            for p in self.root.glob(f"*{_MANIFEST_SUFFIX}")
        )

    def _evict_over_budget(self, keep: Path) -> None:
        """Delete least-recently-used artifacts past the byte budget.

        The just-written artifact is never evicted, even when it alone
        exceeds the budget — the caller is about to use it.  Pinned
        artifacts are skipped too (they still count toward the total,
        so unpinned entries absorb the pressure).
        """
        entries = []
        total = 0
        disk_pinned = self._disk_pinned_stems()
        for path in self.root.glob(f"*{_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:  # concurrently removed
                continue
            total += stat.st_size
            if (
                path != keep
                and path.stem not in self._pins
                and path.stem not in disk_pinned
            ):
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            path.unlink(missing_ok=True)
            total -= size
            self.stats.evictions += 1

    def __repr__(self) -> str:
        return (
            f"ArtifactStore({str(self.root)!r}, entries={len(self)}, "
            f"max_bytes={self.max_bytes})"
        )
