"""repro.compile — the staged compilation pipeline and its artifacts.

The CAMA toolchain (paper §V.B, §VI) is a one-time compile/place/route
step whose cost deployments amortize across long-lived scans.  This
package makes that step explicit, inspectable and shippable:

``pipeline`` / ``passes`` / ``ir``
    The staged pipeline — parse → optimize → stride → encode → map →
    kernel — where each pass consumes/produces typed IR fields and is
    individually timed.  :func:`compile_ruleset` is the one-call front
    door; :class:`~repro.core.compiler.CamaCompiler` is now a thin
    driver over it.

``fingerprint``
    Content keys: :func:`ruleset_fingerprint` digests the language;
    with a :class:`PipelineOptions` it also digests the compile
    configuration, so differently configured artifacts never alias.

``artifact``
    :class:`CompiledArtifact` — a single ``.npz`` (numpy tables + JSON
    manifest, ``allow_pickle=False``) that rebuilds the automaton, a
    warm engine, and the CAMA program in any process: save in one,
    load in another, upload over the network server.

``store``
    :class:`ArtifactStore` — a content-addressed artifact directory
    with an LRU *byte* budget; the persistent second-level cache behind
    :class:`~repro.service.ruleset.RulesetManager` and the spawn-worker
    shipping of :class:`~repro.service.sharding.Dispatcher`.

Quick use::

    from repro.compile import compile_ruleset, CompiledArtifact

    compiled = compile_ruleset(automaton, backend="auto")
    CompiledArtifact.from_compiled(compiled).save("snort.npz")
    # ... any other process, later ...
    engine = CompiledArtifact.load("snort.npz").engine()
"""

from repro.compile.artifact import ARTIFACT_FORMAT_VERSION, CompiledArtifact
from repro.compile.fingerprint import (
    component_fingerprint,
    composition_key,
    ruleset_fingerprint,
)
from repro.compile.incremental import (
    ComposedRuleset,
    IncrementalCompiler,
    apply_update,
    incremental_compile,
)
from repro.compile.ir import (
    CompiledRuleset,
    PassTiming,
    PipelineOptions,
    PipelineState,
)
from repro.compile.passes import DEFAULT_PASSES, CompilePass, load_source
from repro.compile.pipeline import Pipeline, compile_ruleset
from repro.compile.store import (
    DEFAULT_STORE_BYTES,
    ArtifactStore,
    StoreStats,
    remote_fetcher,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactStore",
    "CompilePass",
    "CompiledArtifact",
    "CompiledRuleset",
    "ComposedRuleset",
    "DEFAULT_PASSES",
    "DEFAULT_STORE_BYTES",
    "IncrementalCompiler",
    "PassTiming",
    "Pipeline",
    "PipelineOptions",
    "PipelineState",
    "StoreStats",
    "apply_update",
    "component_fingerprint",
    "compile_ruleset",
    "composition_key",
    "incremental_compile",
    "load_source",
    "remote_fetcher",
    "ruleset_fingerprint",
]
