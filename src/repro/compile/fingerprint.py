"""Ruleset fingerprints: the cache keys of compiled artifacts.

A *ruleset fingerprint* digests an automaton's language-relevant
content — every state's symbol-class mask, start kind, reporting flag
and report code, plus the full transition relation — and deliberately
excludes its name and STE display names, so re-loading the same rules
under a different label still hits every cache.

Compiled *artifacts* additionally depend on how they were compiled:
stride, backend hint, optimization and encoding knobs all change the
output, so :func:`ruleset_fingerprint` mixes the
:class:`~repro.compile.ir.PipelineOptions` digest into the key when
options are given.  Fingerprints with different options can therefore
never alias one artifact (the ``test_fingerprint_covers_options``
regression locks this in).
"""

from __future__ import annotations

import hashlib

from repro.automata.nfa import Automaton
from repro.compile.ir import PipelineOptions


def ruleset_fingerprint(
    automaton: Automaton, options: PipelineOptions | None = None
) -> str:
    """A stable hex digest of the automaton's language-relevant content.

    With ``options``, the digest also covers the pipeline-relevant
    compile options (stride, backend hint, optimization and encoding
    flags) — use this form to key compiled *artifacts*; the bare form
    keys the ruleset's *language* (e.g. the in-memory engine LRU, where
    the backend is already part of the cache key tuple).
    """
    h = hashlib.sha256()
    h.update(len(automaton).to_bytes(8, "little"))
    for ste in automaton.states:
        h.update(ste.symbol_class.mask.to_bytes(32, "little"))
        # variable-length fields are length-prefixed so shifted record
        # boundaries cannot make different rulesets serialize alike
        start = ste.start.value.encode()
        h.update(len(start).to_bytes(1, "little"))
        h.update(start)
        h.update(b"\x01" if ste.reporting else b"\x00")
        code = (ste.report_code or "").encode()
        h.update(len(code).to_bytes(4, "little"))
        h.update(code)
    for u, v in automaton.transitions():
        h.update(u.to_bytes(8, "little"))
        h.update(v.to_bytes(8, "little"))
    if options is not None:
        digest = options.digest().encode()
        h.update(b"\x00options")
        h.update(len(digest).to_bytes(2, "little"))
        h.update(digest)
    return h.hexdigest()
