"""Ruleset fingerprints: the cache keys of compiled artifacts.

A *ruleset fingerprint* digests an automaton's language-relevant
content — every state's symbol-class mask, start kind, reporting flag
and report code, plus the full transition relation — and deliberately
excludes its name and STE display names, so re-loading the same rules
under a different label still hits every cache.

Compiled *artifacts* additionally depend on how they were compiled:
stride, backend hint, optimization and encoding knobs all change the
output, so :func:`ruleset_fingerprint` mixes the
:class:`~repro.compile.ir.PipelineOptions` digest into the key when
options are given.  Fingerprints with different options can therefore
never alias one artifact (the ``test_fingerprint_covers_options``
regression locks this in).
"""

from __future__ import annotations

import hashlib

from repro.automata.nfa import Automaton
from repro.compile.ir import PipelineOptions


def ruleset_fingerprint(
    automaton: Automaton, options: PipelineOptions | None = None
) -> str:
    """A stable hex digest of the automaton's language-relevant content.

    With ``options``, the digest also covers the pipeline-relevant
    compile options (stride, backend hint, optimization and encoding
    flags) — use this form to key compiled *artifacts*; the bare form
    keys the ruleset's *language* (e.g. the in-memory engine LRU, where
    the backend is already part of the cache key tuple).
    """
    h = hashlib.sha256()
    h.update(len(automaton).to_bytes(8, "little"))
    for ste in automaton.states:
        h.update(ste.symbol_class.mask.to_bytes(32, "little"))
        # variable-length fields are length-prefixed so shifted record
        # boundaries cannot make different rulesets serialize alike
        start = ste.start.value.encode()
        h.update(len(start).to_bytes(1, "little"))
        h.update(start)
        h.update(b"\x01" if ste.reporting else b"\x00")
        code = (ste.report_code or "").encode()
        h.update(len(code).to_bytes(4, "little"))
        h.update(code)
    for u, v in automaton.transitions():
        h.update(u.to_bytes(8, "little"))
        h.update(v.to_bytes(8, "little"))
    if options is not None:
        _mix_options(h, options)
    return h.hexdigest()


def _mix_options(h: "hashlib._Hash", options: PipelineOptions) -> None:
    digest = options.digest().encode()
    h.update(b"\x00options")
    h.update(len(digest).to_bytes(2, "little"))
    h.update(digest)


def component_fingerprint(
    automaton: Automaton,
    component: list[int],
    options: PipelineOptions | None = None,
) -> str:
    """Digest of one connected component as a standalone ruleset.

    Byte-identical to ``ruleset_fingerprint(automaton.subautomaton(
    component), options)`` — the incremental compiler's cache keys must
    match what a cold per-component compile would produce — but computed
    directly on the parent automaton, so detecting unchanged components
    never materializes a sub-automaton (that is O(total transitions)
    per component; this is O(component)).

    Components inherit the parent's *relative* state order, which is
    what makes these keys stable under pattern reordering: permuting the
    patterns of a ruleset shifts each component's absolute ids but never
    reorders states within a component, so every component fingerprint
    — and hence :func:`composition_key` — is unchanged.
    """
    keep = sorted(set(component))
    remap = {old: new for new, old in enumerate(keep)}
    h = hashlib.sha256()
    h.update(len(keep).to_bytes(8, "little"))
    for old in keep:
        ste = automaton.states[old]
        h.update(ste.symbol_class.mask.to_bytes(32, "little"))
        start = ste.start.value.encode()
        h.update(len(start).to_bytes(1, "little"))
        h.update(start)
        h.update(b"\x01" if ste.reporting else b"\x00")
        code = (ste.report_code or "").encode()
        h.update(len(code).to_bytes(4, "little"))
        h.update(code)
    # subautomaton's transitions() iterates sources in local-id order
    # with sorted successors; the remap is monotonic, so sorting by old
    # id reproduces that exact byte order.
    for old in keep:
        u = remap[old]
        for v_old in sorted(automaton.successors(old)):
            v = remap.get(v_old)
            if v is None:
                continue
            h.update(u.to_bytes(8, "little"))
            h.update(v.to_bytes(8, "little"))
    if options is not None:
        _mix_options(h, options)
    return h.hexdigest()


def composition_key(component_keys) -> str:
    """Order-independent digest of a set of component fingerprints.

    Keys (any iterable of hex strings) are sorted before hashing, so
    any enumeration order of the same components — and any pattern
    order producing them — yields the same composition key.  Compile
    options need no extra mixing: each component key already embeds the
    options digest.
    """
    ordered = sorted(component_keys)
    h = hashlib.sha256()
    h.update(len(ordered).to_bytes(8, "little"))
    for key in ordered:
        raw = key.encode()
        h.update(len(raw).to_bytes(2, "little"))
        h.update(raw)
    return h.hexdigest()
