"""The staged-pipeline driver.

A :class:`Pipeline` is an ordered list of
:class:`~repro.compile.passes.CompilePass` objects; :meth:`Pipeline.run`
threads a :class:`~repro.compile.ir.PipelineState` through them, timing
each pass and checking the declared ``requires``/``produces`` contracts,
then assembles the :class:`~repro.compile.ir.CompiledRuleset`.  Passes
can be run individually too (``pipeline.run_pass(name, state)``), which
is what ``repro compile --timings`` and the pipeline tests build on.

:func:`compile_ruleset` is the one-call front door used by the service
layer, the CLI and the benchmarks.
"""

from __future__ import annotations

import time

from repro.compile.fingerprint import ruleset_fingerprint
from repro.compile.ir import (
    CompiledRuleset,
    PassTiming,
    PipelineOptions,
    PipelineState,
)
from repro.compile.passes import DEFAULT_PASSES, CompilePass
from repro.errors import ReproError
from repro.telemetry.metrics import default_registry
from repro.telemetry.tracing import current_trace

_PASS_RUNS = default_registry().counter(
    "repro_compile_pass_runs_total",
    "Compile-pass executions, by pass and outcome (run | skipped)",
    ("pass", "outcome"),
)
_PASS_SECONDS = default_registry().histogram(
    "repro_compile_pass_seconds",
    "Wall-clock seconds per executed compile pass",
    ("pass",),
)


class Pipeline:
    """An ordered, inspectable sequence of compilation passes."""

    def __init__(self, passes: tuple[CompilePass, ...] = DEFAULT_PASSES) -> None:
        if not passes:
            raise ReproError("a pipeline needs at least one pass")
        names = [p.name for p in passes]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate pass names in pipeline: {names}")
        self.passes = tuple(passes)

    @property
    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def run_pass(self, name: str, state: PipelineState) -> PassTiming:
        """Run (or record the skip of) one pass by name."""
        for compile_pass in self.passes:
            if compile_pass.name == name:
                return self._execute(compile_pass, state)
        raise ReproError(
            f"no pass named {name!r}; pipeline has {self.pass_names}"
        )

    def _execute(
        self, compile_pass: CompilePass, state: PipelineState
    ) -> PassTiming:
        skip = compile_pass.applies(state)
        if skip is not None:
            timing = PassTiming(
                name=compile_pass.name, seconds=0.0, skipped=skip
            )
            state.timings.append(timing)
            _PASS_RUNS.labels(compile_pass.name, "skipped").inc()
            return timing
        missing = [
            f for f in compile_pass.requires if getattr(state, f) is None
        ]
        if missing:
            raise ReproError(
                f"pass {compile_pass.name!r} requires {missing} but earlier "
                f"passes did not produce them"
            )
        start = time.perf_counter()
        detail = compile_pass.run(state)
        elapsed = time.perf_counter() - start
        unfilled = [
            f for f in compile_pass.produces if getattr(state, f) is None
        ]
        if unfilled:
            raise ReproError(
                f"pass {compile_pass.name!r} declared but did not produce "
                f"{unfilled}"
            )
        timing = PassTiming(
            name=compile_pass.name, seconds=elapsed, detail=detail or {}
        )
        state.timings.append(timing)
        _PASS_RUNS.labels(compile_pass.name, "run").inc()
        _PASS_SECONDS.labels(compile_pass.name).observe(elapsed)
        trace = current_trace()
        if trace is not None:
            # the pipeline's own pass timer doubles as the span clock,
            # so traced compiles reuse the PassTiming measurements
            trace.add_span(
                f"compile.{compile_pass.name}", elapsed, start_s=start
            )
        return timing

    def run(
        self, source, options: PipelineOptions | None = None
    ) -> CompiledRuleset:
        """Compile ``source`` end to end under ``options``."""
        options = (options or PipelineOptions()).validate()
        state = PipelineState(options=options, source=source)
        for compile_pass in self.passes:
            self._execute(compile_pass, state)
        return self.finish(state)

    @staticmethod
    def finish(state: PipelineState) -> CompiledRuleset:
        """Assemble the final product from a fully threaded state."""
        if state.automaton is None:
            raise ReproError("pipeline finished without an automaton")
        program = None
        if state.mapping is not None:
            from repro.core.compiler import CamaProgram

            program = CamaProgram(
                automaton=state.automaton,
                choice=state.choice,
                state_encodings=state.state_encodings,
                mapping=state.mapping,
                encoder=state.encoder,
            )
        return CompiledRuleset(
            automaton=state.automaton,
            options=state.options,
            key=ruleset_fingerprint(state.automaton, state.options),
            program=program,
            kernel=state.kernel,
            strided=state.strided,
            optimization=state.optimization,
            timings=list(state.timings),
        )


def compile_ruleset(
    source, options: PipelineOptions | None = None, **option_kwargs
) -> CompiledRuleset:
    """Compile any ruleset source through the default staged pipeline.

    ``options`` (or keyword overrides: ``compile_ruleset(a,
    backend="auto", optimize=True)``) configure the passes; see
    :class:`PipelineOptions`.
    """
    if options is None:
        options = PipelineOptions(**option_kwargs)
    elif option_kwargs:
        options = options.replace(**option_kwargs)
    return Pipeline().run(source, options)
