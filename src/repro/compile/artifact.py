"""Serializable compiled-ruleset artifacts ("compile once, load anywhere").

A :class:`CompiledArtifact` is the on-disk / on-the-wire form of one
pipeline product: a single ``.npz`` file (a zip of plain numpy arrays,
``allow_pickle=False`` end to end) holding every table the execution
kernels and the CAMA program need, plus a JSON *manifest* (format
version, content-addressed key, pipeline options, encoding parameters,
pass timings).  Loading an artifact rebuilds the
:class:`~repro.automata.nfa.Automaton`, a warm
:class:`~repro.sim.engine.Engine` (kernels are constructed from the
prebuilt :class:`~repro.sim.backends.base.KernelTables`, skipping every
derivation pass), and — when the encode/map passes ran — the full
:class:`~repro.core.compiler.CamaProgram`.

Artifacts are *content-addressed*: the manifest key is
``ruleset_fingerprint(automaton, options)``, so one byte of key names
exactly one (ruleset, compile-configuration) pair and a store lookup
can never return an artifact compiled under different options.

Anything unreadable — truncated files, non-zip bytes, missing arrays,
inconsistent shapes, or an incompatible ``format_version`` — raises
:class:`~repro.errors.ArtifactError`; cache layers treat that as a miss
and recompile.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.automata.nfa import STE, Automaton, StartKind
from repro.automata.symbols import SymbolClass
from repro.compile.fingerprint import ruleset_fingerprint
from repro.compile.ir import CompiledRuleset, PipelineOptions
from repro.errors import ArtifactError, ReproError

#: bumped on any incompatible change to the manifest or array schema
ARTIFACT_FORMAT_VERSION = 1

_START_KINDS = (StartKind.NONE, StartKind.ALL_INPUT, StartKind.START_OF_DATA)
_START_CODE = {kind: code for code, kind in enumerate(_START_KINDS)}

#: arrays every artifact must carry (program arrays are conditional)
_REQUIRED_ARRAYS = (
    "state_class_words",
    "state_start",
    "state_reporting",
    "succ_offsets",
    "succ_targets",
    "match_words",
)

_SWITCH_MODES = ("rcb", "fcb")
_TILE_MODES = ("rcb16", "fcb16", "mode32")


def _class_words(states) -> np.ndarray:
    """Per-state 256-bit symbol-class masks as (n, 4) little uint64."""
    words = np.zeros((len(states), 4), dtype="<u8")
    for i, ste in enumerate(states):
        mask = ste.symbol_class.mask
        for w in range(4):
            words[i, w] = (mask >> (64 * w)) & 0xFFFFFFFFFFFFFFFF
    return words


def _optional_strings(values: list) -> list | None:
    """A JSON-able string list, or None when every entry is None."""
    return list(values) if any(v is not None for v in values) else None


@dataclass
class CompiledArtifact:
    """One compiled ruleset in its serializable form.

    ``manifest`` is plain JSON-able metadata; ``arrays`` maps array
    names to numpy arrays.  Reconstruction accessors
    (:meth:`automaton`, :meth:`engine`, :meth:`program`) are cached per
    instance — loading once and building several views is cheap.
    """

    manifest: dict
    arrays: dict[str, np.ndarray]
    _automaton: Automaton | None = field(default=None, repr=False)

    # -- identity ---------------------------------------------------------
    @property
    def key(self) -> str:
        """Content address: language fingerprint + option digest."""
        return self.manifest["key"]

    @property
    def fingerprint(self) -> str:
        """Language-only ruleset fingerprint."""
        return self.manifest["ruleset_fingerprint"]

    @property
    def options(self) -> PipelineOptions:
        return PipelineOptions.from_dict(self.manifest["options"])

    @property
    def backend(self) -> str | None:
        """Resolved kernel name recorded at compile time."""
        return self.manifest.get("backend")

    @property
    def num_states(self) -> int:
        return self.manifest["automaton"]["num_states"]

    def summary(self) -> dict:
        """Human-readable manifest digest (the ``repro inspect`` view)."""
        meta = self.manifest["automaton"]
        out = {
            "format_version": self.manifest["format_version"],
            "key": self.key,
            "ruleset_fingerprint": self.fingerprint,
            "automaton": meta["name"],
            "states": meta["num_states"],
            "transitions": meta["num_transitions"],
            "backend": self.backend,
            "options": json.dumps(self.manifest["options"], sort_keys=True),
        }
        program = self.manifest.get("program")
        if program:
            out.update(
                encoding=program["scheme"],
                code_length=program["code_length"],
                cam_entries=int(self.arrays["enc_offsets"][-1]),
                tiles=len(self.arrays["tile_mode"]),
            )
        return out

    # -- construction from a pipeline product -----------------------------
    @classmethod
    def from_compiled(cls, compiled: CompiledRuleset) -> "CompiledArtifact":
        """Serialize a pipeline product (stride-1 rulesets only)."""
        if compiled.options.stride != 1:
            raise ArtifactError(
                f"stride-{compiled.options.stride} rulesets are not "
                f"serializable in artifact format v{ARTIFACT_FORMAT_VERSION}"
            )
        automaton = compiled.automaton
        n = len(automaton)
        from repro.sim.backends.base import KernelTables

        if compiled.kernel is not None and hasattr(
            compiled.kernel, "export_tables"
        ):
            tables = compiled.kernel.export_tables()
            backend = compiled.kernel.name
        else:
            tables = KernelTables.from_automaton(automaton)
            backend = None

        arrays: dict[str, np.ndarray] = {
            "state_class_words": _class_words(automaton.states),
            "state_start": np.array(
                [_START_CODE[s.start] for s in automaton.states], dtype=np.uint8
            ),
            "state_reporting": np.array(
                [s.reporting for s in automaton.states], dtype=bool
            ),
            "succ_offsets": tables.succ_offsets.astype(np.int64),
            "succ_targets": tables.succ_targets.astype(np.int64),
            "match_words": tables.match_words.astype("<u8"),
        }
        if tables.succ_words is not None:
            # packed successor rows from a bit-parallel/native kernel:
            # optional (older artifacts lack it), lets warm loads skip
            # the per-state derivation loop entirely
            arrays["succ_words"] = tables.succ_words.astype("<u8")
        manifest: dict = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "key": compiled.key,
            "ruleset_fingerprint": ruleset_fingerprint(automaton),
            "options": compiled.options.to_dict(),
            "backend": backend,
            "automaton": {
                "name": automaton.name,
                "num_states": n,
                "num_transitions": automaton.num_transitions(),
                "report_codes": _optional_strings(
                    [s.report_code for s in automaton.states]
                ),
                "state_names": _optional_strings(
                    [s.name for s in automaton.states]
                ),
            },
            "program": None,
            "timings": [t.to_dict() for t in compiled.timings],
        }
        if compiled.program is not None:
            cls._pack_program(compiled.program, manifest, arrays)
        return cls(manifest=manifest, arrays=arrays)

    @staticmethod
    def _pack_program(program, manifest: dict, arrays: dict) -> None:
        from repro.core.encoding.multi_zeros import MultiZerosEncoding
        from repro.core.encoding.one_zero import OneZeroEncoding
        from repro.core.encoding.prefix import PrefixEncoding

        choice = program.choice
        encoding = choice.encoding
        enc_meta: dict = {
            "alphabet_mask": format(encoding.alphabet.mask, "x"),
        }
        if isinstance(encoding, OneZeroEncoding):
            enc_meta["kind"] = "one-zero"
        elif isinstance(encoding, MultiZerosEncoding):
            enc_meta["kind"] = "multi-zeros"
            enc_meta["length"] = encoding.code_length
        elif isinstance(encoding, PrefixEncoding):
            enc_meta["kind"] = "prefix"
            enc_meta["suffix_length"] = encoding.suffix_length
            enc_meta["prefix_length"] = encoding.prefix_length
            enc_meta["prefix_zeros"] = encoding.prefix_zeros
            assignment = encoding.assignment
            symbols = sorted(assignment)
            arrays["enc_symbols"] = np.array(symbols, dtype=np.int64)
            arrays["enc_clusters"] = np.array(
                [assignment[s][0] for s in symbols], dtype=np.int64
            )
            arrays["enc_slots"] = np.array(
                [assignment[s][1] for s in symbols], dtype=np.int64
            )
        else:
            raise ArtifactError(
                f"cannot serialize encoding type {type(encoding).__name__}"
            )

        offsets = np.zeros(len(program.state_encodings) + 1, dtype=np.int64)
        patterns: list[int] = []
        negated = np.zeros(len(program.state_encodings), dtype=bool)
        for i, se in enumerate(program.state_encodings):
            patterns.extend(se.patterns)
            offsets[i + 1] = len(patterns)
            negated[i] = se.negated
        arrays["enc_offsets"] = offsets
        arrays["enc_patterns"] = np.array(patterns, dtype="<u8")
        arrays["enc_negated"] = negated

        mapping = program.mapping
        arrays["map_state_switch"] = mapping.state_switch.astype(np.int64)
        arrays["map_state_position"] = mapping.state_position.astype(np.int64)
        arrays["map_state_entries"] = mapping.state_entries.astype(np.int64)
        arrays["map_cross_edges"] = np.array(
            mapping.cross_edges, dtype=np.int64
        ).reshape(-1, 2)
        switches = mapping.switches
        arrays["switch_mode"] = np.array(
            [_SWITCH_MODES.index(s.mode) for s in switches], dtype=np.uint8
        )
        arrays["switch_entry_count"] = np.array(
            [s.entry_count for s in switches], dtype=np.int64
        )
        arrays["switch_in"] = np.array(
            [s.in_signals for s in switches], dtype=np.int64
        )
        arrays["switch_out"] = np.array(
            [s.out_signals for s in switches], dtype=np.int64
        )
        sw_offsets = np.zeros(len(switches) + 1, dtype=np.int64)
        flat: list[int] = []
        for i, s in enumerate(switches):
            flat.extend(s.states)
            sw_offsets[i + 1] = len(flat)
        arrays["switch_state_offsets"] = sw_offsets
        arrays["switch_state_flat"] = np.array(flat, dtype=np.int64)
        arrays["tile_mode"] = np.array(
            [_TILE_MODES.index(t.mode) for t in mapping.tiles], dtype=np.uint8
        )
        tile_switches = np.full((len(mapping.tiles), 2), -1, dtype=np.int64)
        for i, t in enumerate(mapping.tiles):
            tile_switches[i, : len(t.switch_indices)] = t.switch_indices
        arrays["tile_switches"] = tile_switches

        manifest["program"] = {
            "scheme": choice.scheme,
            "code_length": choice.code_length,
            "alphabet_size": choice.alphabet_size,
            "mean_class_size_no": choice.mean_class_size_no,
            "encoding": enc_meta,
            "mapping": {
                "automaton_name": mapping.automaton_name,
                "code_length": mapping.code_length,
                "num_global_switches": mapping.num_global_switches,
                "oversubscribed_ports": mapping.oversubscribed_ports,
            },
        }

    # -- reconstruction ---------------------------------------------------
    def automaton(self) -> Automaton:
        """Rebuild the :class:`Automaton` (cached per artifact)."""
        if self._automaton is not None:
            return self._automaton
        meta = self.manifest["automaton"]
        n = meta["num_states"]
        codes = meta.get("report_codes") or [None] * n
        names = meta.get("state_names") or [None] * n
        start = self.arrays["state_start"]
        reporting = self.arrays["state_reporting"]
        mask_bytes = (
            self.arrays["state_class_words"].astype("<u8", copy=False).tobytes()
        )
        states = [
            STE(
                ste_id=i,
                symbol_class=SymbolClass(
                    int.from_bytes(mask_bytes[32 * i : 32 * i + 32], "little")
                ),
                start=_START_KINDS[int(start[i])],
                reporting=bool(reporting[i]),
                report_code=codes[i],
                name=names[i],
            )
            for i in range(n)
        ]
        offsets = self.arrays["succ_offsets"]
        targets = self.arrays["succ_targets"].tolist()
        automaton = Automaton(name=meta["name"])
        automaton.states = states
        automaton._successors = [
            set(targets[int(offsets[i]) : int(offsets[i + 1])])
            for i in range(n)
        ]
        self._automaton = automaton
        return automaton

    def kernel_tables(self):
        """The prebuilt :class:`KernelTables` (start ids derived)."""
        from repro.sim.backends.base import KernelTables

        meta = self.manifest["automaton"]
        n = meta["num_states"]
        start = self.arrays["state_start"]
        codes = meta.get("report_codes") or [None] * n
        return KernelTables(
            match_words=np.ascontiguousarray(
                self.arrays["match_words"], dtype=np.uint64
            ),
            succ_offsets=self.arrays["succ_offsets"],
            succ_targets=self.arrays["succ_targets"],
            start_all=np.nonzero(start == 1)[0].astype(np.int64),
            start_sod=np.nonzero(start == 2)[0].astype(np.int64),
            reporting=self.arrays["state_reporting"].astype(bool),
            report_codes=list(codes),
            succ_words=(
                np.ascontiguousarray(
                    self.arrays["succ_words"], dtype=np.uint64
                )
                if "succ_words" in self.arrays
                else None
            ),
        )

    def engine(self, backend: str | None = None, **engine_kwargs):
        """A warm :class:`~repro.sim.engine.Engine` for this ruleset.

        ``backend`` overrides the artifact's recorded kernel; ``auto``
        re-runs the policy against the reconstructed automaton.  Kernel
        construction uses the prebuilt tables, so no derivation pass
        (match table, CSR, validation) runs.
        """
        from repro.sim.backends import choose_backend_name
        from repro.sim.backends.bitparallel import BitParallelKernel
        from repro.sim.backends.native import dense_backend
        from repro.sim.backends.sparse import SparseKernel
        from repro.sim.engine import Engine

        automaton = self.automaton()
        name = backend or self.backend or self.options.backend or "sparse"
        if name == "auto":
            name = choose_backend_name(automaton)
            if name == "bitparallel":
                # dense family resolves to the compiled loop when this
                # host can load it (same upgrade AutoBackend applies)
                name = dense_backend().name
        tables = self.kernel_tables()
        if name == "native":
            # degrades to a plain BitParallelKernel on hosts without
            # the compiled library — artifacts recorded as "native"
            # stay loadable anywhere
            kernel = dense_backend().from_tables(automaton, tables)
        elif name == "bitparallel":
            kernel = BitParallelKernel(automaton, tables=tables)
        elif name == "sparse":
            kernel = SparseKernel(automaton, tables=tables)
        else:
            raise ArtifactError(f"unknown kernel backend {name!r}")
        return Engine.from_kernel(kernel, **engine_kwargs)

    def program(self):
        """Rebuild the :class:`~repro.core.compiler.CamaProgram`."""
        meta = self.manifest.get("program")
        if not meta:
            raise ArtifactError(
                "this artifact was compiled without the encode/map passes "
                "(no CAMA program to load)"
            )
        from repro.core.compiler import CamaProgram
        from repro.core.encoding.encoder import InputEncoder
        from repro.core.encoding.negation import StateEncoding
        from repro.core.encoding.selection import EncodingChoice
        from repro.core.mapping import (
            FCB_POSITIONS,
            RCB_POSITIONS,
            CamaMapping,
            SwitchPlan,
            TilePlan,
        )

        automaton = self.automaton()
        encoding = self._rebuild_encoding(meta["encoding"])
        choice = EncodingChoice(
            encoding=encoding,
            scheme=meta["scheme"],
            code_length=meta["code_length"],
            alphabet_size=meta["alphabet_size"],
            mean_class_size_no=meta["mean_class_size_no"],
        )
        offsets = self.arrays["enc_offsets"]
        patterns = self.arrays["enc_patterns"].tolist()
        negated = self.arrays["enc_negated"]
        state_encodings = [
            StateEncoding(
                patterns=tuple(
                    patterns[int(offsets[i]) : int(offsets[i + 1])]
                ),
                negated=bool(negated[i]),
            )
            for i in range(len(automaton))
        ]

        sw_offsets = self.arrays["switch_state_offsets"]
        sw_flat = self.arrays["switch_state_flat"].tolist()
        switches = []
        for i, mode_code in enumerate(self.arrays["switch_mode"]):
            mode = _SWITCH_MODES[int(mode_code)]
            capacity = RCB_POSITIONS if mode == "rcb" else FCB_POSITIONS
            switches.append(
                SwitchPlan(
                    index=i,
                    mode=mode,
                    capacity_states=capacity,
                    capacity_entries=capacity,
                    states=sw_flat[int(sw_offsets[i]) : int(sw_offsets[i + 1])],
                    entry_count=int(self.arrays["switch_entry_count"][i]),
                    in_signals=int(self.arrays["switch_in"][i]),
                    out_signals=int(self.arrays["switch_out"][i]),
                )
            )
        tiles = [
            TilePlan(
                index=i,
                mode=_TILE_MODES[int(mode_code)],
                switch_indices=[
                    int(s) for s in self.arrays["tile_switches"][i] if s >= 0
                ],
            )
            for i, mode_code in enumerate(self.arrays["tile_mode"])
        ]
        map_meta = meta["mapping"]
        mapping = CamaMapping(
            automaton_name=map_meta["automaton_name"],
            code_length=map_meta["code_length"],
            switches=switches,
            tiles=tiles,
            state_switch=self.arrays["map_state_switch"].astype(np.int64),
            state_position=self.arrays["map_state_position"].astype(np.int64),
            state_entries=self.arrays["map_state_entries"].astype(np.int64),
            cross_edges=[
                (int(u), int(v)) for u, v in self.arrays["map_cross_edges"]
            ],
            num_global_switches=map_meta["num_global_switches"],
            oversubscribed_ports=map_meta["oversubscribed_ports"],
        )
        return CamaProgram(
            automaton=automaton,
            choice=choice,
            state_encodings=state_encodings,
            mapping=mapping,
            encoder=InputEncoder(encoding),
        )

    def _rebuild_encoding(self, meta: dict):
        from repro.core.encoding.multi_zeros import MultiZerosEncoding
        from repro.core.encoding.one_zero import OneZeroEncoding
        from repro.core.encoding.prefix import PrefixEncoding

        alphabet = SymbolClass(int(meta["alphabet_mask"], 16))
        kind = meta["kind"]
        if kind == "one-zero":
            return OneZeroEncoding(alphabet)
        if kind == "multi-zeros":
            return MultiZerosEncoding(alphabet, meta["length"])
        if kind != "prefix":
            raise ArtifactError(f"unknown encoding kind {kind!r}")
        try:
            assignment = {
                int(symbol): (int(cluster), int(slot))
                for symbol, cluster, slot in zip(
                    self.arrays["enc_symbols"],
                    self.arrays["enc_clusters"],
                    self.arrays["enc_slots"],
                )
            }
        except KeyError as exc:
            raise ArtifactError(
                "prefix-encoded artifact lacks its assignment arrays"
            ) from exc
        return PrefixEncoding(
            assignment,
            meta["suffix_length"],
            meta["prefix_length"],
            meta["prefix_zeros"],
        )

    # -- validation -------------------------------------------------------
    def validate(self) -> "CompiledArtifact":
        """Structural checks; raises :class:`ArtifactError` when broken."""
        version = self.manifest.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ArtifactError(
                f"artifact format version {version!r} is not supported "
                f"(this build reads v{ARTIFACT_FORMAT_VERSION}); recompile"
            )
        for key in ("key", "ruleset_fingerprint", "options", "automaton"):
            if key not in self.manifest:
                raise ArtifactError(f"artifact manifest lacks {key!r}")
        missing = [a for a in _REQUIRED_ARRAYS if a not in self.arrays]
        if missing:
            raise ArtifactError(
                f"artifact lacks required arrays: {', '.join(missing)}"
            )
        meta = self.manifest["automaton"]
        n = meta.get("num_states")
        from repro.sim.backends import bitwords

        if (
            not isinstance(n, int)
            or self.arrays["state_class_words"].shape != (n, 4)
            or self.arrays["state_start"].shape != (n,)
            or self.arrays["state_reporting"].shape != (n,)
            or self.arrays["succ_offsets"].shape != (n + 1,)
            or self.arrays["match_words"].shape != (256, bitwords.num_words(n))
            or (
                "succ_words" in self.arrays
                and self.arrays["succ_words"].shape
                != (n, bitwords.num_words(n))
            )
        ):
            raise ArtifactError("artifact arrays are inconsistent; recompile")
        offsets = self.arrays["succ_offsets"]
        targets = self.arrays["succ_targets"]
        # a truncated targets array would otherwise be silently sliced
        # short in automaton(), dropping transitions — wrong answers,
        # not a crash, so it must be caught here
        if (
            int(offsets[0]) != 0
            or targets.shape != (int(offsets[-1]),)
            or (np.diff(offsets) < 0).any()
            or (targets.size and (targets.min() < 0 or targets.max() >= n))
        ):
            raise ArtifactError("artifact transition tables are inconsistent")
        try:
            self.options  # validates option names/values
        except ReproError as exc:
            # e.g. an option added by a future build without a format
            # bump: unreadable-for-us must mean miss-and-recompile, so
            # it has to surface as ArtifactError like every other skew
            raise ArtifactError(
                f"artifact pipeline options are not readable: {exc}"
            ) from exc
        return self

    def verify(self) -> "CompiledArtifact":
        """Deep check: fingerprints and derived tables must match content.

        Recomputes the language fingerprint from the automaton arrays,
        re-binds the content-address ``key`` to (content, options) —
        so a manifest key can never point a shared store at different
        rules — and re-derives the packed match words, which fully
        covers the engine execution path (the CSR, start kinds,
        reporting flags and report codes are all inside the
        fingerprint).  Program arrays are checked for internal
        consistency (per-state CAM entry counts must match the
        placement's), not re-derived: re-running the mapper would be a
        recompile.
        """
        self.validate()
        automaton = self.automaton()
        actual = ruleset_fingerprint(automaton)
        if actual != self.fingerprint:
            raise ArtifactError(
                "artifact content does not match its recorded fingerprint "
                f"({actual[:12]}... != {self.fingerprint[:12]}...)"
            )
        actual_key = ruleset_fingerprint(automaton, self.options)
        if actual_key != self.key:
            raise ArtifactError(
                "artifact key does not match its content and options "
                f"({actual_key[:12]}... != {self.key[:12]}...)"
            )
        from repro.sim.backends.base import KernelTables

        derived = KernelTables.from_automaton(automaton).match_words
        stored = np.ascontiguousarray(
            self.arrays["match_words"], dtype=np.uint64
        )
        if derived.shape != stored.shape or not np.array_equal(derived, stored):
            raise ArtifactError(
                "artifact match tables do not match its symbol classes"
            )
        if self.manifest.get("program"):
            entries = self.arrays["enc_offsets"]
            per_state = entries[1:] - entries[:-1]
            if not np.array_equal(
                per_state, self.arrays["map_state_entries"]
            ):
                raise ArtifactError(
                    "artifact CAM entries disagree with its placement"
                )
        return self

    # -- (de)serialization -------------------------------------------------
    def to_bytes(self) -> bytes:
        """The single-file ``.npz`` wire form (manifest included)."""
        buffer = io.BytesIO()
        self._write(buffer)
        return buffer.getvalue()

    def _write(self, fh) -> None:
        np.savez(
            fh,
            manifest=np.array(json.dumps(self.manifest)),
            **self.arrays,
        )

    def save(self, path: str | Path) -> Path:
        """Write atomically to ``path`` (tmp file + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                self._write(fh)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink(missing_ok=True)
        return path

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompiledArtifact":
        return cls._read(io.BytesIO(data), what="artifact bytes")

    @classmethod
    def load(cls, path: str | Path) -> "CompiledArtifact":
        path = Path(path)
        if not path.exists():
            raise ArtifactError(f"no such artifact: {path}")
        with open(path, "rb") as fh:
            return cls._read(fh, what=str(path))

    @classmethod
    def _read(cls, fh, *, what: str) -> "CompiledArtifact":
        try:
            with np.load(fh, allow_pickle=False) as npz:
                if "manifest" not in npz.files:
                    raise ArtifactError(f"{what}: not a compiled artifact")
                manifest = json.loads(str(npz["manifest"]))
                arrays = {
                    name: npz[name]
                    for name in npz.files
                    if name != "manifest"
                }
        except ArtifactError:
            raise
        except Exception as exc:  # zip/format/JSON corruption
            raise ArtifactError(
                f"{what}: corrupt or truncated artifact ({exc})"
            ) from exc
        if not isinstance(manifest, dict):
            raise ArtifactError(f"{what}: artifact manifest is not an object")
        return cls(manifest=manifest, arrays=arrays).validate()
