"""Consistent-hash placement of rulesets onto fleet nodes.

The router places each ruleset on ``replication`` nodes chosen by
consistent hashing over its content fingerprint
(:func:`~repro.service.ruleset.ruleset_fingerprint`) — the same
decomposition move CAMA makes one level down, where a lookup activates
only the clusters that can match it instead of the whole fabric.
Consistent hashing keeps placement stable under membership churn:
adding or losing a node remaps only the keys adjacent to its ring
positions, so a fleet restart does not re-shuffle (and re-register)
every ruleset everywhere.

Each node projects to ``vnodes`` points on the ring (hashes of
``"name#i"``), which evens out the arc lengths — with a handful of
physical nodes and a single point each, one node routinely owns half
the keyspace.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ConfigError

#: ring points per node; 64 keeps the max/min arc ratio close to 1 for
#: small fleets while the ring stays tiny (a few KB)
DEFAULT_VNODES = 64


def _ring_hash(value: str) -> int:
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping keys to an ordered replica set."""

    def __init__(self, nodes=(), *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ConfigError("vnodes must be >= 1")
        self._vnodes = vnodes
        self._nodes: set[str] = set()
        #: sorted (point, node) pairs — the ring itself
        self._ring: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Insert a node (idempotent)."""
        if not node:
            raise ConfigError("node name must be non-empty")
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self._vnodes):
            self._ring.append((_ring_hash(f"{node}#{i}"), node))
        self._ring.sort()

    def remove(self, node: str) -> None:
        """Drop a node (idempotent); its keys flow to ring neighbours."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [entry for entry in self._ring if entry[1] != node]

    def place(self, key: str, replicas: int = 1) -> list[str]:
        """The ordered replica set for ``key``: the first ``replicas``
        *distinct* nodes walking clockwise from the key's ring point.

        The first entry is the primary.  Fewer nodes than requested
        replicas returns all of them — placement degrades, it does not
        fail.
        """
        if replicas < 1:
            raise ConfigError("replicas must be >= 1")
        if not self._ring:
            return []
        want = min(replicas, len(self._nodes))
        start = bisect.bisect_left(self._ring, (_ring_hash(key), ""))
        chosen: list[str] = []
        for offset in range(len(self._ring)):
            node = self._ring[(start + offset) % len(self._ring)][1]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == want:
                    break
        return chosen
