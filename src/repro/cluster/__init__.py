"""repro.cluster — fleet-scale matching: router, placement, quotas.

CAMA splits one large automaton across many independent CAM clusters
and activates only the relevant ones per lookup; this package applies
the same decomposition one level up, splitting rulesets and tenants
across many :class:`~repro.service.server.MatchingServer` *processes*:

- :mod:`~repro.cluster.placement` — consistent-hash ring mapping
  ruleset fingerprints to replica sets of nodes;
- :mod:`~repro.cluster.quotas` — per-tenant admission control (byte /
  request token buckets, session caps, compile budgets) with typed
  ``over-quota`` rejections;
- :mod:`~repro.cluster.nodes` — raw frame channels and the fleet
  membership pool the router drives;
- :mod:`~repro.cluster.router` — the NDJSON proxy clients talk to:
  single-compile fleet registration through the shared artifact store,
  round-robin scan spreading, and checkpoint-replay failover that
  resumes a mid-stream session byte-identically on a replica;
- :mod:`~repro.cluster.fleet` — process-level harness (spawn real
  nodes, front them with a router) used by tests, the cluster
  benchmark and ``Ruleset.serve_cluster``.

Clients need nothing new: the router speaks the exact protocol of a
single server, so ``MatchingClient(port=router_port)`` just works.
"""

from repro.cluster.fleet import LocalFleet, NodeProcess, free_port
from repro.cluster.nodes import NodeChannel, NodeError, NodeHandle, NodePool
from repro.cluster.placement import DEFAULT_VNODES, HashRing
from repro.cluster.quotas import (
    QuotaExceededError,
    QuotaManager,
    TenantQuota,
)
from repro.cluster.router import BackgroundRouter, ClusterRouter

__all__ = [
    "BackgroundRouter",
    "ClusterRouter",
    "DEFAULT_VNODES",
    "HashRing",
    "LocalFleet",
    "NodeChannel",
    "NodeError",
    "NodeHandle",
    "NodePool",
    "NodeProcess",
    "QuotaExceededError",
    "QuotaManager",
    "TenantQuota",
    "free_port",
]
