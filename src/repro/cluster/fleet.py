"""Process-level fleet harness: real node processes behind one router.

The chaos/failover guarantees of :mod:`repro.cluster.router` are only
meaningful against *processes* that can actually die — an in-thread
node cannot be SIGKILLed.  :class:`NodeProcess` spawns a genuine
``python -m repro serve`` server, :class:`LocalFleet` wires N of them
(sharing one artifact-cache directory, so fleet registration costs one
compile) behind a :class:`~repro.cluster.router.BackgroundRouter`.
This is the harness the cluster tests, ``benchmarks/bench_cluster.py``
and :meth:`repro.api.RulesetHandle.serve_cluster` all stand on.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import SimulationError


def free_port() -> int:
    """A currently-free TCP port (racy by nature; fine for tests)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _repro_pythonpath() -> str:
    """PYTHONPATH entry that makes ``-m repro`` importable in a child."""
    import repro

    src = str(Path(repro.__file__).parents[1])
    existing = os.environ.get("PYTHONPATH")
    return f"{src}{os.pathsep}{existing}" if existing else src


class NodeProcess:
    """One matching-server node as a real child process."""

    def __init__(
        self,
        port: int | None = None,
        *,
        host: str = "127.0.0.1",
        artifact_cache: str | Path | None = None,
        shards: int = 1,
        backend: str | None = None,
        metrics: bool = True,
        log_level: str = "warning",
        extra_args: tuple[str, ...] = (),
    ) -> None:
        self.host = host
        self.port = port if port is not None else free_port()
        self.artifact_cache = (
            str(artifact_cache) if artifact_cache is not None else None
        )
        self.shards = shards
        self.backend = backend
        self.metrics = metrics
        self.log_level = log_level
        self.extra_args = tuple(extra_args)
        self.process: subprocess.Popen | None = None

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def pid(self) -> int:
        if self.process is None:
            raise SimulationError("node process is not started")
        return self.process.pid

    @property
    def running(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def _command(self) -> list[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            str(self.port),
            "--shards",
            str(self.shards),
            "--log-level",
            self.log_level,
        ]
        if self.backend is not None:
            cmd += ["--backend", self.backend]
        if self.artifact_cache is not None:
            cmd += ["--artifact-cache", self.artifact_cache]
        if self.metrics:
            cmd += ["--metrics"]
        cmd += list(self.extra_args)
        return cmd

    def start(self, timeout: float = 30.0) -> "NodeProcess":
        if self.process is not None:
            raise SimulationError(f"node {self.name} is already started")
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        self.process = subprocess.Popen(
            self._command(),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.wait_ready(timeout)
        return self

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the node answers a ping (or die trying)."""
        from repro.service.client import MatchingClient

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process is not None and self.process.poll() is not None:
                raise SimulationError(
                    f"node {self.name} exited during startup "
                    f"(code {self.process.returncode})"
                )
            try:
                with MatchingClient(
                    self.host, self.port, timeout=2.0
                ) as client:
                    client.ping()
                return
            except OSError:
                time.sleep(0.05)
        raise SimulationError(f"node {self.name} did not come up in time")

    def kill(self) -> None:
        """SIGKILL — the chaos path: no drain, no goodbye."""
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=10)

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful stop (remote shutdown, then escalate)."""
        if self.process is None:
            return
        if self.process.poll() is None:
            from repro.service.client import MatchingClient, RemoteError
            from repro.service.protocol import ProtocolError

            try:
                with MatchingClient(
                    self.host, self.port, timeout=2.0
                ) as client:
                    client.shutdown()
            except (OSError, RemoteError, ProtocolError, SimulationError):
                pass
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.terminate()
                try:
                    self.process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    self.process.kill()
                    self.process.wait(timeout=5)

    def __enter__(self) -> "NodeProcess":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class LocalFleet:
    """N node processes sharing one artifact store, behind one router.

    ::

        with LocalFleet(num_nodes=2, artifact_cache=shared_dir) as fleet:
            client = MatchingClient(port=fleet.port)
            handle = client.register(rules)      # 1 compile, fleet-wide
    """

    def __init__(
        self,
        num_nodes: int = 2,
        *,
        artifact_cache: str | Path | None = None,
        replication: int | None = None,
        quotas=None,
        shards: int = 1,
        backend: str | None = None,
        router_port: int = 0,
        health_interval_s: float = 1.0,
        node_timeout_s: float | None = 60.0,
        node_kwargs: dict | None = None,
    ) -> None:
        if num_nodes < 1:
            raise SimulationError("a fleet needs at least one node")
        self.nodes = [
            NodeProcess(
                artifact_cache=artifact_cache,
                shards=shards,
                backend=backend,
                **(node_kwargs or {}),
            )
            for _ in range(num_nodes)
        ]
        from repro.cluster.router import BackgroundRouter, ClusterRouter

        self.router = ClusterRouter(
            [(n.host, n.port) for n in self.nodes],
            replication=(
                replication
                if replication is not None
                else min(2, num_nodes)
            ),
            quotas=quotas,
            port=router_port,
            health_interval_s=health_interval_s,
            node_timeout_s=node_timeout_s,
        )
        self._background = BackgroundRouter(self.router)
        self._started = False

    @property
    def port(self) -> int:
        """The router's client-facing port."""
        port = self._background.port
        if port is None:
            raise SimulationError("fleet is not started")
        return port

    def start(self) -> "LocalFleet":
        if self._started:
            raise SimulationError("fleet is already started")
        started: list[NodeProcess] = []
        try:
            for node in self.nodes:
                node.start()
                started.append(node)
            self._background.start()
        except BaseException:
            for node in started:
                node.stop()
            raise
        self._started = True
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._background.stop()
        for node in self.nodes:
            node.stop()

    def __enter__(self) -> "LocalFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
