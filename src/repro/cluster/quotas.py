"""Per-tenant admission control for the cluster router.

One tenant's pathological workload (a regex bomb, a firehose of scan
bytes, a session leak) must degrade *that tenant*, not the fleet.  The
router therefore admits work **before** forwarding it to any node:
over-quota requests are rejected with a typed ``over-quota`` error
frame carrying the offending ``resource`` and a ``retry_after_s`` hint,
and never consume node executor time at all — which is what keeps an
in-quota tenant's throughput flat while a noisy neighbour is throttled.

Rate resources (bytes scanned, scan/feed requests) use token buckets:
capacity = one window's worth of rate, refilled continuously, so short
bursts up to the window are fine and sustained overload is shaved to
the configured rate.  Concurrency (open sessions) is a plain counter,
and compile admission charges a per-window budget of compile *cost*
(pattern count), the knob that stops registration storms.

All clocks are injectable (``clock=``) so tests drive time directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ConfigError, ReproError


class QuotaExceededError(ReproError):
    """A tenant exceeded an admission limit (wire code ``over-quota``)."""

    code = "over-quota"

    def __init__(
        self, tenant: str, resource: str, retry_after_s: float
    ) -> None:
        self.tenant = tenant
        self.resource = resource
        self.retry_after_s = max(0.0, round(retry_after_s, 3))
        super().__init__(
            f"tenant {tenant!r} is over its {resource} quota; "
            f"retry in {self.retry_after_s:.3f}s"
        )


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant (None = unlimited).

    ``bytes_per_s`` / ``requests_per_s`` are sustained rates with a
    burst of one ``window_s``'s worth; ``max_open_sessions`` bounds
    concurrent streams; ``compile_cost_per_window`` bounds pattern
    compilations (charged by pattern count) per ``window_s``.
    """

    bytes_per_s: float | None = None
    requests_per_s: float | None = None
    max_open_sessions: int | None = None
    compile_cost_per_window: int | None = None
    window_s: float = 10.0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigError("window_s must be > 0")
        for name in ("bytes_per_s", "requests_per_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigError(f"{name} must be > 0 (or None)")
        for name in ("max_open_sessions", "compile_cost_per_window"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigError(f"{name} must be >= 1 (or None)")

    @property
    def unlimited(self) -> bool:
        return (
            self.bytes_per_s is None
            and self.requests_per_s is None
            and self.max_open_sessions is None
            and self.compile_cost_per_window is None
        )


class _TokenBucket:
    """Continuous-refill token bucket: ``rate`` tokens/s, ``burst`` cap."""

    def __init__(self, rate: float, burst: float, clock) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def need(self, amount: float) -> float:
        """Seconds until ``amount`` tokens exist (0.0 = available now).

        A pure check — nothing is taken.  An amount beyond the burst
        cap is clamped to it: one oversized request drains (at most) a
        full window's budget instead of blocking forever.
        """
        self._refill()
        amount = min(amount, self.burst)
        if amount <= self._tokens:
            return 0.0
        return (amount - self._tokens) / self.rate

    def take(self, amount: float) -> None:
        """Debit ``amount`` (burst-clamped) tokens unconditionally."""
        self._refill()
        self._tokens -= min(amount, self.burst)

    def try_take(self, amount: float) -> float:
        """Take ``amount`` tokens; returns 0.0 on success, else the
        seconds until enough tokens exist (nothing is taken then)."""
        wait = self.need(amount)
        if wait == 0.0:
            self.take(amount)
        return wait


class _TenantAccount:
    """One tenant's live admission state."""

    def __init__(self, quota: TenantQuota, clock) -> None:
        self.quota = quota
        self.open_sessions = 0
        self.bytes = (
            _TokenBucket(
                quota.bytes_per_s, quota.bytes_per_s * quota.window_s, clock
            )
            if quota.bytes_per_s is not None
            else None
        )
        self.requests = (
            _TokenBucket(
                quota.requests_per_s,
                quota.requests_per_s * quota.window_s,
                clock,
            )
            if quota.requests_per_s is not None
            else None
        )
        self.compile = (
            _TokenBucket(
                quota.compile_cost_per_window / quota.window_s,
                float(quota.compile_cost_per_window),
                clock,
            )
            if quota.compile_cost_per_window is not None
            else None
        )


class QuotaManager:
    """Admission control across tenants.

    ``default`` applies to every tenant without an entry in
    ``per_tenant``; frames carrying no tenant id are billed to
    ``"default"`` (shared — anonymous traffic pools together, which is
    exactly the incentive to send a tenant id).

    Clients control the tenant string, so tracked state per tenant is
    attacker-controlled cardinality: at most ``max_accounts`` live
    accounts are kept, evicted least-recently-seen first (accounts
    holding open sessions are never evicted; an evicted tenant that
    returns simply starts from a fresh burst).  Rejection counters of
    evicted tenants fold into the ``"(evicted)"`` aggregate so totals
    survive without per-tenant growth.
    """

    #: tenant key the rejection counters of evicted accounts fold into
    EVICTED = "(evicted)"

    def __init__(
        self,
        default: TenantQuota | None = None,
        *,
        per_tenant: dict[str, TenantQuota] | None = None,
        max_accounts: int = 1024,
        clock=time.monotonic,
    ) -> None:
        if max_accounts < 1:
            raise ConfigError("max_accounts must be >= 1")
        self.default = default
        self.per_tenant = dict(per_tenant or {})
        self.max_accounts = max_accounts
        self._clock = clock
        #: insertion-ordered, oldest-seen first (dict as LRU)
        self._accounts: dict[str, _TenantAccount] = {}
        #: rejections by (tenant, resource), for snapshots/telemetry
        self.rejections: dict[tuple[str, str], int] = {}

    def _account(self, tenant: str) -> _TenantAccount | None:
        account = self._accounts.pop(tenant, None)
        if account is None:
            quota = self.per_tenant.get(tenant, self.default)
            if quota is None or quota.unlimited:
                return None
            account = _TenantAccount(quota, self._clock)
        self._accounts[tenant] = account  # (re-)append: most recent last
        self._evict_stale(keep=tenant)
        return account

    def _evict_stale(self, *, keep: str) -> None:
        while len(self._accounts) > self.max_accounts:
            victim = next(
                (
                    tenant
                    for tenant, account in self._accounts.items()
                    if tenant != keep and account.open_sessions == 0
                ),
                None,
            )
            if victim is None:
                return  # every other tracked tenant holds sessions
            del self._accounts[victim]
            for key in [k for k in self.rejections if k[0] == victim]:
                count = self.rejections.pop(key)
                folded = (self.EVICTED, key[1])
                self.rejections[folded] = (
                    self.rejections.get(folded, 0) + count
                )

    def _reject(
        self, tenant: str, resource: str, retry_after_s: float
    ) -> None:
        key = (tenant, resource)
        self.rejections[key] = self.rejections.get(key, 0) + 1
        raise QuotaExceededError(tenant, resource, retry_after_s)

    # -- admission points --------------------------------------------------
    def admit_request(self, tenant: str) -> None:
        """One scan/feed-class request (rate-limited by requests_per_s)."""
        account = self._account(tenant)
        if account is None or account.requests is None:
            return
        wait = account.requests.try_take(1.0)
        if wait > 0:
            self._reject(tenant, "requests", wait)

    def admit_bytes(self, tenant: str, nbytes: int) -> None:
        account = self._account(tenant)
        if account is None or account.bytes is None or nbytes <= 0:
            return
        wait = account.bytes.try_take(float(nbytes))
        if wait > 0:
            self._reject(tenant, "bytes", wait)

    def admit_request_bytes(self, tenant: str, nbytes: int) -> None:
        """Admit one scan/feed request carrying ``nbytes`` of data.

        The two buckets are charged atomically: every check runs before
        any debit, so a byte-rejected request does not also burn a
        request token (and vice versa) for work that is never
        forwarded.
        """
        account = self._account(tenant)
        if account is None:
            return
        charge_request = account.requests is not None
        charge_bytes = account.bytes is not None and nbytes > 0
        if charge_request:
            wait = account.requests.need(1.0)
            if wait > 0:
                self._reject(tenant, "requests", wait)
        if charge_bytes:
            wait = account.bytes.need(float(nbytes))
            if wait > 0:
                self._reject(tenant, "bytes", wait)
        if charge_request:
            account.requests.take(1.0)
        if charge_bytes:
            account.bytes.take(float(nbytes))

    def admit_session(self, tenant: str) -> None:
        """Claim one open-session slot (release with
        :meth:`release_session`)."""
        account = self._account(tenant)
        if account is None:
            return
        cap = account.quota.max_open_sessions
        if cap is not None and account.open_sessions >= cap:
            self._reject(tenant, "sessions", account.quota.window_s)
        account.open_sessions += 1

    def release_session(self, tenant: str) -> None:
        account = self._accounts.get(tenant)
        if account is not None and account.open_sessions > 0:
            account.open_sessions -= 1

    def admit_compile(self, tenant: str, cost: int) -> None:
        """Charge one registration's compile cost (pattern count)."""
        account = self._account(tenant)
        if account is None or account.compile is None:
            return
        wait = account.compile.try_take(float(max(1, cost)))
        if wait > 0:
            self._reject(tenant, "compile", wait)

    # -- observability -----------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "tenants": {
                tenant: {
                    "open_sessions": account.open_sessions,
                }
                for tenant, account in sorted(self._accounts.items())
            },
            "rejections": {
                f"{tenant}/{resource}": count
                for (tenant, resource), count in sorted(
                    self.rejections.items()
                )
            },
        }
