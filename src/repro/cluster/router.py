"""The cluster router: one NDJSON endpoint fronting a fleet of nodes.

Clients speak the ordinary service protocol
(:mod:`repro.service.protocol`) to the router exactly as they would to
a single :class:`~repro.service.server.MatchingServer`; the router
places rulesets on nodes by consistent hashing over their content
fingerprint (:mod:`repro.cluster.placement`), admits work per tenant
(:mod:`repro.cluster.quotas`), and forwards frames to the owning nodes
over raw :class:`~repro.cluster.nodes.NodeChannel` connections.

Three fleet behaviours live here:

* **single-compile registration** — ``register`` runs on the placement
  primary first (paying the one compile and publishing component
  artifacts to the shared store), then on the replicas, whose
  registrations hit the store instead of compiling;
* **failover** — every proxied session is opened with
  ``checkpoint: true``, so each feed response carries the serialized
  per-shard engine states.  When a node dies mid-stream the router
  opens the session on a replica with ``state=`` (the last checkpoint),
  re-sends the failed chunk, and the stream resumes byte-identically —
  the checkpoint only ever advances when a feed *response* arrived, so
  replaying the in-flight chunk is exactly-once;
* **admission control** — over-quota tenants get typed ``over-quota``
  error frames (with ``retry_after_s``) before any node sees the work.

Frames of one client connection are processed strictly in order (feed
ordering is what makes sessions streams); different connections proceed
concurrently, each with its own channels to the nodes.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ConfigError, ReproError, SimulationError
from repro.cluster.nodes import (
    DEFAULT_REQUEST_TIMEOUT_S as DEFAULT_NODE_TIMEOUT_S,
    NodeChannel,
    NodeError,
    NodeHandle,
    NodePool,
)
from repro.cluster.placement import HashRing
from repro.cluster.quotas import QuotaExceededError, QuotaManager
from repro.service.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
)
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import default_registry, render_prometheus

_log = get_logger("repro.cluster.router")

_REGISTRY = default_registry()
_ROUTER_REQUESTS = _REGISTRY.counter(
    "repro_router_requests_total",
    "Frames the router forwarded, by node and outcome",
    ("node", "outcome"),
)
_ROUTER_FAILOVERS = _REGISTRY.counter(
    "repro_router_failovers_total",
    "Session failovers executed, by (dead) source node",
    ("node",),
)
_ROUTER_QUOTA_REJECTIONS = _REGISTRY.counter(
    "repro_router_quota_rejections_total",
    "Admissions rejected, by tenant and resource",
    ("tenant", "resource"),
)

#: tenant frames without an explicit id are billed to this shared pool
DEFAULT_TENANT = "default"


def _approx_decoded_bytes(encoded: str) -> int:
    """Size of a base64 payload once decoded (close enough for quota)."""
    return (len(encoded) * 3) // 4


@dataclass
class _FleetRuleset:
    """One ruleset the fleet serves: how to place it and re-create it."""

    handle: str
    #: the original (id-less) register frame — replayed to re-register
    #: on recovered or newly targeted nodes
    frame: dict
    placement: list[str]
    #: every (id-less) ``update`` frame applied since registration, in
    #: order.  Re-creating the ruleset on a node is ``frame`` followed
    #: by this whole sequence — replaying the register alone would
    #: resurrect the *pre-update* rules on a node that was dead (or
    #: dropped mid-fan-out) during an update, and scans routed to it
    #: would silently answer from stale rules.
    updates: list[dict] = field(default_factory=list)


@dataclass
class _RoutedSession:
    """Router-side bookkeeping of one proxied session."""

    name: str
    handle: str
    tenant: str
    node: str
    #: the (id-less) open frame, with ``checkpoint: true`` forced — the
    #: failover open replays it (plus ``state=``) on a replica
    open_frame: dict
    #: whether the *client* asked for checkpoint states; if not, the
    #: router strips them from feed responses before relaying
    client_checkpoint: bool = False
    state: list | None = None
    position: int = 0
    num_reports: int = 0
    truncated: bool = False
    failed_over: bool = False


@dataclass(eq=False)  # identity-hashed: it lives in the router's set
class _ClientConn:
    """Per-client-connection state."""

    conn_id: int
    channels: dict[str, NodeChannel] = field(default_factory=dict)
    sessions: dict[str, _RoutedSession] = field(default_factory=dict)
    rr: itertools.count = field(default_factory=lambda: itertools.count())
    closing: bool = False


class ClusterRouter:
    """Route service-protocol frames across a fleet of matching nodes.

    Args:
        nodes: initial fleet members — ``(host, port)`` pairs or
            ``"host:port"`` strings (more can join at runtime via the
            ``hello`` op).
        replication: nodes per ruleset (placement size); scans spread
            round-robin across the alive replicas, failover needs >= 2.
        quotas: optional :class:`~repro.cluster.quotas.QuotaManager`;
            None admits everything.
        host, port: bind address (``port=0`` picks a free port).
        max_frame_bytes: request/response line limit, as on the server.
        allow_shutdown: honour the ``shutdown`` frame.
        health_interval_s: period of the background liveness probe
            (dead nodes rejoin automatically once they answer again).
        node_timeout_s: per-request round-trip budget on node channels
            (None = wait forever).  A node that is connected but hung
            exceeds it, raises :class:`NodeError`, and takes the same
            dead-marking/failover path as a crashed one.
    """

    def __init__(
        self,
        nodes=(),
        *,
        replication: int = 2,
        quotas: QuotaManager | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        allow_shutdown: bool = True,
        health_interval_s: float = 2.0,
        node_timeout_s: float | None = DEFAULT_NODE_TIMEOUT_S,
    ) -> None:
        if replication < 1:
            raise ConfigError("replication must be >= 1")
        if health_interval_s <= 0:
            raise ConfigError("health_interval_s must be > 0")
        if node_timeout_s is not None and node_timeout_s <= 0:
            raise ConfigError("node_timeout_s must be > 0 (or None)")
        self.replication = replication
        self.node_timeout_s = node_timeout_s
        self.quotas = quotas
        self.host = host
        self._requested_port = port
        self.max_frame_bytes = max_frame_bytes
        self.allow_shutdown = allow_shutdown
        self.health_interval_s = health_interval_s
        self.pool = NodePool()
        self.ring = HashRing()
        for node in nodes:
            self._add_node(*self._parse_node(node))
        self._rulesets: dict[str, _FleetRuleset] = {}
        self._conn_ids = itertools.count(1)
        self._conns: set[_ClientConn] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._drain_event: asyncio.Event | None = None
        self._stopped = asyncio.Event()
        self._health_task: asyncio.Task | None = None
        self._started_monotonic = time.monotonic()
        self._frames_processed = 0
        self._failovers = 0
        # ruleset parsing (fingerprint-before-placement) is CPU-bound;
        # keep it off the event loop
        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-route"
        )

    # -- membership --------------------------------------------------------
    @staticmethod
    def _parse_node(node) -> tuple[str, int]:
        if isinstance(node, str):
            host, _, port = node.rpartition(":")
            if not host or not port.isdigit():
                raise ConfigError(
                    f"node {node!r} is not 'host:port' or (host, port)"
                )
            return host, int(port)
        host, port = node
        return str(host), int(port)

    def _add_node(self, host: str, port: int) -> NodeHandle:
        handle = self.pool.add(
            host,
            port,
            max_frame_bytes=self.max_frame_bytes,
            timeout_s=self.node_timeout_s,
        )
        self.ring.add(handle.name)
        return handle

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise SimulationError("router is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def start(self) -> None:
        if self._server is None:
            self._drain_event = asyncio.Event()
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.host,
                self._requested_port,
                limit=self.max_frame_bytes,
            )
            self._health_task = asyncio.create_task(self._health_loop())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight frames, close everything."""
        if self._server is None:
            return
        _log.info("router.draining", connections=len(self._conns))
        self._drain_event.set()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        self._server.close()
        await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for handle in self.pool:
            await handle.probe.close()
        self._stopped.set()

    async def stop(self) -> None:
        await self.drain()
        self._executor.shutdown(wait=True)

    # -- connection handling -----------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        conn = _ClientConn(conn_id=next(self._conn_ids))
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conns.add(conn)
        _log.debug("connection.open", conn_id=conn.conn_id)
        drain_wait = asyncio.ensure_future(self._drain_event.wait())
        try:
            while not conn.closing:
                read = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {read, drain_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if read not in done:
                    read.cancel()
                    break
                try:
                    line = read.result()
                except (asyncio.LimitOverrunError, ValueError):
                    response = error_frame(
                        None,
                        f"frame exceeds max_frame_bytes "
                        f"({self.max_frame_bytes})",
                        "frame-too-large",
                    )
                    try:
                        writer.write(encode_frame(response))
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._respond(conn, line)
                self._frames_processed += 1
                try:
                    writer.write(encode_frame(response))
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        finally:
            drain_wait.cancel()
            await self._release_connection(conn)
            self._conns.discard(conn)
            _log.debug("connection.close", conn_id=conn.conn_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._conn_tasks.discard(task)

    async def _release_connection(self, conn: _ClientConn) -> None:
        """Release a dropped client's sessions, quota slots, channels."""
        for record in conn.sessions.values():
            if self.quotas is not None:
                self.quotas.release_session(record.tenant)
        conn.sessions.clear()
        for channel in conn.channels.values():
            await channel.close()
        conn.channels.clear()

    async def _respond(self, conn: _ClientConn, line: bytes) -> dict:
        request_id = None
        op = "unknown"
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            raw_op = frame.get("op")
            if not isinstance(raw_op, str):
                raise ProtocolError(
                    "frame has no 'op' field", code="bad-request"
                )
            op = raw_op
            handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}", code="unknown-op")
            payload = await handler(conn, frame)
            # node responses arrive id-less (error frames included) and
            # local payloads carry neither id nor ok — stamp both here
            # with the *client's* id
            return {"ok": True, **payload, "id": request_id}
        except QuotaExceededError as exc:
            _ROUTER_QUOTA_REJECTIONS.labels(exc.tenant, exc.resource).inc()
            _log.info(
                "request.over_quota",
                conn_id=conn.conn_id,
                op=op,
                tenant=exc.tenant,
                resource=exc.resource,
            )
            response = error_frame(request_id, str(exc), exc.code)
            response["retry_after_s"] = exc.retry_after_s
            response["resource"] = exc.resource
            return response
        except ProtocolError as exc:
            _log.info(
                "request.rejected",
                conn_id=conn.conn_id,
                op=op,
                code=exc.code,
                error=str(exc),
            )
            return error_frame(request_id, str(exc), exc.code)
        except NodeError as exc:
            _log.warning(
                "request.unavailable",
                conn_id=conn.conn_id,
                op=op,
                error=str(exc),
            )
            return error_frame(request_id, str(exc), "unavailable")
        except ReproError as exc:
            return error_frame(request_id, str(exc), "bad-request")
        except Exception as exc:  # noqa: BLE001 — a handler bug must
            # not kill the client connection
            _log.error(
                "request.internal_error",
                conn_id=conn.conn_id,
                op=op,
                error=f"{type(exc).__name__}: {exc}",
            )
            return error_frame(
                request_id, f"{type(exc).__name__}: {exc}", "internal"
            )

    # -- node forwarding ---------------------------------------------------
    def _channel(self, conn: _ClientConn, node: str) -> NodeChannel:
        channel = conn.channels.get(node)
        if channel is None:
            handle = self.pool.get(node)
            if handle is None:
                raise ProtocolError(
                    f"unknown node {node!r}", code="unavailable"
                )
            channel = handle.new_channel()
            conn.channels[node] = channel
        return channel

    async def _forward(
        self, conn: _ClientConn, node: str, frame: dict
    ) -> dict:
        """Round-trip one id-less frame to a node; transport failures
        mark the node dead and propagate as :class:`NodeError`."""
        handle = self.pool.get(node)
        channel = self._channel(conn, node)
        wire = {k: v for k, v in frame.items() if k != "id"}
        try:
            response = await channel.request(wire)
        except NodeError:
            self._node_failed(node)
            _ROUTER_REQUESTS.labels(node, "transport-error").inc()
            raise
        handle.requests += 1
        outcome = (
            "ok"
            if response.get("ok")
            else str(response.get("code", "error"))
        )
        _ROUTER_REQUESTS.labels(node, outcome).inc()
        return response

    def _node_failed(self, node: str) -> None:
        handle = self.pool.get(node)
        if handle is not None and handle.alive:
            handle.failures += 1
            _log.warning("node.dead", node=node)
            self.pool.mark_dead(node)

    def _tenant(self, frame: dict) -> str:
        tenant = frame.get("tenant")
        return tenant if isinstance(tenant, str) and tenant else DEFAULT_TENANT

    def _fleet_ruleset(self, frame: dict) -> _FleetRuleset:
        handle = frame.get("handle")
        if not isinstance(handle, str):
            raise ProtocolError("request has no 'handle'", code="bad-request")
        fleet = self._rulesets.get(handle)
        if fleet is None:
            raise ProtocolError(
                f"unknown ruleset handle {handle!r}; register it through "
                f"the router first",
                code="unknown-handle",
            )
        return fleet

    def _alive_placement(self, fleet: _FleetRuleset) -> list[str]:
        alive = [
            name
            for name in fleet.placement
            if (node := self.pool.get(name)) is not None and node.alive
        ]
        if not alive:
            raise ProtocolError(
                f"no alive replica for ruleset {fleet.handle!r}",
                code="unavailable",
            )
        return alive

    async def _ensure_registered(
        self, conn: _ClientConn, node: str, fleet: _FleetRuleset
    ) -> None:
        """Make sure ``node`` serves ``fleet`` *at its current version*.

        Replays the register frame (store-backed: an artifact load, not
        a compile) followed by every update applied since — the node is
        only marked as serving the handle once the full sequence
        succeeded, so a partially synced node keeps being retried
        instead of answering from stale rules.
        """
        handle = self.pool.get(node)
        if handle is None or fleet.handle in handle.registered:
            return
        response = await self._forward(conn, node, fleet.frame)
        if not response.get("ok"):
            return
        for update in list(fleet.updates):
            if not (await self._forward(conn, node, update)).get("ok"):
                return
        handle.registered.add(fleet.handle)

    # -- local ops ---------------------------------------------------------
    async def _op_ping(self, conn: _ClientConn, frame: dict) -> dict:
        return {"pong": True, "version": PROTOCOL_VERSION, "router": True}

    async def _op_health(self, conn: _ClientConn, frame: dict) -> dict:
        draining = self._drain_event.is_set() if self._drain_event else False
        return {
            "status": "draining" if draining else "ok",
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "version": PROTOCOL_VERSION,
            "router": True,
            "replication": self.replication,
            "rulesets": len(self._rulesets),
            "open_sessions": sum(len(c.sessions) for c in self._conns),
            "nodes": {
                node.name: {
                    "alive": node.alive,
                    "requests": node.requests,
                    "failures": node.failures,
                    "health": node.last_health,
                }
                for node in self.pool
            },
        }

    async def _op_stats(self, conn: _ClientConn, frame: dict) -> dict:
        payload = {
            "stats_version": 2,
            "router": True,
            "frames": self._frames_processed,
            "failovers": self._failovers,
            "rulesets": {
                fleet.handle: list(fleet.placement)
                for fleet in self._rulesets.values()
            },
            "nodes": {
                node.name: {
                    "alive": node.alive,
                    "requests": node.requests,
                    "failures": node.failures,
                    "registered": sorted(node.registered),
                }
                for node in self.pool
            },
            "connections": {"active": len(self._conns)},
            "active_sessions": sum(len(c.sessions) for c in self._conns),
        }
        if self.quotas is not None:
            payload["quotas"] = self.quotas.snapshot()
        return payload

    async def _op_metrics(self, conn: _ClientConn, frame: dict) -> dict:
        return {
            "content_type": "text/plain; version=0.0.4",
            "metrics": render_prometheus(),
        }

    async def _op_shutdown(self, conn: _ClientConn, frame: dict) -> dict:
        if not self.allow_shutdown:
            raise ProtocolError(
                "remote shutdown is disabled on this router",
                code="bad-request",
            )
        asyncio.create_task(self.drain())
        return {"draining": True}

    async def _op_hello(self, conn: _ClientConn, frame: dict) -> dict:
        """A node announcing itself (runtime fleet growth).

        Accepts ``host`` (str) + ``port`` (int) fields, or the compact
        ``node`` ("host:port") form.
        """
        host = frame.get("host")
        port = frame.get("port")
        node = frame.get("node")
        if host is None and port is None and isinstance(node, str):
            try:
                host, port = self._parse_node(node)
            except ConfigError as exc:
                raise ProtocolError(str(exc), code="bad-request") from exc
        if not isinstance(host, str) or not isinstance(port, int):
            raise ProtocolError(
                "hello needs 'host' (str) and 'port' (int), or "
                "'node' ('host:port')",
                code="bad-request",
            )
        handle = self._add_node(host, port)
        health = await self.pool.health_check(handle)
        if health is None:
            self.pool.mark_dead(handle.name)
            raise ProtocolError(
                f"node {handle.name} did not answer a health probe",
                code="unavailable",
            )
        return {"node": handle.name, "fleet": self.pool.names}

    # -- fleet registration ------------------------------------------------
    def _register_cost(self, frame: dict) -> int:
        rules = frame.get("rules")
        if isinstance(rules, (dict, list)):
            return len(rules)
        return 1

    def _placement_key(self, frame: dict) -> str:
        """Fingerprint the ruleset locally, before any node is chosen."""
        from repro.automata.glushkov import compile_regex_set
        from repro.automata.mnrl import loads_mnrl
        from repro.service.ruleset import ruleset_fingerprint

        kind = frame.get("kind", "regex")
        if kind == "regex":
            rules = frame.get("rules")
            if not isinstance(rules, (dict, list)) or not rules:
                raise ProtocolError(
                    "register kind 'regex' needs a non-empty 'rules' "
                    "dict or list",
                    code="bad-request",
                )
            automaton = compile_regex_set(
                rules, name=str(frame.get("name", "remote"))
            )
        elif kind == "mnrl":
            text = frame.get("text")
            if not isinstance(text, str):
                raise ProtocolError(
                    "register kind 'mnrl' needs a 'text' document",
                    code="bad-request",
                )
            automaton = loads_mnrl(
                text, name=str(frame.get("name", "remote"))
            )
        else:
            raise ProtocolError(
                f"unknown ruleset kind {kind!r} (expected 'regex' or "
                f"'mnrl')",
                code="bad-request",
            )
        return ruleset_fingerprint(automaton)

    def _artifact_key(self, frame: dict) -> str:
        from repro.compile.artifact import CompiledArtifact
        from repro.errors import ArtifactError
        from repro.service.protocol import decode_data

        data = decode_data(frame.get("data", ""))
        if not data:
            raise ProtocolError(
                "register_artifact needs 'data' (base64 .npz artifact)",
                code="bad-request",
            )
        try:
            return CompiledArtifact.from_bytes(data).key
        except ArtifactError as exc:
            raise ProtocolError(str(exc), code="bad-artifact") from exc

    async def _register_fleet(
        self, conn: _ClientConn, frame: dict, key: str
    ) -> dict:
        placement = self.ring.place(key, self.replication)
        alive = [
            name
            for name in placement
            if (node := self.pool.get(name)) is not None and node.alive
        ]
        if not alive:
            raise ProtocolError(
                "no alive node to place the ruleset on", code="unavailable"
            )
        clean = {k: v for k, v in frame.items() if k != "id"}
        # primary first, sequentially: its registration pays the single
        # compile and publishes component artifacts to the shared
        # store; the replicas' registrations then load, not compile
        response = await self._forward(conn, alive[0], clean)
        if not response.get("ok"):
            return response
        handle = str(response.get("handle", key))
        self.pool.get(alive[0]).registered.add(handle)
        fleet = _FleetRuleset(handle=handle, frame=clean, placement=placement)
        self._rulesets[handle] = fleet
        for replica in alive[1:]:
            try:
                rep = await self._forward(conn, replica, clean)
            except NodeError:
                continue  # health loop re-registers it on recovery
            if rep.get("ok"):
                self.pool.get(replica).registered.add(handle)
        response["nodes"] = alive
        return response

    async def _op_register(self, conn: _ClientConn, frame: dict) -> dict:
        if self.quotas is not None:
            self.quotas.admit_compile(
                self._tenant(frame), self._register_cost(frame)
            )
        loop = asyncio.get_running_loop()
        key = await loop.run_in_executor(
            self._executor, self._placement_key, frame
        )
        return await self._register_fleet(conn, frame, key)

    async def _op_register_artifact(
        self, conn: _ClientConn, frame: dict
    ) -> dict:
        if self.quotas is not None:
            self.quotas.admit_compile(self._tenant(frame), 1)
        loop = asyncio.get_running_loop()
        key = await loop.run_in_executor(
            self._executor, self._artifact_key, frame
        )
        return await self._register_fleet(conn, frame, key)

    async def _op_update(self, conn: _ClientConn, frame: dict) -> dict:
        """Hot-swap on every replica; the primary's response is the
        client's (update is incremental: replicas reuse the components
        the primary's update published).

        The applied frame is recorded on the fleet ruleset so replicas
        that miss the fan-out — dead during the update, or dropped
        mid-loop — converge to the current version when they are next
        (re-)registered, instead of rejoining with pre-update rules.
        """
        tenant = self._tenant(frame)
        if self.quotas is not None:
            self.quotas.admit_compile(
                tenant, self._register_cost({"rules": frame.get("add")})
            )
        fleet = self._fleet_ruleset(frame)
        alive = self._alive_placement(fleet)
        clean = {k: v for k, v in frame.items() if k != "id"}
        response = await self._forward(conn, alive[0], clean)
        if not response.get("ok"):
            return response
        fleet.updates.append(clean)
        for replica in alive[1:]:
            node = self.pool.get(replica)
            if node is not None and fleet.handle in node.registered:
                try:
                    rep = await self._forward(conn, replica, clean)
                except NodeError:
                    # marked dead; recovery replays register + updates
                    continue
                if not rep.get("ok"):
                    # the delta was refused: force a full replay before
                    # this replica serves the handle again
                    node.registered.discard(fleet.handle)
            else:
                # not serving the handle yet — the full replay brings
                # it straight to the latest version (current update
                # included; forwarding the delta too would double-apply)
                try:
                    await self._ensure_registered(conn, replica, fleet)
                except NodeError:
                    continue
        return response

    # -- routed scans ------------------------------------------------------
    def _pick(self, conn: _ClientConn, candidates: list[str]) -> str:
        return candidates[next(conn.rr) % len(candidates)]

    async def _op_scan(self, conn: _ClientConn, frame: dict) -> dict:
        tenant = self._tenant(frame)
        if self.quotas is not None:
            self.quotas.admit_request_bytes(
                tenant, _approx_decoded_bytes(str(frame.get("data", "")))
            )
        return await self._forward_scan(conn, frame)

    async def _op_scan_many(self, conn: _ClientConn, frame: dict) -> dict:
        tenant = self._tenant(frame)
        if self.quotas is not None:
            total = 0
            streams = frame.get("streams")
            if isinstance(streams, dict):
                total = sum(
                    _approx_decoded_bytes(str(data))
                    for data in streams.values()
                )
            self.quotas.admit_request_bytes(tenant, total)
        return await self._forward_scan(conn, frame)

    async def _forward_scan(self, conn: _ClientConn, frame: dict) -> dict:
        """Forward an idempotent scan, retrying across alive replicas."""
        fleet = self._fleet_ruleset(frame)
        candidates = self._alive_placement(fleet)
        start = next(conn.rr)
        last_error: NodeError | None = None
        for offset in range(len(candidates)):
            node = candidates[(start + offset) % len(candidates)]
            try:
                await self._ensure_registered(conn, node, fleet)
                return await self._forward(conn, node, frame)
            except NodeError as exc:
                last_error = exc
                continue
        raise ProtocolError(
            f"no alive replica answered for ruleset {fleet.handle!r}: "
            f"{last_error}",
            code="unavailable",
        )

    # -- routed sessions ---------------------------------------------------
    async def _op_open(self, conn: _ClientConn, frame: dict) -> dict:
        tenant = self._tenant(frame)
        name = frame.get("session")
        if not isinstance(name, str) or not name:
            raise ProtocolError(
                "open needs a non-empty 'session' name", code="bad-request"
            )
        if name in conn.sessions:
            raise ProtocolError(
                f"session {name!r} is already open on this connection",
                code="bad-request",
            )
        fleet = self._fleet_ruleset(frame)
        candidates = self._alive_placement(fleet)
        if self.quotas is not None:
            self.quotas.admit_session(tenant)
        # the node always checkpoints router sessions — feed responses
        # carry the engine states the failover path resumes from
        open_frame = {k: v for k, v in frame.items() if k != "id"}
        client_checkpoint = bool(open_frame.get("checkpoint"))
        open_frame["checkpoint"] = True
        start = next(conn.rr)
        response = None
        node = None
        for offset in range(len(candidates)):
            node = candidates[(start + offset) % len(candidates)]
            try:
                await self._ensure_registered(conn, node, fleet)
                response = await self._forward(conn, node, open_frame)
                break
            except NodeError:
                continue
        if response is None:
            if self.quotas is not None:
                self.quotas.release_session(tenant)
            raise ProtocolError(
                f"no alive replica to open session {name!r} on",
                code="unavailable",
            )
        if not response.get("ok"):
            if self.quotas is not None:
                self.quotas.release_session(tenant)
            return response
        conn.sessions[name] = _RoutedSession(
            name=name,
            handle=fleet.handle,
            tenant=tenant,
            node=node,
            open_frame=open_frame,
            client_checkpoint=client_checkpoint,
            state=open_frame.get("state"),
            position=int(response.get("position", 0) or 0),
        )
        return response

    def _routed_session(
        self, conn: _ClientConn, frame: dict
    ) -> _RoutedSession:
        name = frame.get("session")
        if not isinstance(name, str):
            raise ProtocolError(
                "request has no 'session'", code="bad-request"
            )
        record = conn.sessions.get(name)
        if record is None:
            raise ProtocolError(
                f"unknown session {name!r} on this connection",
                code="unknown-session",
            )
        return record

    async def _op_feed(self, conn: _ClientConn, frame: dict) -> dict:
        record = self._routed_session(conn, frame)
        if self.quotas is not None:
            self.quotas.admit_request_bytes(
                record.tenant,
                _approx_decoded_bytes(str(frame.get("data", ""))),
            )
        try:
            response = await self._forward(conn, record.node, frame)
        except NodeError:
            response = await self._failover_feed(conn, record, frame)
        if response.get("ok"):
            # the checkpoint advances only on a received response, so a
            # replayed chunk after failover is exactly-once
            state = response.get("state")
            if state is not None:
                record.state = state
            record.position = int(response.get("position", record.position))
            record.num_reports += len(response.get("reports", ()))
            record.truncated = bool(response.get("truncated", False))
            if not record.client_checkpoint:
                response.pop("state", None)
        return response

    async def _failover_feed(
        self, conn: _ClientConn, record: _RoutedSession, frame: dict
    ) -> dict:
        """Resume a session on a replica and replay the failed chunk.

        The dead node never answered this chunk's feed, so the saved
        checkpoint predates it; replaying the chunk onto the restored
        state yields exactly the reports the dead node would have
        produced, at the same absolute stream offsets.
        """
        dead = record.node
        self._failovers += 1
        _ROUTER_FAILOVERS.labels(dead).inc()
        _log.warning(
            "session.failover",
            session=record.name,
            dead_node=dead,
            position=record.position,
        )
        fleet = self._rulesets.get(record.handle)
        if fleet is None:
            raise ProtocolError(
                f"ruleset {record.handle!r} is no longer registered",
                code="unknown-handle",
            )
        candidates = [
            name
            for name in fleet.placement
            if name != dead
            and (node := self.pool.get(name)) is not None
            and node.alive
        ]
        for node in candidates:
            try:
                await self._ensure_registered(conn, node, fleet)
                open_frame = dict(record.open_frame)
                if record.state is not None:
                    open_frame["state"] = record.state
                opened = await self._forward(conn, node, open_frame)
                if not opened.get("ok"):
                    _log.warning(
                        "session.failover_open_rejected",
                        session=record.name,
                        node=node,
                        code=opened.get("code"),
                    )
                    continue
                response = await self._forward(conn, node, frame)
            except NodeError:
                continue
            record.node = node
            record.failed_over = True
            return response
        raise ProtocolError(
            f"no replica available to resume session {record.name!r} "
            f"(lost node {dead})",
            code="unavailable",
        )

    async def _op_close(self, conn: _ClientConn, frame: dict) -> dict:
        record = self._routed_session(conn, frame)
        response: dict | None = None
        node = self.pool.get(record.node)
        if node is not None and node.alive:
            try:
                response = await self._forward(conn, record.node, frame)
            except NodeError:
                response = None
        del conn.sessions[record.name]
        if self.quotas is not None:
            self.quotas.release_session(record.tenant)
        if response is None or not response.get("ok"):
            # the node is gone: answer from router bookkeeping (cycles
            # == bytes consumed — the stream advanced one byte/cycle)
            return {
                "num_reports": record.num_reports,
                "cycles": record.position,
                "truncated": record.truncated,
                "synthesized": True,
            }
        if record.failed_over:
            # the final node only saw the post-failover tail; the
            # router watched the whole stream
            response["num_reports"] = record.num_reports
            response["cycles"] = record.position
        return response

    # -- health loop -------------------------------------------------------
    async def _health_loop(self) -> None:
        # probes get a budget tied to the probe period, not the (much
        # larger) request timeout: one hung node must not stall the
        # whole loop for a minute per iteration
        probe_timeout = max(1.0, 2 * self.health_interval_s)
        if self.node_timeout_s is not None:
            probe_timeout = min(probe_timeout, self.node_timeout_s)
        while True:
            await asyncio.sleep(self.health_interval_s)
            for handle in list(self.pool):
                health = await self.pool.health_check(
                    handle, timeout_s=probe_timeout
                )
                if health is None:
                    if handle.alive:
                        _log.warning("node.health_failed", node=handle.name)
                        self.pool.mark_dead(handle.name)
                elif not handle.alive:
                    _log.info("node.recovered", node=handle.name)
                    self.pool.mark_alive(handle.name)
                    await self._reregister_node(handle)

    async def _reregister_node(self, handle: NodeHandle) -> None:
        """Replay registrations onto a recovered node (store-backed:
        these are artifact loads, not compiles), then every update the
        node missed while it was dead — rejoining with the pre-update
        ruleset would silently serve stale rules."""
        for fleet in self._rulesets.values():
            if handle.name not in fleet.placement:
                continue
            try:
                response = await handle.probe.request(fleet.frame)
                synced = response.get("ok")
                for update in list(fleet.updates):
                    if not synced:
                        break
                    synced = (await handle.probe.request(update)).get("ok")
            except NodeError:
                self.pool.mark_dead(handle.name)
                return
            if synced:
                handle.registered.add(fleet.handle)


class BackgroundRouter:
    """A :class:`ClusterRouter` on a daemon thread with its own loop.

    Mirrors :class:`~repro.service.server.BackgroundServer` — the
    harness tests, benchmarks and :meth:`Ruleset.serve_cluster` use::

        with BackgroundRouter(router) as bg:
            client = MatchingClient(port=bg.port)
    """

    def __init__(
        self, router: ClusterRouter | None = None, **kwargs
    ) -> None:
        self.router = router if router is not None else ClusterRouter(**kwargs)
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.router.start()
                self.loop = asyncio.get_running_loop()
                self.port = self.router.port
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            try:
                await self.router.serve_forever()
            finally:
                await self.router.stop()

        asyncio.run(main())

    def start(self) -> "BackgroundRouter":
        if self._thread is not None:
            raise SimulationError("background router is already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise SimulationError("background router did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        if self.loop is not None and self._thread.is_alive():
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.router.stop(), self.loop
                )
                future.result(timeout)
            except (
                RuntimeError,
                asyncio.CancelledError,
                concurrent.futures.CancelledError,
                concurrent.futures.TimeoutError,
            ):
                pass
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise SimulationError("background router did not stop in time")

    def __enter__(self) -> "BackgroundRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
